"""Shared HTTP-client plumbing for the serving tools.

Both ``tools/serve_smoke.py`` and ``tools/loadgen.py`` talk to the tile
server over real HTTP and apply the same well-formedness contract to
every response. That contract lives here, once:

* a 200 must carry a PNG body; a degraded 200 must carry
  ``Cache-Control: no-store`` and a ``Warning`` header;
* any non-200 must be a structured JSON error with ``status`` /
  ``code`` / ``message`` fields; 503/504 must carry ``Retry-After``.

``fetch`` is the blocking urllib fetcher (run it in an executor from
async code); ``http_get`` is a from-scratch asyncio GET for callers
that need thousands of concurrent in-flight requests without a thread
per request.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

__all__ = ["PNG_SIGNATURE", "Response", "check_wellformed", "fetch", "http_get"]

PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"

# (status, headers, body) — the shape every client helper returns.
Response = Tuple[int, Dict[str, str], bytes]

_MAX_BODY_BYTES = 32 * 1024 * 1024


def fetch(url: str, timeout: float = 120.0) -> Response:
    """Blocking GET returning ``(status, headers, body)``.

    HTTP error statuses are returned, not raised, so callers can apply
    the well-formedness contract to 4xx/5xx bodies too.
    """
    try:
        response = urllib.request.urlopen(url, timeout=timeout)
        return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


async def http_get(
    host: str, port: int, path: str, timeout: float = 120.0
) -> Response:
    """Asyncio GET against ``http://host:port``; returns ``(status, headers, body)``.

    Speaks just enough HTTP/1.1 for the tile server: one request per
    connection (``Connection: close``), Content-Length or read-to-EOF
    bodies. No thread is consumed while the request is in flight, so a
    load generator can hold thousands of concurrent requests open.
    """

    async def _go() -> Response:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            request = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(request.encode("ascii"))
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("latin-1", "replace").split(" ", 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"malformed status line: {status_line!r}")
            status = int(parts[1])

            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1", "replace").partition(":")
                headers[name.strip()] = value.strip()

            length = headers.get("Content-Length")
            if length is not None and length.isdigit():
                body = await reader.readexactly(int(length))
            else:
                body = await reader.read(_MAX_BODY_BYTES)
            return status, headers, body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # lint: allow-silent-except
                pass  # peer already gone; the response is complete

    return await asyncio.wait_for(_go(), timeout=timeout)


def check_wellformed(
    status: int, headers: Dict[str, str], body: bytes
) -> Optional[str]:
    """Validate one tile response; return a violation message or ``None``.

    Encodes the server's on-the-wire contract: a 200 is a PNG (degraded
    200s additionally carry no-store + Warning), anything else is a
    structured JSON error, and backpressure statuses advertise
    ``Retry-After``.
    """
    if status == 200:
        if not body.startswith(PNG_SIGNATURE):
            return "200 body is not a PNG"
        if headers.get("X-Repro-Degraded"):
            if headers.get("Cache-Control") != "no-store":
                return "degraded 200 missing Cache-Control: no-store"
            if "Warning" not in headers:
                return "degraded 200 missing Warning header"
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return f"status {status} body is not JSON: {body[:120]!r}"
    if not isinstance(payload, dict):
        return f"status {status} error JSON is not an object: {payload!r}"
    for field in ("status", "code", "message"):
        if field not in payload:
            return f"status {status} error JSON missing {field!r}: {payload!r}"
    if status in (503, 504) and "Retry-After" not in headers:
        return f"status {status} missing Retry-After header"
    return None
