#!/usr/bin/env python
"""Project-specific AST linter for bound-soundness hazards.

Generic linters cannot know that this codebase's correctness hinges on
floating-point discipline (the ``LB <= F <= UB`` contract of the bound
machinery degrades silently, not loudly). This tool encodes the rules
that keep that contract auditable:

``float-eq``
    No ``==`` / ``!=`` against a float literal. Exact float comparison
    is almost always a hidden tolerance bug; the handful of intentional
    exact-sentinel comparisons carry an allowlist marker.
``unclipped-exp``
    Every ``np.exp`` argument must pass through ``np.minimum`` /
    ``np.maximum`` / ``np.clip`` (or carry a marker): unclipped
    ``exp(-x)`` underflows for large ``x`` and breaks warning-clean
    runs under ``-W error``.
``dtype-required``
    Array constructors (``np.array``, ``np.asarray``, ``np.empty``,
    ``np.zeros``, ``np.ones``, ``np.full``) inside ``core/`` and
    ``index/`` must pass ``dtype=`` explicitly — bound arithmetic must
    never silently run in float32 or object dtype.
``mutable-default``
    No mutable default argument values (list/dict/set literals or
    constructor calls).
``bounds-interface``
    Every ``BoundProvider`` subclass under ``core/bounds/`` must define
    ``name`` and implement ``node_bounds`` itself (no partially
    implemented providers reachable through the factory).
``missing-all``
    Every public module must declare ``__all__``.
``return-annotation``
    Every public function and public method must annotate its return
    type (the teeth behind the repository-wide typing pass).
``silent-except``
    No ``except`` handler whose body is only ``pass`` / ``...`` —
    a swallowed error is the same silent failure mode the contracts
    exist to prevent.
``legacy-render``
    No ``render_eps(`` / ``render_tau(`` calls inside ``serve/``. The
    tile service must go through the unified
    ``KDVRenderer.render(request)`` entrypoint — the cache keys are
    request fingerprints, so a render that bypasses the request object
    bypasses the cache-key discipline with it.
``bare-except``
    No ``except:`` without an exception type. A bare except catches
    ``KeyboardInterrupt`` and ``SystemExit``, which breaks the
    resilience layer's cooperative-cancellation contract (Ctrl-C must
    reach the tile runner, not die in a helper). Catch ``Exception``
    — or the precise type — instead; the rare deliberate case carries
    ``# lint: allow-bare-except``.
``backend-dispatch``
    No direct ``node_bounds_batch`` / ``leaf_exact_batch`` (or their
    ``checked_`` variants) calls outside ``core/backends/`` and
    ``core/bounds/``, and no direct ``kernel.evaluate(...)`` calls
    outside those plus ``core/exact.py`` (the reference scan the
    backends are validated against). Engine and renderer code must
    route batched evaluations through the engine's resolved
    :class:`~repro.core.backends.base.ComputeBackend` — a call that
    goes straight to the provider (or to the kernel itself, as the
    weighted-coreset evaluation paths could) silently pins the numpy
    path and escapes the ``REPRO_BACKEND`` /
    ``RenderOptions.backend`` selection. The dispatch targets and the
    deliberate backend-independent scalar paths carry
    ``# lint: allow-backend-dispatch``.
``shim-import``
    No ``repro.compat`` imports inside ``src/`` (outside the shim
    module itself). ``repro.compat`` exists for *external* callers
    migrating off the legacy surface; internal code importing it makes
    the deprecated names load-bearing and un-removable. The blessed
    exceptions (the package root's ``QuadKernelDensity`` re-export and
    the historical ``kernel_normaliser`` alias) carry
    ``# lint: allow-shim-import``.

False positives are suppressed with an inline marker on the same or the
preceding line::

    if extent == 0.0:  # lint: allow-float-eq -- exact sentinel, see docs

Usage::

    python tools/lint_invariants.py src/ [more paths...]

Exits 0 when clean, 1 when violations are found, 2 on usage errors.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, NamedTuple

__all__ = ["Violation", "lint_file", "lint_paths", "main"]

#: Inline suppression marker, e.g. ``# lint: allow-float-eq``.
_MARKER_RE = re.compile(r"#\s*lint:\s*allow-([a-z-]+)")

#: numpy array constructors that must receive an explicit ``dtype=``.
_DTYPE_CONSTRUCTORS = frozenset(
    {"array", "asarray", "ascontiguousarray", "empty", "zeros", "ones", "full"}
)

#: Call names accepted as "clipping" an ``np.exp`` argument.
_CLIP_CALLS = frozenset({"minimum", "maximum", "clip", "min", "max"})

#: Subtrees under these packages require ``dtype-required``.
_DTYPE_SCOPED_PARTS = ("core", "index")


class Violation(NamedTuple):
    """One linter finding."""

    path: Path
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _collect_markers(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names suppressed on that line.

    A marker on a code line suppresses on that line. A marker inside a
    comment block carries forward through the rest of the block and onto
    the first code line after it, so multi-line justification comments
    work naturally.
    """
    markers: dict[int, set[str]] = {}
    pending: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        found = {match.group(1) for match in _MARKER_RE.finditer(line)}
        comment_only = line.lstrip().startswith("#")
        active = found | pending
        if active:
            markers[lineno] = active
        if comment_only:
            pending = active
        else:
            pending = set()
    return markers


def _suppressed(markers: dict[int, set[str]], line: int, rule: str) -> bool:
    """A marker on the flagged line or the line above suppresses the rule."""
    return rule in markers.get(line, ()) or rule in markers.get(line - 1, ())


def _call_name(node: ast.expr) -> str | None:
    """Trailing name of a call target: ``np.exp`` -> ``exp``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_numpy_call(node: ast.expr) -> bool:
    """Whether a call target looks like ``np.<fn>`` / ``numpy.<fn>``."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _contains_clip(node: ast.AST) -> bool:
    """Whether any call inside ``node`` is a clipping function."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and _call_name(child.func) in _CLIP_CALLS:
            return True
    return False


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node.func) in ("list", "dict", "set")
    return False


def _iter_defaults(args: ast.arguments) -> Iterator[ast.expr]:
    for default in args.defaults:
        yield default
    for default in args.kw_defaults:
        if default is not None:
            yield default


def _public_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Yield public module-level functions and public methods of classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_"):
                        yield item


def _has_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in node.targets
            ):
                return True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                return True
    return False


def _dtype_scoped(path: Path) -> bool:
    parts = path.parts
    return any(part in _DTYPE_SCOPED_PARTS for part in parts)


def _bounds_scoped(path: Path) -> bool:
    return "bounds" in path.parts and path.name != "base.py"


def _check_float_eq(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if not any(
            isinstance(operand, ast.Constant) and isinstance(operand.value, float)
            for operand in operands
        ):
            continue
        if _suppressed(markers, node.lineno, "float-eq"):
            continue
        yield Violation(
            path,
            node.lineno,
            "float-eq",
            "exact ==/!= against a float literal; compare with a tolerance "
            "or add '# lint: allow-float-eq' with a justification",
        )


def _check_unclipped_exp(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node.func) != "exp" or not _is_numpy_call(node.func):
            continue
        if node.args and _contains_clip(node.args[0]):
            continue
        if _suppressed(markers, node.lineno, "unclipped-exp"):
            continue
        yield Violation(
            path,
            node.lineno,
            "unclipped-exp",
            "np.exp argument is not clipped (np.minimum/np.maximum/np.clip); "
            "large magnitudes underflow and warn under -W error",
        )


def _check_dtype_required(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    if not _dtype_scoped(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name not in _DTYPE_CONSTRUCTORS or not _is_numpy_call(node.func):
            continue
        if any(keyword.arg == "dtype" for keyword in node.keywords):
            continue
        if _suppressed(markers, node.lineno, "dtype-required"):
            continue
        yield Violation(
            path,
            node.lineno,
            "dtype-required",
            f"np.{name} without an explicit dtype= inside core/ or index/; "
            "bound arithmetic must not silently change precision",
        )


def _check_mutable_default(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        for default in _iter_defaults(node.args):
            if _is_mutable_literal(default) and not _suppressed(
                markers, default.lineno, "mutable-default"
            ):
                yield Violation(
                    path,
                    default.lineno,
                    "mutable-default",
                    "mutable default argument value; use None and create "
                    "the container inside the function",
                )


def _check_bounds_interface(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    if not _bounds_scoped(path):
        return
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {_call_name(base) for base in node.bases}
        if "BoundProvider" not in base_names and not any(
            isinstance(name, str) and name.endswith("BoundProvider")
            for name in base_names
        ):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        attributes = {
            target.id
            for item in node.body
            if isinstance(item, ast.Assign)
            for target in item.targets
            if isinstance(target, ast.Name)
        } | {
            item.target.id
            for item in node.body
            if isinstance(item, ast.AnnAssign)
            if isinstance(item.target, ast.Name)
        }
        missing = [
            requirement
            for requirement, present in (
                ("name", "name" in attributes),
                ("node_bounds", "node_bounds" in methods),
            )
            if not present
        ]
        if missing and not _suppressed(markers, node.lineno, "bounds-interface"):
            yield Violation(
                path,
                node.lineno,
                "bounds-interface",
                f"BoundProvider subclass {node.name!r} is missing "
                f"{', '.join(missing)} (full base.py interface required)",
            )


def _check_missing_all(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    if path.name.startswith("_") and path.name != "__init__.py":
        return
    if _has_all(tree) or _suppressed(markers, 1, "missing-all"):
        return
    yield Violation(
        path,
        1,
        "missing-all",
        "public module does not declare __all__",
    )


def _check_return_annotation(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    for node in _public_defs(tree):
        if node.returns is not None:
            continue
        if _suppressed(markers, node.lineno, "return-annotation"):
            continue
        yield Violation(
            path,
            node.lineno,
            "return-annotation",
            f"public def {node.name!r} has no return annotation",
        )


def _check_silent_except(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        ):
            continue
        if _suppressed(markers, node.lineno, "silent-except"):
            continue
        yield Violation(
            path,
            node.lineno,
            "silent-except",
            "except handler silently swallows the error (body is only "
            "pass/...); handle, log or re-raise",
        )


#: Legacy entrypoints forbidden inside the serve package.
_LEGACY_RENDER_CALLS = frozenset(
    {"render_eps", "render_tau", "render_eps_anytime", "render_tau_anytime"}
)


def _serve_scoped(path: Path) -> bool:
    return "serve" in path.parts


def _check_legacy_render(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    if not _serve_scoped(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name not in _LEGACY_RENDER_CALLS:
            continue
        if _suppressed(markers, node.lineno, "legacy-render"):
            continue
        yield Violation(
            path,
            node.lineno,
            "legacy-render",
            f"{name}() is forbidden in serve/; build a RenderRequest and "
            "call renderer.render(request) so the cache-key fingerprint "
            "covers exactly what was rendered",
        )


#: Batched evaluation entrypoints that must go through backend dispatch.
_BACKEND_DISPATCH_CALLS = frozenset(
    {
        "node_bounds_batch",
        "leaf_exact_batch",
        "checked_node_bounds_batch",
        "checked_leaf_exact_batch",
    }
)

#: Kernel-evaluation entrypoints: direct ``kernel.evaluate(...)`` calls
#: outside the dispatch layer sidestep the compute-backend abstraction
#: exactly like the batch entrypoints do — the weighted-coreset tier
#: added new evaluation call sites, so the rule covers both families.
_KERNEL_EVAL_CALLS = frozenset({"evaluate"})


def _backend_dispatch_exempt(path: Path) -> bool:
    """Whether a file legitimately calls the batch entrypoints directly.

    ``core/backends/`` holds the dispatch targets, ``core/bounds/`` the
    provider implementations (including internal checked -> unchecked
    delegation), and ``core/exact.py`` the reference brute-force scan
    the backends are validated against; everywhere else must route
    through the engine's resolved backend.
    """
    parts = path.parts
    if parts and parts[-1] == "exact.py" and len(parts) >= 2 and parts[-2] == "core":
        return True
    for index in range(len(parts) - 1):
        if parts[index] == "core" and parts[index + 1] in ("backends", "bounds"):
            return True
    return False


def _is_kernel_eval(node: ast.Call) -> bool:
    """``<something>.evaluate(...)`` where the receiver looks like a kernel.

    Restricted to receivers named ``kernel`` / ``self.kernel`` /
    ``*.kernel`` so unrelated ``evaluate`` methods (e.g. expression
    evaluators) never trip the rule.
    """
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _KERNEL_EVAL_CALLS):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id == "kernel"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "kernel"
    return False


def _check_backend_dispatch(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    if _backend_dispatch_exempt(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name in _BACKEND_DISPATCH_CALLS:
            if _suppressed(markers, node.lineno, "backend-dispatch"):
                continue
            yield Violation(
                path,
                node.lineno,
                "backend-dispatch",
                f"direct {name}() call bypasses the compute-backend dispatch; "
                "go through the engine's resolved backend "
                "(backend.node_bounds_batch(provider, ...)) so REPRO_BACKEND "
                "and RenderOptions.backend keep working",
            )
        elif _is_kernel_eval(node):
            if _suppressed(markers, node.lineno, "backend-dispatch"):
                continue
            yield Violation(
                path,
                node.lineno,
                "backend-dispatch",
                "direct kernel.evaluate() call bypasses the compute-backend "
                "dispatch; evaluate densities through exact_density / the "
                "engine's resolved backend (or mark a deliberate reference "
                "path with '# lint: allow-backend-dispatch')",
            )


def _check_bare_except(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is not None:
            continue
        if _suppressed(markers, node.lineno, "bare-except"):
            continue
        yield Violation(
            path,
            node.lineno,
            "bare-except",
            "bare 'except:' also catches KeyboardInterrupt/SystemExit and "
            "defeats cooperative cancellation; catch Exception or the "
            "precise type, or add '# lint: allow-bare-except'",
        )


_SHIM_MODULE = "repro.compat"


def _check_shim_import(
    path: Path, tree: ast.Module, markers: dict[int, set[str]]
) -> Iterator[Violation]:
    if path.name == "compat.py" and "repro" in path.parts:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if not (module == _SHIM_MODULE or module.startswith(_SHIM_MODULE + ".")):
                continue
        elif isinstance(node, ast.Import):
            if not any(
                alias.name == _SHIM_MODULE
                or alias.name.startswith(_SHIM_MODULE + ".")
                for alias in node.names
            ):
                continue
        else:
            continue
        if _suppressed(markers, node.lineno, "shim-import"):
            continue
        yield Violation(
            path,
            node.lineno,
            "shim-import",
            "internal import of the repro.compat shim keeps deprecated names "
            "load-bearing; import the canonical home instead (or mark a "
            "blessed re-export with '# lint: allow-shim-import')",
        )


_CHECKS = (
    _check_shim_import,
    _check_float_eq,
    _check_unclipped_exp,
    _check_dtype_required,
    _check_mutable_default,
    _check_bounds_interface,
    _check_missing_all,
    _check_return_annotation,
    _check_silent_except,
    _check_legacy_render,
    _check_bare_except,
    _check_backend_dispatch,
)


def lint_file(path: Path) -> list[Violation]:
    """Lint one Python file and return its violations."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Violation(path, error.lineno or 1, "syntax", f"cannot parse: {error.msg}")
        ]
    markers = _collect_markers(source)
    violations: list[Violation] = []
    for check in _CHECKS:
        violations.extend(check(path, tree, markers))
    return violations


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path]) -> list[Violation]:
    """Lint every ``.py`` file under the given paths."""
    violations: list[Violation] = []
    for path in _iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = sys.argv[1:] if argv is None else argv
    if not arguments:
        print(__doc__, file=sys.stderr)
        return 2
    paths = [Path(argument) for argument in arguments]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    violations = lint_paths(paths)
    for violation in sorted(violations):
        print(violation.format())
    if violations:
        print(f"\n{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
