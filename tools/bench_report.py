#!/usr/bin/env python
"""Standing engine benchmark: scalar versus batched refinement.

Runs the canonical εKDV/τKDV rendering workload (Gaussian kernel on a
synthetic dataset analogue) through both refinement schedules of the
same method — the per-pixel scalar loop of
:class:`repro.core.engine.RefinementEngine` and the batched frontier of
:class:`repro.core.batch_engine.BatchRefinementEngine` — and writes the
results to ``BENCH_engine.json`` at the repository root.

Besides timing, the report validates the contracts that make the
comparison meaningful:

* every εKDV density (both schedules) lies within ``(1 ± eps)`` of the
  brute-force exact density (up to the renderer's default ``atol``);
* the τKDV masks of both schedules are identical, pixel for pixel.

The script exits non-zero if any validation fails, so CI can run it as
a smoke job (``--smoke`` shrinks the workload to seconds).

Usage::

    PYTHONPATH=src python tools/bench_report.py            # full workload
    PYTHONPATH=src python tools/bench_report.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import shim for running without PYTHONPATH
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

__all__ = ["run_benchmark", "main"]

#: The acceptance workload: Gaussian εKDV at 320 x 240 (paper Figure 16's
#: smallest resolution) over a synthetic dataset analogue.
FULL_WORKLOAD = {"n": 8000, "resolution": (320, 240)}
#: CI-sized workload: same shape, seconds instead of minutes.
SMOKE_WORKLOAD = {"n": 1500, "resolution": (80, 60)}


def _timed_best(fn: Callable[[], Any], repeats: int) -> tuple[Any, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best seconds)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def run_benchmark(
    n: int,
    resolution: tuple[int, int],
    eps: float = 0.01,
    dataset: str = "crime",
    seed: int = 0,
    leaf_size: int = 256,
    tile_size: int = 64,
    workers: int = 4,
    repeats: int = 1,
    trace: bool = True,
) -> dict[str, Any]:
    """Run the scalar/batched comparison; return the report dictionary."""
    import numpy as np

    from repro.data.synthetic import load_dataset
    from repro.visual.kdv import KDVRenderer
    from repro.visual.request import RenderOptions, RenderRequest

    points = load_dataset(dataset, n=n, seed=seed)
    renderer = KDVRenderer(
        points, resolution=resolution, kernel="gaussian", leaf_size=leaf_size
    )
    method = renderer.get_method("quad")  # offline stage, outside timing
    atol = 1e-9 * renderer.weight
    tiled = RenderOptions(tile_size=tile_size)
    tiled_workers = RenderOptions(tile_size=tile_size, workers=workers)

    def measure(label: str, fn: Callable[[], Any]) -> tuple[Any, dict[str, Any]]:
        method.stats.reset()
        result, seconds = _timed_best(fn, repeats)
        report = {"seconds": round(seconds, 6), "stats": method.stats.as_dict()}
        print(f"  {label:<16s} {seconds:8.3f}s")
        return result, report

    print(f"workload: {dataset} n={n} {resolution[0]}x{resolution[1]} eps={eps}")
    scalar_img, scalar_rep = measure(
        "eps scalar", lambda: renderer.render(RenderRequest.for_eps(eps, "quad"))
    )
    batch_img, batch_rep = measure(
        "eps batched",
        lambda: renderer.render(RenderRequest.for_eps(eps, "quad", options=tiled)),
    )
    workers_img, workers_rep = measure(
        f"eps workers={workers}",
        lambda: renderer.render(
            RenderRequest.for_eps(eps, "quad", options=tiled_workers)
        ),
    )
    batch_rep["speedup_vs_scalar"] = round(
        scalar_rep["seconds"] / batch_rep["seconds"], 3
    )
    workers_rep["speedup_vs_scalar"] = round(
        scalar_rep["seconds"] / workers_rep["seconds"], 3
    )

    exact = renderer.render_exact()
    envelope = {}
    for label, image in (("scalar", scalar_img), ("batch", batch_img),
                         ("workers", workers_img)):
        error = np.abs(image - exact)
        allowed = eps * exact + atol
        envelope[label] = {
            "within_envelope": bool(np.all(error <= allowed)),
            "max_rel_error": float(
                np.max(error / np.maximum(exact, np.finfo(np.float64).tiny))
            ),
        }

    tau = max(float(np.median(exact)), float(np.finfo(np.float64).tiny))
    scalar_mask, tau_scalar_rep = measure(
        "tau scalar", lambda: renderer.render(RenderRequest.for_tau(tau, "quad"))
    )
    batch_mask, tau_batch_rep = measure(
        "tau batched",
        lambda: renderer.render(RenderRequest.for_tau(tau, "quad", options=tiled)),
    )
    tau_batch_rep["speedup_vs_scalar"] = round(
        tau_scalar_rep["seconds"] / tau_batch_rep["seconds"], 3
    )
    masks_identical = bool(np.array_equal(scalar_mask, batch_mask))

    # Untimed traced pass: the timing runs above stay tracing-free (the
    # zero-overhead-when-off contract is part of what this report
    # documents), then one batched render of each op is re-run under a
    # scoped tracer so the report carries the refinement-depth and
    # bound-tightness summary of the exact workload it timed.
    trace_summary: dict[str, Any] | None = None
    if trace:
        from repro.obs.report import summarize_events
        from repro.obs.runtime import trace_to

        with trace_to() as tracer:
            renderer.render(RenderRequest.for_eps(eps, "quad", options=tiled))
            renderer.render(RenderRequest.for_tau(tau, "quad", options=tiled))
        trace_summary = summarize_events(tracer.events())

    return {
        "benchmark": "engine_batching",
        "generated_by": "tools/bench_report.py",
        "workload": {
            "dataset": dataset,
            "kernel": "gaussian",
            "n": n,
            "resolution": list(resolution),
            "eps": eps,
            "atol": atol,
            "leaf_size": leaf_size,
            "tile_size": tile_size,
            "workers": workers,
            "repeats": repeats,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "eps_render": {
            "scalar": scalar_rep,
            "batch": batch_rep,
            "batch_workers": workers_rep,
        },
        "tau_render": {
            "tau": tau,
            "scalar": tau_scalar_rep,
            "batch": tau_batch_rep,
            "masks_identical": masks_identical,
        },
        "validation": {"eps_envelope": envelope, "tau_masks_identical": masks_identical},
        "trace": trace_summary,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workload (seconds); skips writing BENCH_engine.json "
        "unless --output is given",
    )
    parser.add_argument("--dataset", default="crime")
    parser.add_argument("--eps", type=float, default=0.01)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--tile-size", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--no-trace", action="store_true",
        help="skip the untimed traced pass (report carries no trace summary)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="report path (default: BENCH_engine.json at the repo root; "
        "omitted entirely for --smoke)",
    )
    args = parser.parse_args(argv)

    workload = SMOKE_WORKLOAD if args.smoke else FULL_WORKLOAD
    report = run_benchmark(
        n=workload["n"],
        resolution=workload["resolution"],
        eps=args.eps,
        dataset=args.dataset,
        tile_size=args.tile_size,
        workers=args.workers,
        repeats=args.repeats,
        trace=not args.no_trace,
    )
    report["smoke"] = args.smoke

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_engine.json"
    if output is not None:
        # allow_nan=False: a NaN/Inf anywhere in the report is a bug in
        # the summarisation (it would silently produce invalid JSON).
        output.write_text(json.dumps(report, indent=2, allow_nan=False) + "\n")
        print(f"wrote {output}")

    failures = []
    for label, entry in report["validation"]["eps_envelope"].items():
        if not entry["within_envelope"]:
            failures.append(f"eps envelope violated by the {label} schedule")
    if not report["validation"]["tau_masks_identical"]:
        failures.append("tau masks differ between scalar and batched schedules")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    speedup = report["eps_render"]["batch"]["speedup_vs_scalar"]
    print(f"batched eps speedup vs scalar: {speedup}x")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
