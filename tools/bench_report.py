#!/usr/bin/env python
"""Standing engine benchmark: scalar versus batched refinement.

Runs the canonical εKDV/τKDV rendering workload (Gaussian kernel on a
synthetic dataset analogue) through both refinement schedules of the
same method — the per-pixel scalar loop of
:class:`repro.core.engine.RefinementEngine` and the batched frontier of
:class:`repro.core.batch_engine.BatchRefinementEngine` — and writes the
results to ``BENCH_engine.json`` at the repository root.

Besides timing, the report validates the contracts that make the
comparison meaningful:

* every εKDV density (both schedules) lies within ``(1 ± eps)`` of the
  brute-force exact density (up to the renderer's default ``atol``);
* the τKDV masks of both schedules are identical, pixel for pixel.

The script exits non-zero if any validation fails, so CI can run it as
a smoke job (``--smoke`` shrinks the workload to seconds).

Usage::

    PYTHONPATH=src python tools/bench_report.py            # full workload
    PYTHONPATH=src python tools/bench_report.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import shim for running without PYTHONPATH
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

__all__ = ["run_benchmark", "main"]

#: The acceptance workload: Gaussian εKDV at 320 x 240 (paper Figure 16's
#: smallest resolution) over a synthetic dataset analogue.
FULL_WORKLOAD = {"n": 8000, "resolution": (320, 240)}
#: CI-sized workload: same shape, seconds instead of minutes.
SMOKE_WORKLOAD = {"n": 1500, "resolution": (80, 60)}

#: Worker counts swept by the parallel-scaling section.
SCALING_WORKERS = (1, 2, 4, 8)
#: Executors swept by the parallel-scaling section.
SCALING_EXECUTORS = ("thread", "process")


def _timed_best(fn: Callable[[], Any], repeats: int) -> tuple[Any, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best seconds)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _parallel_scaling(
    renderer: Any,
    method: Any,
    *,
    eps: float,
    atol: float,
    exact: Any,
    tau: float,
    scalar_mask: Any,
    tile_size: int,
    repeats: int,
) -> dict[str, Any]:
    """Sweep workers x executor x backend over the εKDV render.

    Per-tile refinement is bit-identical across executors and worker
    counts by construction (the tile partition fixes each batch), so
    besides timing the sweep doubles as a cross-executor equality
    check against the single-thread tiled image, and — once per
    backend x executor — a τ-mask identity check against the scalar
    schedule. Numbers are recorded as measured: on a single-core
    runner the thread legs cannot exceed 1x and the process legs pay
    pool and serialisation overhead, so sub-1x speedups are expected
    and are not a failure.
    """
    import numpy as np

    from repro.core.backends import available_backends, numba_available
    from repro.visual.request import RenderOptions, RenderRequest

    section: dict[str, Any] = {
        "workers_swept": list(SCALING_WORKERS),
        "executors_swept": list(SCALING_EXECUTORS),
        "cpu_count": os.cpu_count(),
        "numba_available": numba_available(),
        "backends": {},
    }

    def render_eps(options: "RenderOptions") -> Any:
        return renderer.render(RenderRequest.for_eps(eps, "quad", options=options))

    for backend in available_backends():
        single = RenderOptions(tile_size=tile_size, workers=1, backend=backend)
        reference, base_seconds = _timed_best(lambda: render_eps(single), repeats)
        rows = []
        ok = True
        for executor in SCALING_EXECUTORS:
            for workers in SCALING_WORKERS:
                options = RenderOptions(
                    tile_size=tile_size, workers=workers,
                    executor=executor, backend=backend,
                )
                image, seconds = _timed_best(lambda: render_eps(options), repeats)
                error = np.abs(image - exact)
                within = bool(np.all(error <= eps * exact + atol))
                identical = bool(np.array_equal(image, reference))
                ok = ok and within and identical
                speedup = base_seconds / seconds if seconds > 0 else 0.0
                rows.append({
                    "executor": executor,
                    "workers": workers,
                    "seconds": round(seconds, 6),
                    "speedup_vs_single_thread": round(speedup, 3),
                    "parallel_efficiency": round(speedup / workers, 3),
                    "identical_to_single_thread": identical,
                    "within_envelope": within,
                })
                print(
                    f"  scaling {backend:<6s} {executor:<8s} workers={workers} "
                    f"{seconds:8.3f}s  ({speedup:5.2f}x)"
                )
        tau_masks = {}
        for executor in SCALING_EXECUTORS:
            options = RenderOptions(
                tile_size=tile_size, workers=4, executor=executor, backend=backend
            )
            mask = renderer.render(
                RenderRequest.for_tau(tau, "quad", options=options)
            )
            tau_masks[executor] = bool(np.array_equal(mask, scalar_mask))
            ok = ok and tau_masks[executor]
        section["backends"][backend] = {
            "single_thread_seconds": round(base_seconds, 6),
            "eps": rows,
            "tau_masks_identical": tau_masks,
            "all_identical_and_within_envelope": ok,
        }

    # Release the process pools (and their shared-memory tree segments)
    # the sweep spun up on the fitted method.
    closer = getattr(method, "close_executors", None)
    if closer is not None:
        closer()
    return section


def _coreset_parity(renderer: Any, *, delta_cap: float, seed: int) -> dict[str, Any]:
    """Spot-check the coreset error bound against brute-force exact KDE.

    Builds one weighted coreset over the benchmark points and verifies
    ``|KDE_coreset - KDE_exact| <= delta_abs`` at random queries spread
    over the data's bounding box — the inequality every serve-layer
    ``eps`` fold relies on. Runs in both smoke and full mode.
    """
    import numpy as np

    from repro.core.exact import exact_density
    from repro.sampling import coreset_for_delta

    points = renderer.points
    span = float(np.max(points.max(axis=0) - points.min(axis=0)))
    coreset = coreset_for_delta(
        points,
        renderer.kernel,
        renderer.gamma,
        renderer.weight,
        cell_size=max(span / 8.0, 1e-300),
        delta_cap=delta_cap,
    )
    rng = np.random.default_rng(seed)
    low, high = points.min(axis=0), points.max(axis=0)
    queries = rng.uniform(low, high, size=(128, points.shape[1]))
    exact = exact_density(points, queries, renderer.kernel, renderer.gamma, renderer.weight)
    approx = exact_density(
        coreset.points,
        queries,
        renderer.kernel,
        renderer.gamma,
        renderer.weight,
        point_weights=coreset.weights,
    )
    max_abs_error = float(np.max(np.abs(approx - exact)))
    # delta_abs is exact arithmetic on realised displacements; allow a
    # few ulps of accumulated rounding in the two density sums.
    within = bool(max_abs_error <= coreset.delta_abs * (1.0 + 1e-9) + 1e-15)
    print(
        f"  coreset parity  m={coreset.m} delta_abs={coreset.delta_abs:.3e} "
        f"max|err|={max_abs_error:.3e} within={within}"
    )
    return {
        "delta_cap": delta_cap,
        "n_source": coreset.n_source,
        "m": coreset.m,
        "compression": round(coreset.n_source / max(coreset.m, 1), 2),
        "delta_abs": coreset.delta_abs,
        "delta_z": coreset.delta_z,
        "queries": int(queries.shape[0]),
        "max_abs_error": max_abs_error,
        "within_delta": within,
    }


def _coreset_pyramid(
    n: int,
    *,
    dataset: str,
    seed: int,
    tile_px: int,
    eps: float,
    zoom_threshold: int,
    delta_cap: float,
    leaf_size: int,
    baseline_seconds: float | None,
) -> dict[str, Any]:
    """Cold low-zoom serving latency: coreset tier vs exact QUAD at scale.

    Registers the same ``n``-point synthetic dataset twice — once with a
    coreset pyramid below ``zoom_threshold``, once plain — and times the
    cold ``(0, 0, 0)`` tile through each. Registration (tree build +
    pyramid materialisation) happens outside the timed window, mirroring
    the offline stage of the main workload; the timed window is the
    user-visible first-tile latency.
    """
    from repro.data.synthetic import load_dataset
    from repro.serve.service import RenderConfig, ServiceConfig, TileService

    points = load_dataset(dataset, n=n, seed=seed)
    config = ServiceConfig(
        render=RenderConfig(tile_px=tile_px, eps=eps, deadline_ms=None, workers=1)
    )

    def timed_register(service: TileService, **kwargs: Any) -> float:
        start = time.perf_counter()
        entry = service.registry.register("pyramid", points, leaf_size=leaf_size, **kwargs)
        entry.warm()
        return time.perf_counter() - start

    def timed_cold_tile(service: TileService) -> tuple[float, dict[str, Any]]:
        start = time.perf_counter()
        _, info = service.get_tile("pyramid", 0, 0, 0)
        return time.perf_counter() - start, info

    coreset_svc = TileService(config=config)
    exact_svc = TileService(config=config)
    try:
        coreset_build_s = timed_register(
            coreset_svc, coreset_zoom=zoom_threshold, coreset_delta_cap=delta_cap
        )
        exact_build_s = timed_register(exact_svc)
        coreset_cold_s, coreset_info = timed_cold_tile(coreset_svc)
        print(f"  pyramid n={n} cold z0 coreset {coreset_cold_s:8.3f}s")
        exact_cold_s, exact_info = timed_cold_tile(exact_svc)
        print(f"  pyramid n={n} cold z0 exact   {exact_cold_s:8.3f}s")
        warm_start = time.perf_counter()
        _, warm_info = coreset_svc.get_tile("pyramid", 0, 0, 0)
        warm_s = time.perf_counter() - warm_start
        tiers = coreset_svc.registry.get("pyramid").as_dict()["coreset"]["tiers"]
    finally:
        coreset_svc.close()
        exact_svc.close()

    speedup = exact_cold_s / coreset_cold_s if coreset_cold_s > 0 else 0.0
    return {
        "n": n,
        "dataset": dataset,
        "tile_px": tile_px,
        "eps": eps,
        "zoom_threshold": zoom_threshold,
        "delta_cap": delta_cap,
        "leaf_size": leaf_size,
        "register_seconds": {
            "coreset": round(coreset_build_s, 6),
            "exact": round(exact_build_s, 6),
        },
        "cold_tile_z0": {
            "coreset_seconds": round(coreset_cold_s, 6),
            "exact_seconds": round(exact_cold_s, 6),
            "speedup": round(speedup, 3),
            "coreset_tier": coreset_info.get("tier"),
            "exact_tier": exact_info.get("tier"),
        },
        "warm_tile_z0": {
            "seconds": round(warm_s, 6),
            "cache": warm_info.get("cache"),
        },
        "tiers": tiers,
        "baseline_8k_scalar_seconds": baseline_seconds,
    }


def run_benchmark(
    n: int,
    resolution: tuple[int, int],
    eps: float = 0.01,
    dataset: str = "crime",
    seed: int = 0,
    leaf_size: int = 256,
    tile_size: int = 64,
    workers: int = 4,
    repeats: int = 1,
    trace: bool = True,
    executor: str | None = None,
    backend: str | None = None,
    scaling: bool = True,
    pyramid_n: int | None = None,
    pyramid_zoom: int = 3,
    coreset_delta_cap: float = 0.01,
) -> dict[str, Any]:
    """Run the scalar/batched comparison; return the report dictionary."""
    import numpy as np

    from repro.data.synthetic import load_dataset
    from repro.visual.kdv import KDVRenderer
    from repro.visual.request import RenderOptions, RenderRequest

    points = load_dataset(dataset, n=n, seed=seed)
    renderer = KDVRenderer(
        points, resolution=resolution, kernel="gaussian", leaf_size=leaf_size
    )
    method = renderer.get_method("quad")  # offline stage, outside timing
    atol = 1e-9 * renderer.weight
    tiled = RenderOptions(tile_size=tile_size, backend=backend)
    tiled_workers = RenderOptions(
        tile_size=tile_size, workers=workers, executor=executor, backend=backend
    )

    def measure(label: str, fn: Callable[[], Any]) -> tuple[Any, dict[str, Any]]:
        method.stats.reset()
        result, seconds = _timed_best(fn, repeats)
        report = {"seconds": round(seconds, 6), "stats": method.stats.as_dict()}
        print(f"  {label:<16s} {seconds:8.3f}s")
        return result, report

    print(f"workload: {dataset} n={n} {resolution[0]}x{resolution[1]} eps={eps}")
    scalar_img, scalar_rep = measure(
        "eps scalar", lambda: renderer.render(RenderRequest.for_eps(eps, "quad"))
    )
    batch_img, batch_rep = measure(
        "eps batched",
        lambda: renderer.render(RenderRequest.for_eps(eps, "quad", options=tiled)),
    )
    workers_img, workers_rep = measure(
        f"eps workers={workers}",
        lambda: renderer.render(
            RenderRequest.for_eps(eps, "quad", options=tiled_workers)
        ),
    )
    batch_rep["speedup_vs_scalar"] = round(
        scalar_rep["seconds"] / batch_rep["seconds"], 3
    )
    workers_rep["speedup_vs_scalar"] = round(
        scalar_rep["seconds"] / workers_rep["seconds"], 3
    )

    exact = renderer.render_exact()
    envelope = {}
    for label, image in (("scalar", scalar_img), ("batch", batch_img),
                         ("workers", workers_img)):
        error = np.abs(image - exact)
        allowed = eps * exact + atol
        envelope[label] = {
            "within_envelope": bool(np.all(error <= allowed)),
            "max_rel_error": float(
                np.max(error / np.maximum(exact, np.finfo(np.float64).tiny))
            ),
        }

    tau = max(float(np.median(exact)), float(np.finfo(np.float64).tiny))
    scalar_mask, tau_scalar_rep = measure(
        "tau scalar", lambda: renderer.render(RenderRequest.for_tau(tau, "quad"))
    )
    batch_mask, tau_batch_rep = measure(
        "tau batched",
        lambda: renderer.render(RenderRequest.for_tau(tau, "quad", options=tiled)),
    )
    tau_batch_rep["speedup_vs_scalar"] = round(
        tau_scalar_rep["seconds"] / tau_batch_rep["seconds"], 3
    )
    masks_identical = bool(np.array_equal(scalar_mask, batch_mask))

    parity_section = _coreset_parity(renderer, delta_cap=coreset_delta_cap, seed=seed)

    pyramid_section: dict[str, Any] | None = None
    if pyramid_n is not None:
        pyramid_section = _coreset_pyramid(
            pyramid_n,
            dataset=dataset,
            seed=seed,
            tile_px=256,
            eps=0.05,
            zoom_threshold=pyramid_zoom,
            delta_cap=coreset_delta_cap,
            leaf_size=512,
            baseline_seconds=scalar_rep["seconds"],
        )

    scaling_section: dict[str, Any] | None = None
    if scaling:
        scaling_section = _parallel_scaling(
            renderer, method,
            eps=eps, atol=atol, exact=exact, tau=tau, scalar_mask=scalar_mask,
            tile_size=tile_size, repeats=repeats,
        )

    # Untimed traced pass: the timing runs above stay tracing-free (the
    # zero-overhead-when-off contract is part of what this report
    # documents), then one batched render of each op is re-run under a
    # scoped tracer so the report carries the refinement-depth and
    # bound-tightness summary of the exact workload it timed.
    trace_summary: dict[str, Any] | None = None
    if trace:
        from repro.obs.report import summarize_events
        from repro.obs.runtime import trace_to

        with trace_to() as tracer:
            renderer.render(RenderRequest.for_eps(eps, "quad", options=tiled))
            renderer.render(RenderRequest.for_tau(tau, "quad", options=tiled))
        trace_summary = summarize_events(tracer.events())

    return {
        "benchmark": "engine_batching",
        "generated_by": "tools/bench_report.py",
        "workload": {
            "dataset": dataset,
            "kernel": "gaussian",
            "n": n,
            "resolution": list(resolution),
            "eps": eps,
            "atol": atol,
            "leaf_size": leaf_size,
            "tile_size": tile_size,
            "workers": workers,
            "repeats": repeats,
            "seed": seed,
            "executor": executor,
            "backend": backend,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "eps_render": {
            "scalar": scalar_rep,
            "batch": batch_rep,
            "batch_workers": workers_rep,
        },
        "tau_render": {
            "tau": tau,
            "scalar": tau_scalar_rep,
            "batch": tau_batch_rep,
            "masks_identical": masks_identical,
        },
        "parallel_scaling": scaling_section,
        "coreset_parity": parity_section,
        "coreset_pyramid": pyramid_section,
        "validation": {
            "eps_envelope": envelope,
            "tau_masks_identical": masks_identical,
            "coreset_parity_ok": parity_section["within_delta"],
            "parallel_scaling_ok": (
                None if scaling_section is None else all(
                    entry["all_identical_and_within_envelope"]
                    for entry in scaling_section["backends"].values()
                )
            ),
        },
        "trace": trace_summary,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workload (seconds); skips writing BENCH_engine.json "
        "unless --output is given",
    )
    parser.add_argument("--dataset", default="crime")
    parser.add_argument("--eps", type=float, default=0.01)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--tile-size", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--executor", choices=("thread", "process"), default=None,
        help="tile executor for the workers measurement (default: thread)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="compute backend for the tiled measurements "
        "(default: REPRO_BACKEND or numpy)",
    )
    parser.add_argument(
        "--pyramid-n", type=int, default=1_000_000,
        help="point count for the coreset_pyramid cold-latency section "
        "(full mode only; smoke always skips it)",
    )
    parser.add_argument(
        "--no-pyramid", action="store_true",
        help="skip the coreset_pyramid section even in full mode",
    )
    parser.add_argument(
        "--no-scaling", action="store_true",
        help="skip the parallel-scaling sweep "
        "(workers x executor x backend)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="skip the untimed traced pass (report carries no trace summary)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="report path (default: BENCH_engine.json at the repo root; "
        "omitted entirely for --smoke)",
    )
    args = parser.parse_args(argv)

    workload = SMOKE_WORKLOAD if args.smoke else FULL_WORKLOAD
    report = run_benchmark(
        n=workload["n"],
        resolution=workload["resolution"],
        eps=args.eps,
        dataset=args.dataset,
        tile_size=args.tile_size,
        workers=args.workers,
        repeats=args.repeats,
        trace=not args.no_trace,
        executor=args.executor,
        backend=args.backend,
        scaling=not args.no_scaling,
        pyramid_n=(
            None if args.smoke or args.no_pyramid else args.pyramid_n
        ),
    )
    report["smoke"] = args.smoke

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_engine.json"
    if output is not None:
        # allow_nan=False: a NaN/Inf anywhere in the report is a bug in
        # the summarisation (it would silently produce invalid JSON).
        output.write_text(json.dumps(report, indent=2, allow_nan=False) + "\n")
        print(f"wrote {output}")

    failures = []
    for label, entry in report["validation"]["eps_envelope"].items():
        if not entry["within_envelope"]:
            failures.append(f"eps envelope violated by the {label} schedule")
    if not report["validation"]["tau_masks_identical"]:
        failures.append("tau masks differ between scalar and batched schedules")
    if not report["validation"]["coreset_parity_ok"]:
        failures.append(
            "coreset density drifted beyond its delta_abs bound "
            "(see the coreset_parity section)"
        )
    if report["validation"]["parallel_scaling_ok"] is False:
        failures.append(
            "parallel-scaling sweep broke cross-executor identity or the "
            "eps envelope (see the parallel_scaling section)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    speedup = report["eps_render"]["batch"]["speedup_vs_scalar"]
    print(f"batched eps speedup vs scalar: {speedup}x")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
