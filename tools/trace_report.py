#!/usr/bin/env python
"""Summarise a ``repro.obs`` JSONL trace into refinement tables.

Thin CLI over :mod:`repro.obs.report`: reads one or more trace files
written by ``REPRO_TRACE_OUT=...``, ``KDVRenderer.render_*(trace=...)``
or the CLI's ``--trace-out``, and prints per-method refinement-depth and
bound-tightness tables (or the raw JSON summary with ``--json``).

Usage::

    PYTHONPATH=src python tools/trace_report.py trace.jsonl
    PYTHONPATH=src python tools/trace_report.py --json trace.jsonl > summary.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import shim for running without PYTHONPATH
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.report import format_summary, read_jsonl, summarize_events

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "traces", nargs="+", type=Path, help="JSONL trace file(s) to summarise"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON summary instead of tables"
    )
    args = parser.parse_args(argv)

    events = []
    for path in args.traces:
        if not path.exists():
            print(f"error: no such trace file: {path}", file=sys.stderr)
            return 2
        events.extend(read_jsonl(path))
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_summary(summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
