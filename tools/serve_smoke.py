#!/usr/bin/env python
"""CI smoke tests for the tile server.

Default mode — cache effectiveness + byte identity. Starts the real
asyncio server on an ephemeral port, requests a 2x2 pyramid (z=0 plus
the four z=1 tiles) twice over HTTP, and asserts:

* every response is a valid PNG with status 200;
* the second pass is served from cache (>= 90% X-Cache: hit);
* second-pass bytes are identical to the first pass, tile for tile;
* the warm pass is at least MIN_SPEEDUP x faster than the cold pass
  (the multi-level cache actually short-circuits the render);
* the /stats counters agree with what was observed on the wire.

``--chaos`` mode — self-healing under worker loss. Boots the service
with a supervised process pool, renders a fault-free baseline, then
injects deterministic ``worker_kill`` faults via ``REPRO_FAULTS`` while
firing bursts of tile requests, and asserts:

* every chaos-phase response is well-formed: a PNG 200 or a structured
  JSON error carrying a stable ``code`` field (no hangs, no half-written
  bodies);
* degraded 200s carry ``X-Repro-Degraded`` + ``Cache-Control: no-store``;
* the pool actually broke and was rebuilt (``resilience.pool_breaks`` and
  ``resilience.pool_rebuilds`` >= 1 in ``/stats``);
* after the faults are cleared, tiles render fresh again and are
  bit-identical to the fault-free baseline.

Exits 0 on success, 1 on any violated expectation. Run as::

    PYTHONPATH=src python tools/serve_smoke.py [--chaos]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _client import PNG_SIGNATURE, check_wellformed  # noqa: E402
from _client import fetch as _fetch  # noqa: E402

__all__ = ["main"]

TILES: List[Tuple[int, int, int]] = [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 0, 1), (1, 1, 1)]
MIN_HIT_RATE = 0.9
MIN_SPEEDUP = 10.0
DATASET = "crime"
N_POINTS = 8_000
TILE_PX = 256

# Chaos mode: smaller tiles keep the render (and its replay rounds)
# fast. The kill rate is paired with a scanned seed whose roll provably
# fires for batch index 0 at attempt 1, so every fresh render breaks the
# pool at least once — deterministically, not probabilistically.
CHAOS_TILE_PX = 128
CHAOS_N_POINTS = 4_000
CHAOS_KILL_RATE = 0.3
CHAOS_ROUNDS = 2
RECOVERY_ATTEMPTS = 40
RECOVERY_SLEEP_S = 0.25


def _fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


async def _run_cache() -> None:
    from repro.data.synthetic import load_dataset
    from repro.serve import RenderConfig, ServiceConfig, TileServer, TileService

    service = TileService(
        config=ServiceConfig(
            render=RenderConfig(tile_px=TILE_PX, eps=0.05, workers=2)
        )
    )
    service.registry.register(DATASET, load_dataset(DATASET, n=N_POINTS, seed=0))
    server = await TileServer(service, port=0).start()
    loop = asyncio.get_running_loop()
    print(f"serve_smoke: server on {server.url}, dataset {DATASET} n={N_POINTS}")

    async def pass_over_pyramid(label: str) -> Tuple[Dict[Tuple[int, int, int], bytes], int, float]:
        blobs: Dict[Tuple[int, int, int], bytes] = {}
        hits = 0
        started = time.perf_counter()
        for z, x, y in TILES:
            status, headers, body = await loop.run_in_executor(
                None, _fetch, f"{server.url}/tile/{DATASET}/{z}/{x}/{y}.png"
            )
            if status != 200:
                _fail(f"{label}: tile {z}/{x}/{y} returned {status}: {body[:200]!r}")
            if not body.startswith(PNG_SIGNATURE):
                _fail(f"{label}: tile {z}/{x}/{y} is not a PNG")
            if headers.get("X-Cache") == "hit":
                hits += 1
            blobs[(z, x, y)] = body
        return blobs, hits, time.perf_counter() - started

    cold, cold_hits, cold_s = await pass_over_pyramid("cold")
    warm, warm_hits, warm_s = await pass_over_pyramid("warm")
    await server.stop()
    service.close()

    print(
        f"serve_smoke: cold {cold_s:.3f}s ({cold_hits} hits), "
        f"warm {warm_s:.3f}s ({warm_hits}/{len(TILES)} hits), "
        f"speedup {cold_s / max(warm_s, 1e-9):.1f}x"
    )

    if cold_hits != 0:
        _fail(f"cold pass unexpectedly hit cache ({cold_hits} hits)")
    hit_rate = warm_hits / len(TILES)
    if hit_rate < MIN_HIT_RATE:
        _fail(f"warm hit rate {hit_rate:.0%} < {MIN_HIT_RATE:.0%}")
    for key in TILES:
        if cold[key] != warm[key]:
            _fail(f"tile {key} bytes differ between passes")
    if cold_s < MIN_SPEEDUP * warm_s:
        _fail(
            f"warm pass only {cold_s / max(warm_s, 1e-9):.1f}x faster "
            f"(need >= {MIN_SPEEDUP}x)"
        )

    # Cross-check the wire observations against the service's own counters.
    counters = service.metrics.as_dict()["counters"]
    if counters.get("tiles.renders", 0) != len(TILES):
        _fail(
            f"expected exactly {len(TILES)} renders, "
            f"counters say {counters.get('tiles.renders', 0)}"
        )
    if counters.get("tile_cache.png.hits", 0) < warm_hits:
        _fail("png cache hit counter disagrees with observed X-Cache headers")
    print("serve_smoke: counters agree:", json.dumps(
        {k: v for k, v in sorted(counters.items()) if k.startswith("tiles.")}
    ))
    print("serve_smoke: OK")


def _check_wellformed(
    label: str, tile: Tuple[int, int, int], status: int, headers: Dict[str, str], body: bytes
) -> None:
    """Every on-the-wire response must be a PNG 200 or a structured error."""
    z, x, y = tile
    violation = check_wellformed(status, headers, body)
    if violation is not None:
        _fail(f"{label}: tile {z}/{x}/{y}: {violation}")


async def _run_chaos() -> None:
    from repro.data.synthetic import load_dataset
    from repro.serve import (
        RenderConfig,
        ResilienceConfig,
        ServiceConfig,
        TileServer,
        TileService,
    )
    from repro.visual.executors import pool_supervision_totals

    os.environ.pop("REPRO_FAULTS", None)
    service = TileService(
        config=ServiceConfig(
            render=RenderConfig(
                tile_px=CHAOS_TILE_PX,
                eps=0.05,
                workers=4,
                render_workers=2,
                executor="process",
            ),
            resilience=ResilienceConfig(breaker_reset_s=0.5),
        )
    )
    service.registry.register(DATASET, load_dataset(DATASET, n=CHAOS_N_POINTS, seed=0))
    server = await TileServer(service, port=0).start()
    loop = asyncio.get_running_loop()
    print(f"serve_smoke[chaos]: server on {server.url}, dataset {DATASET} n={CHAOS_N_POINTS}")

    def url_for(tile: Tuple[int, int, int]) -> str:
        z, x, y = tile
        return f"{server.url}/tile/{DATASET}/{z}/{x}/{y}.png"

    async def fetch(tile: Tuple[int, int, int]) -> Tuple[int, Dict[str, str], bytes]:
        return await loop.run_in_executor(None, _fetch, url_for(tile))

    try:
        status, _, body = await loop.run_in_executor(None, _fetch, f"{server.url}/readyz")
        if status != 200:
            _fail(f"/readyz returned {status} on a healthy service: {body[:120]!r}")

        # Phase 1: fault-free baseline, records the ground-truth bytes.
        baseline: Dict[Tuple[int, int, int], bytes] = {}
        for tile in TILES:
            status, headers, body = await fetch(tile)
            _check_wellformed("baseline", tile, status, headers, body)
            if status != 200:
                _fail(f"baseline: tile {tile} returned {status}")
            if headers.get("X-Repro-Degraded"):
                _fail(f"baseline: tile {tile} unexpectedly degraded")
            baseline[tile] = body
        print(f"serve_smoke[chaos]: baseline rendered {len(baseline)} tiles")

        # Phase 2: worker-kill chaos. The fault rolls are deterministic
        # (pure functions of seed + batch index + attempt), so scan for
        # a seed whose roll fires for batch index 0 on the first attempt
        # — every fresh render then provably kills a worker at least
        # once, and the replay rounds (attempt 2, 3, ...) roll anew.
        from repro.resilience.faults import FAULT_WORKER_KILL, fault_fires

        seed = next(
            s for s in range(1000)
            if fault_fires(s, FAULT_WORKER_KILL, 0, 1, CHAOS_KILL_RATE)
        )
        breaks_before = pool_supervision_totals()["breaks"]
        degraded_seen = 0
        error_seen = 0
        os.environ["REPRO_FAULTS"] = f"worker_kill:{CHAOS_KILL_RATE},seed:{seed}"
        for _ in range(CHAOS_ROUNDS):
            service.invalidate_dataset(DATASET)  # force real renders
            results = await asyncio.gather(*(fetch(tile) for tile in TILES))
            for tile, (status, headers, body) in zip(TILES, results):
                _check_wellformed("chaos", tile, status, headers, body)
                if status != 200:
                    error_seen += 1
                elif headers.get("X-Repro-Degraded"):
                    degraded_seen += 1
        os.environ.pop("REPRO_FAULTS", None)

        totals = pool_supervision_totals()
        print(
            f"serve_smoke[chaos]: breaks={totals['breaks']} rebuilds={totals['rebuilds']} "
            f"degraded_responses={degraded_seen} error_responses={error_seen}"
        )
        if totals["breaks"] <= breaks_before:
            _fail("chaos phase never broke the worker pool (fault injection inert?)")
        if totals["rebuilds"] < 1:
            _fail("pool broke but was never rebuilt (supervision inert?)")

        # Phase 3: recovery. With faults cleared, every tile must render
        # fresh (not degraded) and match the baseline bit for bit.
        service.invalidate_dataset(DATASET)
        for tile in TILES:
            fresh: Optional[bytes] = None
            for _ in range(RECOVERY_ATTEMPTS):
                status, headers, body = await fetch(tile)
                _check_wellformed("recovery", tile, status, headers, body)
                if status == 200 and not headers.get("X-Repro-Degraded"):
                    fresh = body
                    break
                await asyncio.sleep(RECOVERY_SLEEP_S)
            if fresh is None:
                _fail(f"recovery: tile {tile} never served fresh after chaos")
            if fresh != baseline[tile]:
                _fail(f"recovery: tile {tile} bytes differ from fault-free baseline")
        print("serve_smoke[chaos]: post-recovery tiles bit-identical to baseline")

        # Phase 4: the /stats payload exposes what happened.
        status, _, body = await loop.run_in_executor(None, _fetch, f"{server.url}/stats")
        if status != 200:
            _fail(f"/stats returned {status}")
        resilience = json.loads(body.decode("utf-8")).get("resilience", {})
        if resilience.get("pool_breaks", 0) < 1:
            _fail(f"/stats resilience.pool_breaks < 1: {resilience!r}")
        if resilience.get("pool_rebuilds", 0) < 1:
            _fail(f"/stats resilience.pool_rebuilds < 1: {resilience!r}")
        print(
            "serve_smoke[chaos]: /stats resilience:",
            json.dumps({k: resilience[k] for k in ("pool_breaks", "pool_rebuilds", "draining")}),
        )
    finally:
        os.environ.pop("REPRO_FAULTS", None)
        await server.stop()
        service.close()
    print("serve_smoke[chaos]: OK")


def main(argv: Optional[List[str]] = None) -> int:
    """Run the smoke scenario; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the self-healing chaos scenario instead of the cache smoke",
    )
    args = parser.parse_args(argv)
    asyncio.run(_run_chaos() if args.chaos else _run_cache())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
