#!/usr/bin/env python
"""CI smoke test for the tile server: cache effectiveness + byte identity.

Starts the real asyncio server on an ephemeral port, requests a 2x2
pyramid (z=0 plus the four z=1 tiles) twice over HTTP, and asserts:

* every response is a valid PNG with status 200;
* the second pass is served from cache (>= 90% X-Cache: hit);
* second-pass bytes are identical to the first pass, tile for tile;
* the warm pass is at least MIN_SPEEDUP x faster than the cold pass
  (the multi-level cache actually short-circuits the render);
* the /stats counters agree with what was observed on the wire.

Exits 0 on success, 1 on any violated expectation. Run as::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Tuple

__all__ = ["main"]

PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"
TILES: List[Tuple[int, int, int]] = [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 0, 1), (1, 1, 1)]
MIN_HIT_RATE = 0.9
MIN_SPEEDUP = 10.0
DATASET = "crime"
N_POINTS = 8_000
TILE_PX = 256


def _fetch(url: str) -> Tuple[int, Dict[str, str], bytes]:
    try:
        response = urllib.request.urlopen(url, timeout=120)
        return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


async def _run() -> None:
    from repro.data.synthetic import load_dataset
    from repro.serve import ServiceConfig, TileServer, TileService

    service = TileService(
        config=ServiceConfig(tile_px=TILE_PX, eps=0.05, workers=2)
    )
    service.registry.register(DATASET, load_dataset(DATASET, n=N_POINTS, seed=0))
    server = await TileServer(service, port=0).start()
    loop = asyncio.get_running_loop()
    print(f"serve_smoke: server on {server.url}, dataset {DATASET} n={N_POINTS}")

    async def pass_over_pyramid(label: str) -> Tuple[Dict[Tuple[int, int, int], bytes], int, float]:
        blobs: Dict[Tuple[int, int, int], bytes] = {}
        hits = 0
        started = time.perf_counter()
        for z, x, y in TILES:
            status, headers, body = await loop.run_in_executor(
                None, _fetch, f"{server.url}/tile/{DATASET}/{z}/{x}/{y}.png"
            )
            if status != 200:
                _fail(f"{label}: tile {z}/{x}/{y} returned {status}: {body[:200]!r}")
            if not body.startswith(PNG_SIGNATURE):
                _fail(f"{label}: tile {z}/{x}/{y} is not a PNG")
            if headers.get("X-Cache") == "hit":
                hits += 1
            blobs[(z, x, y)] = body
        return blobs, hits, time.perf_counter() - started

    cold, cold_hits, cold_s = await pass_over_pyramid("cold")
    warm, warm_hits, warm_s = await pass_over_pyramid("warm")
    await server.stop()
    service.close()

    print(
        f"serve_smoke: cold {cold_s:.3f}s ({cold_hits} hits), "
        f"warm {warm_s:.3f}s ({warm_hits}/{len(TILES)} hits), "
        f"speedup {cold_s / max(warm_s, 1e-9):.1f}x"
    )

    if cold_hits != 0:
        _fail(f"cold pass unexpectedly hit cache ({cold_hits} hits)")
    hit_rate = warm_hits / len(TILES)
    if hit_rate < MIN_HIT_RATE:
        _fail(f"warm hit rate {hit_rate:.0%} < {MIN_HIT_RATE:.0%}")
    for key in TILES:
        if cold[key] != warm[key]:
            _fail(f"tile {key} bytes differ between passes")
    if cold_s < MIN_SPEEDUP * warm_s:
        _fail(
            f"warm pass only {cold_s / max(warm_s, 1e-9):.1f}x faster "
            f"(need >= {MIN_SPEEDUP}x)"
        )

    # Cross-check the wire observations against the service's own counters.
    counters = service.metrics.as_dict()["counters"]
    if counters.get("tiles.renders", 0) != len(TILES):
        _fail(
            f"expected exactly {len(TILES)} renders, "
            f"counters say {counters.get('tiles.renders', 0)}"
        )
    if counters.get("tile_cache.png.hits", 0) < warm_hits:
        _fail("png cache hit counter disagrees with observed X-Cache headers")
    print("serve_smoke: counters agree:", json.dumps(
        {k: v for k, v in sorted(counters.items()) if k.startswith("tiles.")}
    ))
    print("serve_smoke: OK")


def main() -> int:
    """Run the smoke scenario; returns the process exit code."""
    asyncio.run(_run())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
