#!/usr/bin/env python
"""Asyncio load generator for the KDV tile server.

Drives a tile-serving workload that looks like real map traffic:

* **zipf-distributed viewports** — sessions target hotspot tiles drawn
  from a zipf distribution over a deterministically-shuffled tile
  universe, so a few viewports are hot and most are cold;
* **zoom-in / pan sessions** — each session descends from ``z=0`` to
  its target tile through the ancestor chain (what a slippy map does on
  zoom-in), panning to random neighbour tiles at each level;
* **configurable concurrency / duration / seed** — N concurrent
  clients run sessions until the wall-clock budget expires; the whole
  workload is a pure function of ``--seed``.

Every response is validated against the on-the-wire contract in
``tools/_client.py``; the run fails (exit 1) if any response is
malformed. Results land in ``BENCH_serve.json``::

    {
      "schema": "repro-serve-bench-v1",
      "workload": {...}, "environment": {...},
      "latency_ms": {"p50": ..., "p95": ..., "p99": ..., "mean": ..., "max": ...},
      "throughput_rps": ..., "requests": {"total": ..., "by_status": {...}},
      "cache": {"hits": ..., "misses": ..., "hit_rate": ...},
      "backpressure_rate": ..., "degraded_rate": ...,
      "malformed_responses": 0, "validation": {...}
    }

Run against a live server::

    PYTHONPATH=src python tools/loadgen.py --url http://127.0.0.1:8699 --dataset crime

or self-contained (boots an in-process 2-shard service on an ephemeral
port, suitable for CI)::

    PYTHONPATH=src python tools/loadgen.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time
from bisect import bisect_left
from itertools import accumulate
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _client import check_wellformed, http_get  # noqa: E402

__all__ = ["main", "run_workload"]

SCHEMA = "repro-serve-bench-v1"
DEFAULT_OUTPUT = "BENCH_serve.json"

Tile = Tuple[int, int, int]


# --------------------------------------------------------------------------
# Workload model
# --------------------------------------------------------------------------


def tile_universe(zoom_max: int) -> List[Tile]:
    """Every tile address up to and including ``zoom_max``."""
    tiles: List[Tile] = []
    for z in range(zoom_max + 1):
        side = 2**z
        tiles.extend((z, x, y) for x in range(side) for y in range(side))
    return tiles


class ZipfViewports:
    """Zipf sampler over the deepest-zoom tiles.

    Popularity rank is a seeded shuffle of the tile grid, so *which*
    tiles are hot is deterministic per seed but not spatially trivial
    (the hot set is scattered, as with real cities on a basemap).
    """

    def __init__(self, zoom_max: int, s: float, rng: random.Random) -> None:
        side = 2**zoom_max
        self.tiles: List[Tile] = [
            (zoom_max, x, y) for x in range(side) for y in range(side)
        ]
        rng.shuffle(self.tiles)
        weights = [1.0 / (rank**s) for rank in range(1, len(self.tiles) + 1)]
        self._cdf = list(accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self, rng: random.Random) -> Tile:
        index = bisect_left(self._cdf, rng.random() * self._total)
        return self.tiles[min(index, len(self.tiles) - 1)]


def session_tiles(target: Tile, pans: int, rng: random.Random) -> List[Tile]:
    """The request sequence for one zoom-in/pan session toward ``target``.

    Descends the ancestor chain z=0..target-z (each ancestor is the
    tile containing the target at that zoom), and at each zoom level
    after the root pans to up to ``pans`` random 4-neighbours.
    """
    z_target, x_target, y_target = target
    sequence: List[Tile] = []
    for z in range(z_target + 1):
        shift = z_target - z
        x, y = x_target >> shift, y_target >> shift
        sequence.append((z, x, y))
        if z == 0:
            continue
        side = 2**z
        for _ in range(rng.randint(0, pans)):
            dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
            x = min(max(x + dx, 0), side - 1)
            y = min(max(y + dy, 0), side - 1)
            sequence.append((z, x, y))
    return sequence


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


class _Stats:
    """Mutable tally shared by all client workers."""

    def __init__(self) -> None:
        self.latencies_ms: List[float] = []
        self.by_status: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.degraded = 0
        self.backpressured = 0
        self.malformed: List[str] = []
        self.sessions = 0

    def record(
        self, tile: Tile, status: int, headers: Dict[str, str], elapsed_ms: float
    ) -> None:
        self.latencies_ms.append(elapsed_ms)
        self.by_status[str(status)] = self.by_status.get(str(status), 0) + 1
        if status == 200:
            if headers.get("X-Cache") == "hit":
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if headers.get("X-Repro-Degraded"):
                self.degraded += 1
        elif status == 503:
            self.backpressured += 1


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


async def run_workload(
    host: str,
    port: int,
    dataset: str,
    *,
    concurrency: int,
    duration_s: float,
    seed: int,
    zoom_max: int,
    zipf_s: float,
    pans: int,
    timeout_s: float = 120.0,
) -> _Stats:
    """Run the zipf zoom-in/pan workload; returns the raw tally."""
    viewports = ZipfViewports(zoom_max, zipf_s, random.Random(seed))
    stats = _Stats()
    deadline = time.perf_counter() + duration_s

    async def client(worker: int) -> None:
        rng = random.Random((seed << 16) ^ worker)
        while time.perf_counter() < deadline:
            stats.sessions += 1
            target = viewports.sample(rng)
            for z, x, y in session_tiles(target, pans, rng):
                if time.perf_counter() >= deadline:
                    return
                path = f"/tile/{dataset}/{z}/{x}/{y}.png"
                started = time.perf_counter()
                try:
                    status, headers, body = await http_get(
                        host, port, path, timeout=timeout_s
                    )
                except (asyncio.TimeoutError, ConnectionError, OSError) as error:
                    stats.malformed.append(f"{path}: transport failure: {error!r}")
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1e3
                stats.record((z, x, y), status, headers, elapsed_ms)
                violation = check_wellformed(status, headers, body)
                if violation is not None:
                    stats.malformed.append(f"{path}: {violation}")

    await asyncio.gather(*(client(worker) for worker in range(concurrency)))
    return stats


def build_report(
    stats: _Stats,
    *,
    duration_s: float,
    workload: Dict[str, Any],
    environment: Dict[str, Any],
) -> Dict[str, Any]:
    """Shape the tally into the ``repro-serve-bench-v1`` payload."""
    latencies = sorted(stats.latencies_ms)
    total = len(latencies)
    served_200 = stats.cache_hits + stats.cache_misses
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "workload": workload,
        "environment": environment,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p95": round(_percentile(latencies, 0.95), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "mean": round(sum(latencies) / total, 3) if total else 0.0,
            "max": round(latencies[-1], 3) if total else 0.0,
        },
        "throughput_rps": round(total / duration_s, 2) if duration_s else 0.0,
        "requests": {
            "total": total,
            "sessions": stats.sessions,
            "by_status": dict(sorted(stats.by_status.items())),
        },
        "cache": {
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "hit_rate": round(stats.cache_hits / served_200, 4) if served_200 else 0.0,
        },
        "backpressure_rate": round(stats.backpressured / total, 4) if total else 0.0,
        "degraded_rate": round(stats.degraded / served_200, 4) if served_200 else 0.0,
        "malformed_responses": len(stats.malformed),
        "validation": {
            "contract": "tools/_client.py:check_wellformed",
            "violations": stats.malformed[:20],
        },
    }
    return report


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


async def _run_against(
    host: str, port: int, args: argparse.Namespace, environment: Dict[str, Any]
) -> Dict[str, Any]:
    workload = {
        "model": "zipf-viewports/zoom-in-pan",
        "dataset": args.dataset,
        "concurrency": args.concurrency,
        "duration_s": args.duration,
        "seed": args.seed,
        "zoom_max": args.zoom_max,
        "zipf_s": args.zipf_s,
        "pans": args.pans,
    }
    started = time.perf_counter()
    stats = await run_workload(
        host,
        port,
        args.dataset,
        concurrency=args.concurrency,
        duration_s=args.duration,
        seed=args.seed,
        zoom_max=args.zoom_max,
        zipf_s=args.zipf_s,
        pans=args.pans,
    )
    elapsed = time.perf_counter() - started
    return build_report(
        stats, duration_s=elapsed, workload=workload, environment=environment
    )


async def _run_smoke(args: argparse.Namespace) -> Dict[str, Any]:
    """Boot an in-process sharded service and drive the workload at it."""
    from repro.data.synthetic import load_dataset
    from repro.serve import (
        RenderConfig,
        ServiceConfig,
        ShardingConfig,
        TileServer,
        TileService,
    )

    config = ServiceConfig(
        render=RenderConfig(tile_px=args.tile_px, eps=0.05, workers=2),
        sharding=ShardingConfig(shards=args.shards, min_points_per_shard=1),
    )
    service = TileService(config=config)
    service.registry.register(
        args.dataset, load_dataset(args.dataset, n=args.n_points, seed=0)
    )
    entry = service.registry.get(args.dataset)
    shards = getattr(entry, "shard_count", 1)
    server = await TileServer(service, port=0).start()
    print(
        f"loadgen[smoke]: server on {server.url}, dataset {args.dataset!r} "
        f"n={args.n_points} shards={shards}"
    )
    try:
        host, port = server.url.rsplit("://", 1)[1].rsplit(":", 1)
        environment = {
            "mode": "smoke",
            "url": server.url,
            "shards": shards,
            "tile_px": args.tile_px,
            "n_points": args.n_points,
            "python": sys.version.split()[0],
        }
        return await _run_against(host, int(port), args, environment)
    finally:
        await server.stop()
        service.close()


def main(argv: Optional[List[str]] = None) -> int:
    """Run the load generator; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running tile server")
    target.add_argument(
        "--smoke",
        action="store_true",
        help="boot an in-process sharded service and load-test it (CI mode)",
    )
    parser.add_argument("--dataset", default="crime")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--duration", type=float, default=10.0, help="seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--zoom-max", type=int, default=3, help="deepest zoom targeted by sessions"
    )
    parser.add_argument(
        "--zipf-s", type=float, default=1.1, help="zipf exponent for viewport popularity"
    )
    parser.add_argument(
        "--pans", type=int, default=2, help="max neighbour pans per zoom level"
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--shards", type=int, default=2, help="smoke mode: shards for the dataset"
    )
    parser.add_argument("--tile-px", type=int, default=128, help="smoke mode tile size")
    parser.add_argument(
        "--n-points", type=int, default=4_000, help="smoke mode dataset size"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = asyncio.run(_run_smoke(args))
    else:
        base = args.url.rstrip("/")
        hostport = base.rsplit("://", 1)[-1]
        host, _, port = hostport.partition(":")
        environment = {
            "mode": "external",
            "url": base,
            "python": sys.version.split()[0],
        }
        report = asyncio.run(_run_against(host, int(port or "80"), args, environment))

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    latency = report["latency_ms"]
    print(
        f"loadgen: {report['requests']['total']} requests "
        f"({report['requests']['sessions']} sessions) in "
        f"{report['workload']['duration_s']}s budget | "
        f"p50={latency['p50']}ms p95={latency['p95']}ms p99={latency['p99']}ms | "
        f"{report['throughput_rps']} rps | "
        f"cache hit rate {report['cache']['hit_rate']:.0%} | "
        f"backpressure {report['backpressure_rate']:.1%} | "
        f"degraded {report['degraded_rate']:.1%}"
    )
    print(f"loadgen: wrote {args.output}")

    if report["malformed_responses"]:
        for violation in report["validation"]["violations"]:
            print(f"loadgen: MALFORMED {violation}", file=sys.stderr)
        print(
            f"loadgen: FAIL — {report['malformed_responses']} malformed responses",
            file=sys.stderr,
        )
        return 1
    if report["requests"]["total"] == 0:
        print("loadgen: FAIL — no requests completed", file=sys.stderr)
        return 1
    print("loadgen: OK (zero malformed responses)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
