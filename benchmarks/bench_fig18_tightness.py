"""Figure 18 — single-pixel refinement cost on the hottest pixel (home).

Paper result: QUAD's bounds close in ~1/3 the iterations of KARL's on
the densest pixel; this benchmark times exactly that single-pixel εKDV
query and asserts the iteration ordering the figure shows.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_renderer, prepare


def hottest_pixel(renderer):
    exact = renderer.render_exact()
    iy, ix = np.unravel_index(int(np.argmax(exact)), exact.shape)
    return renderer.grid.pixel_center(ix, iy)


@pytest.mark.parametrize("method", ("akde", "karl", "quad"))
def test_hot_pixel_query_time(benchmark, method):
    renderer = get_renderer("home")
    fitted = prepare(renderer, method)
    query = hottest_pixel(renderer)
    benchmark.group = "fig18 home hottest pixel eps=0.01"
    benchmark.pedantic(fitted.query_eps, args=(query, 0.01), rounds=5, iterations=2)


def test_iteration_ordering_matches_figure():
    """QUAD stops no later than KARL, which stops no later than aKDE."""
    renderer = get_renderer("home")
    query = hottest_pixel(renderer)
    stops = {}
    for method in ("akde", "karl", "quad"):
        fitted = prepare(renderer, method)
        __, trace = fitted.query_eps_traced(query, 0.01)
        stops[method] = trace.iterations
    assert stops["quad"] <= stops["karl"] <= stops["akde"]
