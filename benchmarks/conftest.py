"""Shared fixtures for the benchmark harness.

Each ``bench_figNN_*`` file regenerates the timing comparison of one
paper figure as parameterised pytest-benchmark cases. Renderers (index
builds included) are cached per configuration at session scope, so the
benchmarks time the *online* stage only — matching how the paper
accounts cost (Section 7.1: indexes are built offline).

Sizes default to a laptop-friendly preset; set ``REPRO_BENCH_SCALE``
(smoke/small/medium/large) to run closer to paper scale.
"""

from __future__ import annotations

import os

import pytest

from repro.data.synthetic import load_dataset
from repro.experiments.common import get_scale
from repro.visual.kdv import KDVRenderer

BENCH_SCALE = get_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))
#: Standard workload of the benchmark harness (paper: 270k-7M points at
#: 1280x960; scaled down for pure Python). Method orderings sharpen as
#: the scale grows — REPRO_BENCH_SCALE=medium reproduces the paper's
#: shapes more clearly at a few minutes' cost.
BENCH_N = BENCH_SCALE.n_points
BENCH_RESOLUTION = BENCH_SCALE.resolution
BENCH_LEAF_SIZE = 256

_renderers = {}


def get_renderer(dataset, kernel="gaussian", n=None, resolution=None, leaf_size=BENCH_LEAF_SIZE):
    """Session-cached renderer; building it (and its indexes) is offline."""
    n = BENCH_N if n is None else n
    resolution = BENCH_RESOLUTION if resolution is None else resolution
    key = (dataset, kernel, n, tuple(resolution), leaf_size)
    renderer = _renderers.get(key)
    if renderer is None:
        points = load_dataset(dataset, n=n, seed=0)
        renderer = KDVRenderer(
            points, resolution=resolution, kernel=kernel, leaf_size=leaf_size
        )
        _renderers[key] = renderer
    return renderer


def prepare(renderer, method):
    """Force the offline stage (index build / sampling) outside timing."""
    fitted = renderer.get_method(method)
    if method == "zorder":
        for eps in (0.01, 0.05):
            fitted.sample_for(eps)
    return fitted


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session", autouse=True)
def _close_process_pools():
    """Release process pools / shared-memory segments the benches spun up."""
    yield
    for renderer in _renderers.values():
        for fitted in renderer._methods.values():
            closer = getattr(fitted, "close_executors", None)
            if closer is not None:
                closer()
