"""Figure 27 (appendix) — exponential kernel, εKDV and τKDV timings.

Paper result: same shape as Figures 22-23 — QUAD leads by at least an
order of magnitude; tKDC even times out on hep.
"""

import pytest

from benchmarks.conftest import get_renderer, prepare


@pytest.mark.parametrize("method", ("akde", "zorder", "quad"))
def test_exponential_eps_time(benchmark, method):
    renderer = get_renderer("crime", kernel="exponential")
    prepare(renderer, method)
    benchmark.group = "fig27 crime exponential eps=0.01"
    benchmark.pedantic(renderer.render_eps, args=(0.01, method), rounds=2, iterations=1)


@pytest.mark.parametrize("method", ("tkdc", "quad"))
def test_exponential_tau_time(benchmark, method):
    renderer = get_renderer("crime", kernel="exponential")
    prepare(renderer, method)
    mu, __ = renderer.density_stats()
    benchmark.group = "fig27 crime exponential tau=mu"
    benchmark.pedantic(renderer.render_tau, args=(mu, method), rounds=2, iterations=1)
