"""Figure 20 — progressive framework: pixels evaluated per fixed budget.

Paper result: under the same time budget QUAD evaluates the most pixels,
hence the lowest average relative error. Timed here as a fixed-pixel
progressive run per method; the per-budget error series lives in
``python -m repro experiment fig20``.
"""

import pytest

from benchmarks.conftest import BENCH_LEAF_SIZE, get_renderer
from repro.visual.progressive import ProgressiveRenderer

METHODS = ("exact", "akde", "karl", "quad")


@pytest.mark.parametrize("method", METHODS)
def test_progressive_fixed_pixels(benchmark, method):
    renderer = get_renderer("home")
    progressive = ProgressiveRenderer(
        renderer.points,
        kernel=renderer.kernel,
        gamma=renderer.gamma,
        weight=renderer.weight,
        method=method,
        eps=0.01,
        grid=renderer.grid,
        leaf_size=BENCH_LEAF_SIZE,
    )
    budget = renderer.grid.num_pixels // 4
    benchmark.group = f"fig20 home progressive {budget}px"
    result = benchmark.pedantic(
        progressive.run, kwargs={"max_pixels": budget}, rounds=2, iterations=1
    )
    assert result.pixels_evaluated >= budget
