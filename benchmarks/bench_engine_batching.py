"""Engine batching — scalar per-pixel loop versus batched frontier.

Not a paper figure: this is the standing regression benchmark for the
:class:`~repro.core.batch_engine.BatchRefinementEngine`. Same tree, same
bounds, same ``(1 ± eps)`` contract — only the refinement schedule
differs — so any timing gap is pure engine overhead. The batched path
should stay several times faster than scalar; ``tools/bench_report.py``
records the canonical numbers in ``BENCH_engine.json``.

The parallel-scaling group sweeps worker count x executor x compute
backend over the same tiled workload. Worker counts and executors
change only *where* each tile batch runs, never what it computes, so
every parametrisation asserts the image equals the single-worker
render bit for bit. Unavailable backends (numba without the ``[perf]``
extra) are skipped, not failed.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_renderer, prepare
from repro.core.backends import available_backends
from repro.visual.request import RenderOptions, RenderRequest

DATASETS = ("crime", "home")
EPS = 0.01
MODES = ("scalar", "tiled", "tiled-workers")
SCALING_WORKERS = (1, 2, 4, 8)
SCALING_EXECUTORS = ("thread", "process")
SCALING_BACKENDS = ("numpy", "numba")


def _render_kwargs(mode):
    if mode == "scalar":
        return {}
    if mode == "tiled":
        return {"tile_size": 64}
    return {"tile_size": 64, "workers": 4}


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_eps_engine_batching(benchmark, dataset, mode):
    renderer = get_renderer(dataset)
    prepare(renderer, "quad")
    benchmark.group = f"engine batching eps {dataset} eps={EPS}"
    image = benchmark.pedantic(
        renderer.render_eps,
        args=(EPS, "quad"),
        kwargs=_render_kwargs(mode),
        rounds=2,
        iterations=1,
    )
    assert image.shape == (renderer.grid.height, renderer.grid.width)
    assert np.all(np.isfinite(image)) and np.all(image >= 0.0)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_tau_engine_batching(benchmark, dataset, mode):
    renderer = get_renderer(dataset)
    prepare(renderer, "quad")
    mu, sigma = renderer.density_stats()
    tau = max(mu + 0.1 * sigma, np.finfo(np.float64).tiny)
    benchmark.group = f"engine batching tau {dataset}"
    mask = benchmark.pedantic(
        renderer.render_tau,
        args=(tau, "quad"),
        kwargs=_render_kwargs(mode),
        rounds=2,
        iterations=1,
    )
    # The threshold decision is schedule-independent: every mode must
    # reproduce the exact-density mask pixel for pixel.
    assert np.array_equal(mask, renderer.render_exact() >= tau)


@pytest.mark.parametrize("backend", SCALING_BACKENDS)
@pytest.mark.parametrize("executor", SCALING_EXECUTORS)
@pytest.mark.parametrize("workers", SCALING_WORKERS)
def test_eps_parallel_scaling(benchmark, workers, executor, backend):
    if backend not in available_backends():
        pytest.skip(f"compute backend {backend!r} not installed ([perf] extra)")
    renderer = get_renderer("crime")
    prepare(renderer, "quad")
    benchmark.group = f"parallel scaling eps crime eps={EPS} backend={backend}"
    options = RenderOptions(
        tile_size=64, workers=workers, executor=executor, backend=backend
    )
    request = RenderRequest.for_eps(EPS, "quad", options=options)
    image = benchmark.pedantic(
        renderer.render, args=(request,), rounds=2, iterations=1
    )
    # Executors and worker counts move tile batches between threads or
    # processes without changing their contents, so the parallel image
    # must equal the single-worker one bit for bit.
    single = RenderOptions(tile_size=64, workers=1, backend=backend)
    reference = renderer.render(RenderRequest.for_eps(EPS, "quad", options=single))
    assert np.array_equal(image, reference)
