"""Ablation — Z-order curve-stratified sampling versus uniform sampling.

Zheng et al. argue curve stratification lowers the estimator's variance
on spatially clustered data; this ablation measures both the sampling
cost and the resulting colour-map quality at equal sample size.
"""

import numpy as np
import pytest

from repro.core.exact import exact_density
from repro.sampling.random_sample import random_sample
from repro.sampling.zorder_sample import zorder_sample
from repro.visual.metrics import average_relative_error

from benchmarks.conftest import get_renderer

SAMPLERS = {
    "zorder": lambda points, m: zorder_sample(points, m),
    "uniform": lambda points, m: random_sample(points, m, seed=0),
}


@pytest.mark.parametrize("sampler", sorted(SAMPLERS))
def test_sampling_cost(benchmark, sampler):
    renderer = get_renderer("crime")
    m = max(len(renderer.points) // 10, 10)
    benchmark.group = "ablation sampling (crime, 10% sample)"
    sample, multiplier = benchmark.pedantic(
        SAMPLERS[sampler], args=(renderer.points, m), rounds=3, iterations=1
    )
    assert len(sample) * multiplier == pytest.approx(len(renderer.points), rel=0.01)


def test_zorder_quality_not_worse_than_uniform():
    """At equal sample size, the stratified sample's map error is
    comparable to or better than uniform sampling's (variance claim)."""
    renderer = get_renderer("crime")
    points = renderer.points
    centers = renderer.grid.centers()
    exact = exact_density(points, centers, renderer.kernel, renderer.gamma, renderer.weight)
    floor = 1e-6 * float(exact.max())
    m = max(len(points) // 10, 10)
    errors = {}
    for name, sampler in SAMPLERS.items():
        sample, multiplier = sampler(points, m)
        approx = exact_density(
            sample, centers, renderer.kernel, renderer.gamma, renderer.weight * multiplier
        )
        errors[name] = average_relative_error(approx, exact, floor=floor)
    assert errors["zorder"] <= errors["uniform"] * 1.5
