"""Benchmark harness package (pytest-benchmark; one module per figure)."""
