"""Figure 15 — τKDV response time varying τ (tKDC vs KARL vs QUAD).

Paper result: QUAD at least one order of magnitude below tKDC and KARL
at every threshold; τKDV is far cheaper than εKDV across the board.
"""

import pytest

from benchmarks.conftest import get_renderer, prepare

METHODS = ("tkdc", "karl", "quad")
DATASETS = ("crime", "home")
OFFSETS = (-0.2, 0.0, 0.2)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("offset", OFFSETS)
@pytest.mark.parametrize("method", METHODS)
def test_tau_render_time(benchmark, dataset, offset, method):
    renderer = get_renderer(dataset)
    prepare(renderer, method)
    mu, sigma = renderer.density_stats()
    tau = max(mu + offset * sigma, 1e-300)
    benchmark.group = f"fig15 {dataset} tau=mu{offset:+.1f}s"
    mask = benchmark.pedantic(
        renderer.render_tau, args=(tau, method), rounds=2, iterations=1
    )
    assert mask.dtype == bool
