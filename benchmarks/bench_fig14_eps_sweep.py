"""Figure 14 — εKDV response time varying ε (per method, per dataset).

Paper result: QUAD is at least one order of magnitude faster than KARL,
which beats aKDE and Z-order; EXACT and Scikit time out. Compare the
per-method timings this harness records (grouped by dataset/ε).
"""

import pytest

from benchmarks.conftest import get_renderer, prepare

METHODS = ("akde", "karl", "quad", "zorder")
DATASETS = ("crime", "home")
EPS_VALUES = (0.01, 0.05)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("eps", EPS_VALUES)
@pytest.mark.parametrize("method", METHODS)
def test_eps_render_time(benchmark, dataset, eps, method):
    renderer = get_renderer(dataset)
    prepare(renderer, method)
    benchmark.group = f"fig14 {dataset} eps={eps}"
    image = benchmark.pedantic(
        renderer.render_eps, args=(eps, method), rounds=2, iterations=1
    )
    assert image.shape == (renderer.grid.height, renderer.grid.width)
