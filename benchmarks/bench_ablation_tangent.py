"""Ablation — lower-bound tangent at the mean (t*, Equation 3) vs midpoint.

The paper chooses t* = mean of the x_i without measuring the
alternative; this ablation times both choices (and the engine work
counters in ``python -m repro experiment ablation_tangent`` show the
pruning difference directly).
"""

import pytest

from repro.methods.quad import QUADMethod

from benchmarks.conftest import get_renderer

TANGENTS = ("mean", "midpoint")


@pytest.mark.parametrize("tangent", TANGENTS)
def test_tangent_render_time(benchmark, tangent):
    renderer = get_renderer("home")
    method = QUADMethod(tangent=tangent)
    method.fit(renderer.points, renderer.kernel, renderer.gamma, renderer.weight)
    benchmark.group = "ablation tangent (quad, home, eps=0.01)"
    benchmark.pedantic(renderer.render_eps, args=(0.01, method), rounds=2, iterations=1)
