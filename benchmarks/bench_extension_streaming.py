"""Extension — streaming KDV ingestion and mid-stream query latency."""

import numpy as np
import pytest

from repro.visual.streaming import StreamingKDV

from benchmarks.conftest import BENCH_N


def build_stream(buffer_limit):
    rng = np.random.default_rng(0)
    stream = StreamingKDV(gamma=4.0, weight=1.0, buffer_limit=buffer_limit)
    for __ in range(8):
        stream.extend(rng.normal(size=(BENCH_N // 8, 2)))
    return stream


@pytest.mark.parametrize("buffer_limit", (512, 4096))
def test_ingest_throughput(benchmark, buffer_limit):
    rng = np.random.default_rng(1)
    batches = [rng.normal(size=(BENCH_N // 8, 2)) for __ in range(8)]

    def ingest():
        stream = StreamingKDV(gamma=4.0, weight=1.0, buffer_limit=buffer_limit)
        for batch in batches:
            stream.extend(batch)
        return stream

    benchmark.group = "extension streaming ingest"
    stream = benchmark.pedantic(ingest, rounds=2, iterations=1)
    assert stream.total_points == BENCH_N


def test_midstream_query_latency(benchmark):
    stream = build_stream(buffer_limit=1024)
    queries = np.random.default_rng(2).normal(size=(30, 2))

    def run_queries():
        return [stream.density_eps(q, eps=0.01) for q in queries]

    benchmark.group = "extension streaming query (30 queries)"
    values = benchmark.pedantic(run_queries, rounds=2, iterations=1)
    assert all(np.isfinite(values))
