"""Extension — bound-accelerated kernel regression vs exact evaluation.

The paper's stated future work ("apply QUAD to ... kernel regression"):
times Nadaraya-Watson prediction through the bound-refinement engine
against the brute-force estimator at equal accuracy.
"""

import numpy as np
import pytest

from repro.ml.kernel_regression import KernelRegressor

from benchmarks.conftest import BENCH_N

N_QUERIES = 50

_models = {}


def fitted_model():
    if "model" not in _models:
        rng = np.random.default_rng(0)
        X = rng.uniform(-3, 3, size=(BENCH_N, 2))
        y = np.sin(X[:, 0]) * np.cos(X[:, 1]) + rng.normal(0, 0.05, BENCH_N)
        _models["model"] = (KernelRegressor().fit(X, y), X)
    return _models["model"]


def test_regression_bounded(benchmark):
    model, X = fitted_model()
    queries = X[:N_QUERIES]
    benchmark.group = f"extension regression ({N_QUERIES} queries)"
    predictions = benchmark.pedantic(
        model.predict, args=(queries,), kwargs={"tol": 0.01}, rounds=2, iterations=1
    )
    assert np.all(np.isfinite(predictions))


def test_regression_exact(benchmark):
    model, X = fitted_model()
    queries = X[:N_QUERIES]
    benchmark.group = f"extension regression ({N_QUERIES} queries)"
    benchmark.pedantic(model.predict_exact, args=(queries,), rounds=2, iterations=1)
