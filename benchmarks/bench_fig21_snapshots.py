"""Figure 21 — QUAD progressive full-frame latency.

Paper result: QUAD + progressive framework delivers a reasonable map by
t = 0.5 s and the exact-resolution map soon after. This benchmark times
the complete coarse-to-fine run (every pixel) and the first-quartile
partial run that corresponds to the "reasonable" snapshot.
"""

import pytest

from benchmarks.conftest import BENCH_LEAF_SIZE, get_renderer
from repro.visual.progressive import ProgressiveRenderer


def make_progressive():
    renderer = get_renderer("home")
    return ProgressiveRenderer(
        renderer.points,
        kernel=renderer.kernel,
        gamma=renderer.gamma,
        weight=renderer.weight,
        method="quad",
        eps=0.01,
        grid=renderer.grid,
        leaf_size=BENCH_LEAF_SIZE,
    )


def test_full_progressive_run(benchmark):
    progressive = make_progressive()
    benchmark.group = "fig21 home quad progressive"
    result = benchmark.pedantic(progressive.run, rounds=2, iterations=1)
    assert result.complete


def test_quarter_progressive_run(benchmark):
    progressive = make_progressive()
    budget = progressive.grid.num_pixels // 4
    benchmark.group = "fig21 home quad progressive"
    result = benchmark.pedantic(
        progressive.run, kwargs={"max_pixels": budget}, rounds=2, iterations=1
    )
    assert not result.complete or budget >= progressive.grid.num_pixels
