"""Figure 16 — εKDV response time varying the resolution (ε = 0.01).

Paper result: time grows with pixel count for every method, but QUAD's
lead is preserved at every resolution.
"""

import pytest

from benchmarks.conftest import BENCH_RESOLUTION, get_renderer, prepare

METHODS = ("akde", "karl", "quad")
BASE_W, BASE_H = BENCH_RESOLUTION
RESOLUTIONS = (
    (max(BASE_W // 2, 4), max(BASE_H // 2, 3)),
    (BASE_W, BASE_H),
    (BASE_W * 2, BASE_H * 2),
)


@pytest.mark.parametrize("resolution", RESOLUTIONS, ids=lambda r: f"{r[0]}x{r[1]}")
@pytest.mark.parametrize("method", METHODS)
def test_resolution_render_time(benchmark, resolution, method):
    renderer = get_renderer("crime", resolution=resolution)
    prepare(renderer, method)
    benchmark.group = f"fig16 crime {resolution[0]}x{resolution[1]}"
    image = benchmark.pedantic(
        renderer.render_eps, args=(0.01, method), rounds=2, iterations=1
    )
    assert image.size == resolution[0] * resolution[1]
