"""Ablation — kd-tree versus ball-tree bounding regions.

The paper's framework is index-agnostic ("hierarchical index structures
(e.g., kd-tree)"); this ablation measures whether enclosing balls (one
sqrt per node, tighter on diagonal clusters) beat axis-aligned boxes
(branchy but sqrt-free) for the QUAD bounds.
"""

import pytest

from repro.methods.quad import QUADMethod

from benchmarks.conftest import get_renderer

INDEXES = ("kd", "ball")


@pytest.mark.parametrize("index", INDEXES)
def test_index_render_time(benchmark, index):
    renderer = get_renderer("crime")
    method = QUADMethod(index=index)
    method.fit(renderer.points, renderer.kernel, renderer.gamma, renderer.weight)
    benchmark.group = "ablation index (quad, crime, eps=0.01)"
    benchmark.pedantic(renderer.render_eps, args=(0.01, method), rounds=2, iterations=1)
