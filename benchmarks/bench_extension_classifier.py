"""Extension — bound-accelerated kernel density classification.

The application behind tKDC: exact argmax-class decisions with early
termination once one class's lower bound clears the rivals' upper
bounds. Timed against the brute-force class-density argmax.
"""

import numpy as np
import pytest

from repro.ml.kernel_classifier import KernelClassifier

from benchmarks.conftest import BENCH_N

N_QUERIES = 40

_models = {}


def fitted_model():
    if "model" not in _models:
        rng = np.random.default_rng(0)
        half = BENCH_N // 2
        a = rng.normal(size=(half, 2))
        b = rng.normal(size=(half, 2)) + [1.5, 0.5]
        points = np.vstack([a, b])
        labels = np.repeat([0, 1], half)
        _models["model"] = (KernelClassifier().fit(points, labels), points)
    return _models["model"]


def test_classifier_bounded(benchmark):
    model, points = fitted_model()
    queries = points[:N_QUERIES]
    benchmark.group = f"extension classifier ({N_QUERIES} queries)"
    predictions = benchmark.pedantic(model.predict, args=(queries,), rounds=2, iterations=1)
    assert len(predictions) == N_QUERIES


def test_classifier_exact(benchmark):
    model, points = fitted_model()
    queries = points[:N_QUERIES]
    benchmark.group = f"extension classifier ({N_QUERIES} queries)"
    benchmark.pedantic(model.predict_exact, args=(queries,), rounds=2, iterations=1)


def test_bounded_matches_exact():
    model, points = fitted_model()
    queries = points[: N_QUERIES * 2]
    np.testing.assert_array_equal(model.predict(queries), model.predict_exact(queries))
