"""Ablation — kd-tree leaf capacity versus εKDV render time.

Not in the paper (which fixes its index configuration); measures the
trade-off between bound granularity (small leaves) and vectorised exact
evaluation (large leaves) in this implementation.
"""

import pytest

from benchmarks.conftest import get_renderer, prepare

LEAF_SIZES = (32, 128, 512)


@pytest.mark.parametrize("leaf_size", LEAF_SIZES)
def test_leaf_size_render_time(benchmark, leaf_size):
    renderer = get_renderer("crime", leaf_size=leaf_size)
    prepare(renderer, "quad")
    benchmark.group = "ablation leaf size (quad, crime, eps=0.01)"
    benchmark.pedantic(renderer.render_eps, args=(0.01, "quad"), rounds=2, iterations=1)
