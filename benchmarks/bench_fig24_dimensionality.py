"""Figure 24 — KDE query throughput versus dimensionality (Section 7.7).

Paper result: bound-based throughput decays as d grows, but QUAD stays
ahead of aKDE/KARL (and far ahead of SCAN) through d = 10.
"""

import numpy as np
import pytest

from repro.core.kde import KernelDensity
from repro.data.projection import pca_project
from repro.data.synthetic import hep_like

from benchmarks.conftest import BENCH_N

DIMS = (2, 6)
METHODS = ("exact", "akde", "karl", "quad")
N_QUERIES = 25

_fitted = {}


def fitted_kde(dims, method):
    key = (dims, method)
    if key not in _fitted:
        points = pca_project(hep_like(BENCH_N, seed=0, dims=max(dims, 2)), dims)
        _fitted[key] = (KernelDensity(method=method).fit(points), points)
    return _fitted[key]


@pytest.mark.parametrize("dims", DIMS)
@pytest.mark.parametrize("method", METHODS)
def test_kde_throughput(benchmark, dims, method):
    kde, points = fitted_kde(dims, method)
    rng = np.random.default_rng(1)
    queries = points[rng.choice(len(points), N_QUERIES, replace=False)]
    queries = queries + rng.normal(size=queries.shape) * points.std(axis=0) * 0.05
    benchmark.group = f"fig24 hep d={dims} ({N_QUERIES} queries)"
    values = benchmark.pedantic(
        kde.density_eps, args=(queries, 0.01), rounds=2, iterations=1
    )
    assert np.all(np.asarray(values) >= 0.0)
