"""Figure 17 — response time varying the dataset size (hep dataset).

Paper result: all methods grow roughly linearly in n, with QUAD's
order-of-magnitude lead stable across sizes for both εKDV and τKDV.
"""

import pytest

from benchmarks.conftest import BENCH_N, get_renderer, prepare

SIZES = (max(BENCH_N // 4, 500), BENCH_N, BENCH_N * 2)
EPS_METHODS = ("akde", "karl", "quad")
TAU_METHODS = ("tkdc", "quad")


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("method", EPS_METHODS)
def test_eps_scalability(benchmark, n, method):
    renderer = get_renderer("hep", n=n)
    prepare(renderer, method)
    benchmark.group = f"fig17a hep eps n={n}"
    benchmark.pedantic(renderer.render_eps, args=(0.01, method), rounds=2, iterations=1)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("method", TAU_METHODS)
def test_tau_scalability(benchmark, n, method):
    renderer = get_renderer("hep", n=n)
    prepare(renderer, method)
    mu, __ = renderer.density_stats()
    benchmark.group = f"fig17b hep tau n={n}"
    benchmark.pedantic(renderer.render_tau, args=(mu, method), rounds=2, iterations=1)
