"""Figure 22 — εKDV time with triangular/cosine kernels (no KARL).

Paper result: QUAD beats aKDE by at least an order of magnitude and
Z-order especially at small ε; KARL cannot compete here at all
(Section 5.1), which the capability test below pins down.
"""

import pytest

from benchmarks.conftest import get_renderer, prepare
from repro.errors import UnsupportedKernelError

METHODS = ("akde", "zorder", "quad")
KERNELS = ("triangular", "cosine")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("method", METHODS)
def test_other_kernel_eps_time(benchmark, kernel, method):
    renderer = get_renderer("crime", kernel=kernel)
    prepare(renderer, method)
    benchmark.group = f"fig22 crime {kernel} eps=0.01"
    benchmark.pedantic(renderer.render_eps, args=(0.01, method), rounds=2, iterations=1)


def test_karl_cannot_serve_distance_kernels():
    renderer = get_renderer("crime", kernel="triangular")
    with pytest.raises(UnsupportedKernelError):
        renderer.get_method("karl")
