"""Figure 19 — εKDV quality/time across methods (home, ε = 0.01).

Paper result: all guarantee-carrying methods are visually identical to
the exact map; the benchmark times each render and asserts the
deterministic methods stay within the contract.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_renderer, prepare
from repro.visual.metrics import max_relative_error

METHODS = ("exact", "akde", "karl", "quad", "zorder")


@pytest.mark.parametrize("method", METHODS)
def test_quality_render(benchmark, method):
    renderer = get_renderer("home")
    prepare(renderer, method)
    exact = renderer.render_exact()
    benchmark.group = "fig19 home eps=0.01"
    image = benchmark.pedantic(
        renderer.render_eps, args=(0.01, method), rounds=2, iterations=1
    )
    if method != "zorder":
        floor = 1e-6 * float(exact.max())
        assert max_relative_error(image, exact, floor=floor) <= 0.011
