"""Ablation — best-first (bound-gap) versus FIFO refinement ordering.

The paper's Table 3 prescribes popping the node with the largest bound
gap; this ablation quantifies what that priority buys over breadth-first
refinement.
"""

import pytest

from repro.methods.quad import QUADMethod

from benchmarks.conftest import get_renderer

ORDERINGS = ("gap", "fifo")


@pytest.mark.parametrize("ordering", ORDERINGS)
def test_ordering_render_time(benchmark, ordering):
    renderer = get_renderer("home")
    method = QUADMethod(ordering=ordering)
    method.fit(renderer.points, renderer.kernel, renderer.gamma, renderer.weight)
    benchmark.group = "ablation ordering (quad, home, eps=0.01)"
    benchmark.pedantic(renderer.render_eps, args=(0.01, method), rounds=2, iterations=1)
