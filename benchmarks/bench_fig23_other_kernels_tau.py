"""Figure 23 — τKDV time with triangular/cosine kernels (tKDC vs QUAD).

Paper result: QUAD at least one order of magnitude ahead of tKDC at
every threshold for both kernels.
"""

import pytest

from benchmarks.conftest import get_renderer, prepare

METHODS = ("tkdc", "quad")
KERNELS = ("triangular", "cosine")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("method", METHODS)
def test_other_kernel_tau_time(benchmark, kernel, method):
    renderer = get_renderer("crime", kernel=kernel)
    prepare(renderer, method)
    mu, __ = renderer.density_stats()
    benchmark.group = f"fig23 crime {kernel} tau=mu"
    benchmark.pedantic(renderer.render_tau, args=(mu, method), rounds=2, iterations=1)
