"""Setuptools shim.

Enables ``python setup.py develop`` / legacy editable installs in offline
environments that lack the ``wheel`` package required by PEP 517 editable
builds. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
