"""KDV tile service: dataset registry, multi-level cache, HTTP server.

The serving stack, bottom-up:

* :mod:`repro.serve.tiles` — slippy-map tile addressing over a
  dataset's base viewport (seam-free ``2^z × 2^z`` pyramids);
* :mod:`repro.serve.registry` — datasets loaded, validated and indexed
  exactly once, shared across requests, versioned on append;
* :mod:`repro.serve.service` — request planning, the three-level
  :class:`~repro.cache.TileCache` (PNG bytes / density arrays / root
  bound envelopes), single-flight render dedup, worker pool,
  backpressure and deadline handling;
* :mod:`repro.serve.sharding` — spatial scale-out: datasets split into
  K kd-tree shards with per-shard indexes/coresets/pools, summed at
  serve time with the QUAD guarantee intact;
* :mod:`repro.serve.http` — a stdlib-asyncio HTTP front end exposing
  ``GET /tile/{dataset}/{z}/{x}/{y}.png`` and ``GET /stats``.

Configuration lives in :mod:`repro.serve.config` as nested groups
(:class:`RenderConfig` / :class:`CacheConfig` / :class:`ResilienceConfig`
/ :class:`ShardingConfig`) composed into one :class:`ServiceConfig`.

All rendering goes through the unified
:class:`~repro.visual.request.RenderRequest` API — the invariant linter
forbids legacy ``render_eps`` / ``render_tau`` calls in this package.
"""

from repro.serve.config import (
    CacheConfig,
    RenderConfig,
    ResilienceConfig,
    ServiceConfig,
    ShardingConfig,
)
from repro.serve.http import TileServer, run_server
from repro.serve.registry import DatasetEntry, DatasetRegistry, ShardRouting
from repro.serve.service import TilePlan, TileService
from repro.serve.sharding import (
    ShardedDatasetEntry,
    ShardedDatasetRegistry,
    kd_partition,
    rendezvous_shard,
)
from repro.serve.tiles import (
    DEFAULT_TILE_PX,
    MAX_ZOOM,
    tile_count,
    tile_grid,
    validate_tile,
)

__all__ = [
    "DEFAULT_TILE_PX",
    "MAX_ZOOM",
    "CacheConfig",
    "DatasetEntry",
    "DatasetRegistry",
    "RenderConfig",
    "ResilienceConfig",
    "ServiceConfig",
    "ShardRouting",
    "ShardedDatasetEntry",
    "ShardedDatasetRegistry",
    "ShardingConfig",
    "TilePlan",
    "TileServer",
    "TileService",
    "kd_partition",
    "rendezvous_shard",
    "run_server",
    "tile_count",
    "tile_grid",
    "validate_tile",
]
