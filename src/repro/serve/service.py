"""The tile service: request planning, caching, rendering, backpressure.

:class:`TileService` is the synchronous heart of ``repro serve`` — the
asyncio HTTP layer (:mod:`repro.serve.http`) is a thin adapter over it,
and tests drive it directly. One tile request flows through:

1. **Plan** — :meth:`TileService.plan_tile` resolves the dataset entry,
   derives the tile's :class:`~repro.visual.grid.PixelGrid`, builds the
   canonical :class:`~repro.visual.request.RenderRequest` and computes
   the three cache keys (PNG / density / root-bounds levels).
2. **L1 lookup** — :meth:`TileService.cached_png` is a dictionary-cheap
   check the HTTP layer runs on the event loop itself, so warm tiles
   never wait behind cold renders in the worker pool.
3. **Render** — :meth:`TileService.render_tile` runs on the worker
   pool, deduplicated per PNG key by a
   :class:`~repro.utils.cache.SingleFlight` (a thundering herd of
   identical tile requests does one render), consults the density and
   bounds cache levels, renders through the one
   ``KDVRenderer.render(request)`` entrypoint under a per-request
   :class:`~repro.resilience.budget.Budget` deadline, and never caches
   a degraded result: a tripped deadline raises
   :class:`~repro.errors.DeadlineExceededError` (HTTP 504).
4. **Backpressure** — admission control is a counting semaphore over
   render slots (:meth:`try_acquire_slot`); when the bounded queue is
   full the HTTP layer answers 503 instead of stacking work.
5. **Degrade-don't-fail** — :meth:`TileService.serve_tile` wraps the
   strict render in the overload policy: a per-dataset
   :class:`~repro.resilience.supervisor.CircuitBreaker` rejects
   requests against a dataset that keeps failing *before* they burn a
   worker slot; a tripped deadline serves the anytime render's partial
   envelope (when one exists); a failed render falls back to the last
   known-good bytes from the **stale cache** (a small LRU the fresh
   path refreshes on every successful render, keyed *without* the
   dataset version so it survives invalidation — that is its entire
   point). Degraded bytes are never written into the fresh cache and
   every degraded response is explicitly marked, so clients can always
   tell a stop-gap tile from a real one.

Every cache event and request/render latency is mirrored into a
:class:`~repro.obs.metrics.MetricsRegistry` exposed at ``/stats``.

Renders always run the anytime tiled path with a fixed internal batch
partition (`RENDER_TILE_SIZE`), so the bytes a request produces are
independent of who rendered it, with what deadline, and whether any
cache level helped — the property the byte-identity tests pin down.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from repro.cache.tiles import TileCache, TileKey, partial_fingerprint
from repro.core import stopping
from repro.core.exact import exact_density
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidParameterError,
    ServiceOverloadedError,
    UnknownNameError,
    UnsupportedKernelError,
    UnsupportedOperationError,
)
from repro.methods.base import IndexedMethod
from repro.obs.metrics import DEFAULT_SECONDS_BOUNDS, MetricsRegistry
from repro.resilience.budget import STOP_TILE_FAILURES, Budget
from repro.resilience.retry import TransientTileError
from repro.resilience.supervisor import CircuitBreaker
from repro.serve.config import (
    CacheConfig,
    RenderConfig,
    ResilienceConfig,
    ServiceConfig,
    ShardingConfig,
)
from repro.serve.registry import DatasetEntry, DatasetRegistry
from repro.serve.sharding import (
    TAU_SHARD_REF_EPS,
    ShardedDatasetRegistry,
    rendezvous_shard,
    tile_extent_key,
)
from repro.serve.tiles import tile_grid, validate_tile
from repro.utils.cache import LRUCache, SingleFlight
from repro.visual.colormap import get_colormap, two_color_map
from repro.visual.image import png_bytes
from repro.visual.request import OP_EPS, OP_TAU, RenderOptions, RenderRequest

if TYPE_CHECKING:
    from repro._types import FloatArray
    from repro.visual.kdv import KDVRenderer

__all__ = [
    "RENDER_TILE_SIZE",
    "CacheConfig",
    "RenderConfig",
    "ResilienceConfig",
    "ServiceConfig",
    "ShardingConfig",
    "TilePlan",
    "TileService",
]

#: Fixed internal batch partition for every service render. Part of the
#: request fingerprint (batch composition shapes per-pixel ε answers),
#: so it must be one service-wide constant for cached bytes to be
#: reusable across requests.
RENDER_TILE_SIZE = 64

#: Resolution of the coarse exact-density pass that fixes each
#: dataset's colour normalisation range (see ``TileService._entry_vmax``).
_VMAX_GRID_WIDTH = 64


@dataclass
class TilePlan:
    """A fully planned tile request: resolved render request + cache keys.

    ``renderer`` is the renderer the plan executes against — the
    entry's exact renderer, or a per-zoom coreset tier's renderer when
    the tile's zoom routes below the entry's ``coreset_zoom`` threshold
    (in which case ``resolved.tier`` carries the tier tag and
    ``tier_delta_z`` the folded error bound).

    Sharded entries route to ``shard_renderers`` (one per spatial
    shard, fixed order; ``renderer`` is then shard 0's): the tile sums
    per-shard partial densities, each shard render described by the one
    shared ``shard_request`` (an ε request whose atol is split ``/K``)
    and cached under its own per-shard density/bounds keys. Every key
    of a sharded plan mixes the shard count into its fingerprint, so a
    resharded dataset can never alias old cache entries; a one-shard
    plan's keys are byte-identical to the historical unsharded ones.
    ``home_shard`` is the tile's rendezvous-hashed affinity shard,
    whose circuit breaker (``breaker_id``) owns this tile's renders.
    """

    entry: DatasetEntry
    versioned_id: str
    tile: Tuple[int, int, int]
    resolved: RenderRequest
    colormap: str
    deadline_ms: Optional[float]
    indexed: bool
    renderer: "KDVRenderer"
    tier_delta_z: Optional[float] = None
    shard_renderers: Tuple["KDVRenderer", ...] = ()
    shard_request: Optional[RenderRequest] = None
    home_shard: int = 0
    png_key: TileKey = field(init=False)
    density_key: TileKey = field(init=False)
    bounds_key: TileKey = field(init=False)
    stale_key: TileKey = field(init=False)
    shard_density_keys: Tuple[TileKey, ...] = field(init=False)
    shard_bounds_keys: Tuple[TileKey, ...] = field(init=False)

    def __post_init__(self) -> None:
        dataset_id = self.entry.dataset_id
        z, x, y = self.tile
        shards = self.shards
        base_extra: Dict[str, Any] = {
            "dataset": self.versioned_id,
            "tile": [z, x, y],
        }
        stale_extra: Dict[str, Any] = {
            "dataset": dataset_id,
            "tile": [z, x, y],
            "colormap": self.colormap,
        }
        if shards > 1:
            base_extra["shards"] = shards
            stale_extra["shards"] = shards
        self.png_key = (
            dataset_id,
            "png",
            self.resolved.fingerprint(extra={**base_extra, "colormap": self.colormap}),
        )
        # Deliberately keyed on the *unversioned* dataset id: the stale
        # cache exists to answer "what did this tile look like the last
        # time a render succeeded", and that answer must survive the
        # version bump that invalidates every fresh cache level.
        self.stale_key = (
            dataset_id,
            "stale",
            self.resolved.fingerprint(extra=stale_extra),
        )
        self.density_key = (
            dataset_id,
            "density",
            partial_fingerprint(self.resolved, extra=base_extra),
        )
        self.bounds_key = (
            dataset_id,
            "bounds",
            partial_fingerprint(
                self.resolved,
                drop=("op", "eps", "tau", "atol", "tile_size"),
                extra=base_extra,
            ),
        )
        if shards > 1:
            assert self.shard_request is not None
            density_keys = []
            bounds_keys = []
            for index in range(shards):
                shard_extra = {**base_extra, "shard": index}
                density_keys.append(
                    (
                        dataset_id,
                        "density",
                        partial_fingerprint(self.shard_request, extra=shard_extra),
                    )
                )
                bounds_keys.append(
                    (
                        dataset_id,
                        "bounds",
                        partial_fingerprint(
                            self.shard_request,
                            drop=("op", "eps", "tau", "atol", "tile_size"),
                            extra=shard_extra,
                        ),
                    )
                )
            self.shard_density_keys = tuple(density_keys)
            self.shard_bounds_keys = tuple(bounds_keys)
        else:
            self.shard_density_keys = ()
            self.shard_bounds_keys = ()

    @property
    def op(self) -> str:
        """The render operation (``"eps"`` or ``"tau"``)."""
        return self.resolved.op

    @property
    def shards(self) -> int:
        """How many spatial shards this tile sums over (1 = unsharded)."""
        return len(self.shard_renderers) or 1

    @property
    def breaker_id(self) -> str:
        """The circuit breaker owning this tile's renders.

        The dataset id itself for monolithic entries; the tile's
        rendezvous home shard (``"<dataset>#s<i>"``) for sharded ones,
        so a poisoned spatial region trips one shard's breaker instead
        of blacking out the whole dataset.
        """
        if self.shards > 1:
            return f"{self.entry.dataset_id}#s{self.home_shard}"
        return self.entry.dataset_id


class TileService:
    """Serve slippy-map KDV tiles from a shared registry + cache.

    Parameters
    ----------
    registry:
        An existing :class:`~repro.serve.registry.DatasetRegistry`, or
        ``None`` to create one wired to this service's cache
        invalidation. When passing your own registry, construct it with
        ``on_invalidate=service.invalidate_dataset`` yourself (or
        append through :meth:`append_points`) so appends invalidate the
        cache.
    config:
        A :class:`ServiceConfig`.
    """

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry()
        self.cache = TileCache(
            png_bytes=self.config.png_cache_bytes,
            aux_bytes=self.config.aux_cache_bytes,
            ttl_s=self.config.cache_ttl_s,
            metrics=self.metrics,
        )
        self._owns_registry = registry is None
        self.registry = (
            registry
            if registry is not None
            else ShardedDatasetRegistry(
                on_invalidate=self.invalidate_dataset,
                default_shards=int(self.config.sharding.shards),
                min_points_per_shard=int(self.config.sharding.min_points_per_shard),
            )
        )
        self._flight: SingleFlight[TileKey, bytes] = SingleFlight()
        self._slots = threading.BoundedSemaphore(int(self.config.queue_limit))
        self._active = 0
        self._active_lock = threading.Lock()
        self._vmax: Dict[str, float] = {}
        self._vmax_lock = threading.Lock()
        self._stale: LRUCache[TileKey, bytes] = LRUCache(
            max_bytes=int(self.config.stale_cache_bytes),
            ttl_s=self.config.stale_ttl_s,
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._closing = False
        self.pool = ThreadPoolExecutor(
            max_workers=int(self.config.workers), thread_name_prefix="repro-tile"
        )
        self.started_at = time.time()

    # -- backpressure -------------------------------------------------------

    def try_acquire_slot(self) -> bool:
        """Claim a render slot; ``False`` means the queue is full (503).

        A draining service (:meth:`close` in progress) admits nothing
        new — in-flight requests finish, fresh ones are rejected so the
        shutdown converges.
        """
        if self._closing:
            self.metrics.counter("tiles.rejected").add(1)
            return False
        acquired = self._slots.acquire(blocking=False)
        if acquired:
            with self._active_lock:
                self._active += 1
        else:
            self.metrics.counter("tiles.rejected").add(1)
        return acquired

    def acquire_slot(self) -> None:
        """Claim a render slot or raise :class:`ServiceOverloadedError`."""
        if not self.try_acquire_slot():
            raise ServiceOverloadedError(
                f"render queue full ({self.config.queue_limit} slots); retry later"
            )

    def release_slot(self) -> None:
        """Return a slot claimed with :meth:`try_acquire_slot`."""
        with self._active_lock:
            self._active -= 1
        self._slots.release()

    @property
    def active_requests(self) -> int:
        """Render slots currently claimed."""
        with self._active_lock:
            return self._active

    @property
    def draining(self) -> bool:
        """Whether :meth:`close` has begun (``/readyz`` answers 503)."""
        return self._closing

    # -- planning -----------------------------------------------------------

    def plan_tile(
        self,
        dataset: str,
        z: int,
        x: int,
        y: int,
        *,
        eps: Optional[float] = None,
        tau: Optional[float] = None,
        method: Optional[str] = None,
        colormap: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> TilePlan:
        """Resolve one tile request into a :class:`TilePlan`.

        ``eps`` / ``tau`` select the operation (τ wins when both are
        given; with neither, the config defaults apply). ``method`` and
        ``colormap`` default from the dataset entry / config; the
        request is validated and resolved here, so a plan that comes
        back is renderable.
        """
        entry = self.registry.get(dataset)
        z, x, y = validate_tile(z, x, y, max_zoom=self.config.max_zoom)
        grid = tile_grid(entry.base_grid, z, x, y, self.config.tile_px)
        method_name = str(method if method is not None else entry.method).lower()
        colormap_name = str(
            colormap if colormap is not None else self.config.colormap
        ).lower()
        get_colormap(colormap_name)  # fail fast on unknown names (400, not 500)
        # Tier + shard routing: the entry answers with one renderer per
        # spatial shard for this zoom (one renderer, period, for
        # monolithic entries). Below the coreset threshold those are
        # tier renderers and routing.delta_z carries the *combined*
        # coreset error, folded into eps once for the whole summed tile
        # (eps_effective = eps - delta_z, docs/bounds.md); zoom >=
        # coreset_zoom falls through to exact QUAD. tau renders route
        # unchanged — masks can flip only where |F - tau| <= delta_abs.
        routing = entry.tile_routes(z)
        shards = routing.shards
        renderer = routing.renderers[0]
        tier_tag = routing.tier_tag
        tier_delta_z = routing.delta_z if tier_tag is not None else None
        if tau is not None:
            request = RenderRequest.for_tau(
                float(tau), method_name, grid=grid, tier=tier_tag
            )
        elif eps is not None or self.config.tau is None:
            eps_requested = float(eps if eps is not None else self.config.eps)
            if tier_tag is not None:
                if eps_requested <= routing.delta_z:
                    raise InvalidParameterError(
                        f"eps={eps_requested} is not achievable at zoom {z}: the "
                        f"coreset tier's error bound delta_z={routing.delta_z:.6g} "
                        "consumes the whole budget; request a larger eps or "
                        "register with a smaller coreset_delta_cap"
                    )
                eps_requested -= routing.delta_z
            request = RenderRequest.for_eps(
                eps_requested, method_name, grid=grid, tier=tier_tag
            )
        else:
            request = RenderRequest.for_tau(
                float(self.config.tau), method_name, grid=grid, tier=tier_tag
            )
        fitted = renderer.get_method(method_name)
        indexed = isinstance(fitted, IndexedMethod)
        fitted._require(request.op)
        if shards > 1 and request.op == OP_TAU:
            # Sharded tau tiles pre-decide pixels from summed per-shard
            # eps bounds before the exact fallback, so the method must
            # support the eps operation too.
            fitted._require(OP_EPS)
        options = (
            RenderOptions(
                tile_size=RENDER_TILE_SIZE,
                anytime=True,
                workers=self.config.render_workers,
                executor=self.config.executor,
                backend=self.config.backend,
            )
            if indexed
            else RenderOptions()
        )
        resolved = request.replace(options=options).resolve(renderer)
        shard_request: Optional[RenderRequest] = None
        home_shard = 0
        if shards > 1:
            home_shard = rendezvous_shard(
                entry.dataset_id, shards, tile_extent_key(grid)
            )
            if resolved.op == OP_EPS:
                # Each shard renders the folded eps with the absolute
                # floor split K ways; summing the per-shard contracts
                # |F_s_hat - F_s| <= eps*F_s + atol/K reproduces the
                # unsharded envelope |F_hat - F| <= eps*F + atol.
                assert resolved.atol is not None
                shard_request = resolved.replace(atol=float(resolved.atol) / shards)
            else:
                # tau has no accuracy knob, so shards render a
                # reference-eps density whose summed bounds decide the
                # mask (exact fallback for the undecided sliver).
                shard_request = RenderRequest.for_eps(
                    TAU_SHARD_REF_EPS,
                    method_name,
                    grid=grid,
                    tier=tier_tag,
                    atol=(1e-9 * float(renderer.weight)) / shards,
                    options=options,
                ).resolve(renderer)
        return TilePlan(
            entry=entry,
            versioned_id=entry.versioned_id(),
            tile=(z, x, y),
            resolved=resolved,
            colormap=colormap_name,
            deadline_ms=(
                deadline_ms if deadline_ms is not None else self.config.deadline_ms
            ),
            indexed=indexed,
            renderer=renderer,
            tier_delta_z=tier_delta_z,
            shard_renderers=routing.renderers if shards > 1 else (),
            shard_request=shard_request,
            home_shard=home_shard,
        )

    # -- serving ------------------------------------------------------------

    def cached_png(self, plan: TilePlan) -> Optional[bytes]:
        """L1 lookup only — cheap enough for the HTTP event loop."""
        return self.cache.get_png(plan.png_key)

    def render_tile(self, plan: TilePlan) -> bytes:
        """Render (or join the in-flight render of) one planned tile.

        The strict path: a failure raises (no degrade ladder) — callers
        wanting the overload policy go through :meth:`serve_tile`.
        """
        data, leader = self._flight.do(plan.png_key, lambda: self._render_uncached(plan))
        if not leader:
            self.metrics.counter("tiles.shared").add(1)
        return data

    def serve_tile(self, plan: TilePlan) -> Tuple[bytes, Dict[str, Any]]:
        """Render one tile under the degrade-don't-fail overload policy.

        Returns ``(png, degrade_info)`` where ``degrade_info`` is
        ``{"degraded": None}`` for a full-quality tile, or carries the
        degradation mode (``"partial"`` / ``"stale"``) and its reason.
        The ladder, in order:

        1. The dataset's circuit breaker gets a veto *before* any render
           work; while open, a stale tile is served when one exists,
           else :class:`~repro.errors.CircuitOpenError` (503).
        2. The strict render runs. Success refreshes the stale cache
           and returns fresh bytes.
        3. A tripped deadline serves the anytime render's best-so-far
           envelope (attached to the error as ``partial_values``) when
           one exists — encoded on the fly, **never** written to the
           fresh cache — else a stale tile, else the error propagates
           (504).
        4. Any other render failure tries the stale cache before
           propagating.

        With ``degraded_serving=False`` every rung collapses to the
        strict raise semantics (the breaker still counts and vetoes).
        """
        breaker = self._breaker(plan.breaker_id)
        if not breaker.allow():
            stale = self.stale_png(plan)
            if stale is not None:
                return stale, self._degraded_info("stale", "circuit_open")
            raise CircuitOpenError(
                f"dataset {plan.breaker_id!r} breaker is open after "
                f"repeated render failures; retry in "
                f"{breaker.retry_after_s():.1f}s"
            )
        try:
            data = self.render_tile(plan)
        except DeadlineExceededError as error:
            if self.config.degraded_serving and error.partial_values is not None:
                values = np.asarray(error.partial_values)
                partial = self._encode(plan, values)
                self.metrics.counter("tiles.partial_served").add(1)
                info = self._degraded_info("partial", "deadline")
                info["pixels_resolved"] = error.pixels_resolved
                info["pixels_total"] = error.pixels_total
                return partial, info
            stale = self.stale_png(plan)
            if stale is not None:
                return stale, self._degraded_info("stale", "deadline")
            raise
        except (InvalidParameterError, UnknownNameError, UnsupportedKernelError,
                UnsupportedOperationError):
            # Client errors: no degrade (the request itself is wrong).
            raise
        except Exception:
            stale = self.stale_png(plan)
            if stale is not None:
                return stale, self._degraded_info("stale", "render_failed")
            raise
        if self.config.degraded_serving:
            self._stale.put(plan.stale_key, data, size_bytes=len(data))
        return data, {"degraded": None}

    def stale_png(self, plan: TilePlan) -> Optional[bytes]:
        """The tile's last known-good bytes, or ``None``.

        Only consulted on the degrade ladder (and by the HTTP layer's
        queue-full fallback); returns nothing when ``degraded_serving``
        is off.
        """
        if not self.config.degraded_serving:
            return None
        return self._stale.get(plan.stale_key)

    def _degraded_info(self, mode: str, reason: str) -> Dict[str, Any]:
        self.metrics.counter("tiles.degraded_served").add(1)
        if mode == "stale":
            self.metrics.counter("tiles.stale_served").add(1)
        return {"degraded": mode, "degrade_reason": reason}

    def _breaker(self, dataset_id: str) -> CircuitBreaker:
        """The dataset's circuit breaker (created on first use)."""
        with self._breakers_lock:
            breaker = self._breakers.get(dataset_id)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=int(self.config.breaker_threshold),
                    reset_timeout_s=float(self.config.breaker_reset_s),
                    on_transition=self._on_breaker_transition,
                )
                self._breakers[dataset_id] = breaker
            return breaker

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.metrics.counter(
            f"breaker.to_{new.replace('-', '_')}"
        ).add(1)

    def get_tile(
        self, dataset: str, z: int, x: int, y: int, **params: Any
    ) -> Tuple[bytes, Dict[str, Any]]:
        """Plan + serve one tile; returns ``(png, info)``.

        The synchronous convenience the HTTP layer mirrors (it splits
        the same steps across the event loop and worker pool). ``info``
        carries the cache disposition (``"hit"`` / ``"miss"``), the
        versioned dataset id, the request fingerprint, and — under the
        overload policy — the degradation marker (``info["degraded"]``
        is ``None`` for full-quality tiles).
        """
        start = time.perf_counter()
        self.metrics.counter("tiles.requests").add(1)
        plan = self.plan_tile(dataset, z, x, y, **params)
        degrade_info: Dict[str, Any] = {"degraded": None}
        data = self.cached_png(plan)
        if data is not None:
            disposition = "hit"
            self.metrics.counter("tiles.l1_hits").add(1)
        else:
            disposition = "miss"
            data, degrade_info = self.serve_tile(plan)
        elapsed = time.perf_counter() - start
        self.metrics.histogram("tiles.request_s", DEFAULT_SECONDS_BOUNDS).observe(elapsed)
        info = {
            "cache": disposition,
            "dataset": plan.versioned_id,
            "tile": list(plan.tile),
            "op": plan.op,
            "tier": plan.resolved.tier,
            "fingerprint": plan.png_key[2],
            "elapsed_s": elapsed,
        }
        info.update(degrade_info)
        return data, info

    # -- rendering internals -------------------------------------------------

    def _render_uncached(self, plan: TilePlan) -> bytes:
        """Single-flight leader body: L2 levels, render, encode, fill L1.

        Also the circuit-breaker sampling point: exactly one
        success/failure is recorded per *actual* render, so a
        thundering herd that shares a failed flight does not multiply
        one failure into a tripped breaker. Client errors and tripped
        deadlines are excluded — the former say nothing about the
        dataset's health, the latter have their own degrade path.
        """
        # Re-check L1: a previous flight may have landed between the
        # caller's lookup and this leader starting.
        data = self.cache.get_png(plan.png_key)
        if data is not None:
            return data
        start = time.perf_counter()
        try:
            values = self.cache.get_density(plan.density_key)
            if values is None:
                values = self._compute_values(plan)
                self.cache.put_density(plan.density_key, values)
            data = self._encode(plan, values)
        except (DeadlineExceededError, InvalidParameterError, UnknownNameError,
                UnsupportedKernelError, UnsupportedOperationError):
            raise
        except Exception:
            self._breaker(plan.breaker_id).record_failure()
            raise
        self._breaker(plan.breaker_id).record_success()
        self.cache.put_png(plan.png_key, data)
        self.metrics.counter("tiles.renders").add(1)
        self.metrics.histogram("tiles.render_s", DEFAULT_SECONDS_BOUNDS).observe(
            time.perf_counter() - start
        )
        return data

    def _compute_values(self, plan: TilePlan) -> np.ndarray:
        """The tile's value array (density image or τ mask), full quality.

        Tries the cached root-bounds envelope first: when it already
        resolves every pixel, the answer is assembled straight from the
        bounds — bit-identical to the engine's output, because the
        batched engine starts from these exact root bounds and refines
        only rows the stopping test leaves active (an all-stopped batch
        is returned untouched).
        """
        resolved = plan.resolved
        grid = resolved.grid
        assert grid is not None
        if plan.shards > 1:
            return self._compute_values_sharded(plan)
        if plan.indexed:
            envelope = self.cache.get_bounds(plan.bounds_key)
            if envelope is None:
                fitted = plan.renderer.get_method(resolved.method)
                assert isinstance(fitted, IndexedMethod)
                engine = fitted.batch_engine
                if engine is not None:
                    envelope = engine.root_envelope(grid.centers())
                    self.cache.put_bounds(plan.bounds_key, envelope)
            if envelope is not None:
                shortcut = self._from_envelope(resolved, envelope)
                if shortcut is not None:
                    self.metrics.counter("tiles.bounds_shortcircuit").add(1)
                    return np.asarray(grid.to_image(shortcut))
        return self._render_full(plan)

    def _from_envelope(
        self, resolved: RenderRequest, envelope: Tuple["FloatArray", "FloatArray"]
    ) -> Optional[np.ndarray]:
        """Flat tile values decided by root bounds alone, else ``None``."""
        lower, upper = envelope
        if resolved.op == OP_TAU:
            tau = float(resolved.tau)  # type: ignore[arg-type]
            if bool(stopping.tau_stop_mask(lower, upper, tau).all()):
                return np.asarray(stopping.tau_hot_mask(lower, tau))
            return None
        eps = float(resolved.eps)  # type: ignore[arg-type]
        atol = float(resolved.atol)  # type: ignore[arg-type]
        if bool(stopping.eps_stop_mask(lower, upper, 1.0 + eps, 0.0, atol).all()):
            return 0.5 * (lower + upper)
        return None

    def _compute_values_sharded(self, plan: TilePlan) -> np.ndarray:
        """Sum K per-shard partial densities into one guaranteed tile.

        Every shard renders the shared ``shard_request`` (each hitting
        its own density/bounds cache levels and per-shard root-bounds
        shortcut) and the partial images are summed in fixed shard
        order — deterministic bytes for a given shard count. ε tiles
        return the sum directly: per-shard contracts at atol/K sum to
        the exact unsharded envelope (docs/serving.md). τ tiles decide
        each pixel from the summed reference-ε bounds via the τ
        stopping rule and finish the undecided sliver with summed
        per-shard exact density, so the mask matches the unsharded mask
        wherever τ is not within floating-point noise of the density.

        The deadline budget applies per shard render; a shard that
        trips it raises without partial values — one shard's partial
        envelope is not a valid tile for the summed dataset.
        """
        resolved = plan.resolved
        grid = resolved.grid
        shard_request = plan.shard_request
        assert grid is not None and shard_request is not None
        budget = (
            Budget.from_deadline_ms(plan.deadline_ms)
            if plan.deadline_ms is not None
            else None
        )
        total: Optional[np.ndarray] = None
        for index in range(plan.shards):
            values = self._shard_density(plan, index, budget)
            total = np.asarray(values) if total is None else total + values
        assert total is not None
        if resolved.op == OP_EPS:
            return total
        # tau hybrid: each shard value v_s obeys
        # |v_s - F_s| <= eps_ref * F_s + atol/K, so the summed value v
        # brackets the true density F by
        #   (v - atol) / (1 + eps_ref) <= F <= (v + atol) / (1 - eps_ref).
        flat = total.reshape(-1)
        eps_ref = float(shard_request.eps)  # type: ignore[arg-type]
        atol_total = float(shard_request.atol) * plan.shards  # type: ignore[arg-type]
        lower = np.maximum((flat - atol_total) / (1.0 + eps_ref), 0.0)
        upper = (flat + atol_total) / (1.0 - eps_ref)
        tau = float(resolved.tau)  # type: ignore[arg-type]
        decided = np.asarray(stopping.tau_stop_mask(lower, upper, tau))
        hot = np.asarray(stopping.tau_hot_mask(lower, tau))
        undecided = ~decided
        if bool(undecided.any()):
            centers = np.asarray(grid.centers())[undecided]
            exact: Optional[np.ndarray] = None
            for renderer in plan.shard_renderers:
                part = exact_density(
                    renderer.points,
                    centers,
                    renderer.kernel,
                    renderer.gamma,
                    renderer.weight,
                    point_weights=renderer.point_weights,
                )
                exact = np.asarray(part) if exact is None else exact + part
            assert exact is not None
            hot[undecided] = np.asarray(stopping.tau_hot_mask(exact, tau))
            self.metrics.counter("tiles.shard_tau_exact_pixels").add(
                int(undecided.sum())
            )
        return np.asarray(grid.to_image(hot))

    def _shard_density(
        self, plan: TilePlan, index: int, budget: Optional[Budget]
    ) -> np.ndarray:
        """One shard's partial-density image (cache → bounds → render)."""
        key = plan.shard_density_keys[index]
        cached = self.cache.get_density(key)
        if cached is not None:
            return cached
        renderer = plan.shard_renderers[index]
        request = plan.shard_request
        assert request is not None
        grid = request.grid
        assert grid is not None
        values: Optional[np.ndarray] = None
        if plan.indexed:
            bounds_key = plan.shard_bounds_keys[index]
            envelope = self.cache.get_bounds(bounds_key)
            if envelope is None:
                fitted = renderer.get_method(str(request.method))
                if isinstance(fitted, IndexedMethod):
                    engine = fitted.batch_engine
                    if engine is not None:
                        envelope = engine.root_envelope(grid.centers())
                        self.cache.put_bounds(bounds_key, envelope)
            if envelope is not None:
                shortcut = self._from_envelope(request, envelope)
                if shortcut is not None:
                    self.metrics.counter("tiles.bounds_shortcircuit").add(1)
                    values = np.asarray(grid.to_image(shortcut))
        if values is None:
            values = self._render_request(
                renderer, request, plan, budget, attach_partial=False
            )
        self.cache.put_density(key, values)
        return values

    def _render_full(self, plan: TilePlan) -> np.ndarray:
        """Render through ``KDVRenderer.render`` under the deadline budget."""
        budget = (
            Budget.from_deadline_ms(plan.deadline_ms)
            if plan.deadline_ms is not None
            else None
        )
        return self._render_request(
            plan.renderer, plan.resolved, plan, budget, attach_partial=True
        )

    def _render_request(
        self,
        renderer: "KDVRenderer",
        resolved: RenderRequest,
        plan: TilePlan,
        budget: Optional[Budget],
        *,
        attach_partial: bool,
    ) -> np.ndarray:
        """One render of ``resolved`` against ``renderer`` under ``budget``.

        ``attach_partial`` controls whether a tripped deadline carries
        the anytime render's best-so-far image for the degrade ladder —
        true for the monolithic full-tile render, false for per-shard
        partial-density renders (a lone shard's partial is not a
        servable tile).
        """
        if not plan.indexed:
            # Non-indexed methods have no anytime path (and no
            # cooperative deadline); they render plain.
            return np.asarray(renderer.render(resolved))
        run = resolved.replace(options=resolved.options.replace(budget=budget))
        outcome = renderer.render(run)
        degraded = outcome.degraded  # type: ignore[union-attr]
        if degraded is not None:
            self.metrics.counter("tiles.degraded").add(1)
            if degraded.reason == STOP_TILE_FAILURES:
                raise TransientTileError(
                    f"tile {plan.tile} lost {len(degraded.tiles_failed)} "
                    "tile batch(es) after retries"
                )
            raise DeadlineExceededError(
                f"tile {plan.tile} exceeded its deadline "
                f"({plan.deadline_ms} ms): stopped on {degraded.reason!r} with "
                f"{degraded.pixels_resolved}/{degraded.pixels_total} pixels "
                "resolved; partial tiles are never cached as fresh",
                # The anytime render's best-so-far image (envelope
                # midpoints / conservative tau mask) rides on the error
                # so the degrade ladder can serve it without paying for
                # a second render.
                partial_values=(
                    np.asarray(outcome.image) if attach_partial else None  # type: ignore[union-attr]
                ),
                pixels_resolved=degraded.pixels_resolved,
                pixels_total=degraded.pixels_total,
            )
        return np.asarray(outcome.image)  # type: ignore[union-attr]

    def _encode(self, plan: TilePlan, values: np.ndarray) -> bytes:
        """Colour-map + PNG-encode a value array (deterministic bytes)."""
        if plan.op == OP_TAU:
            rgb = two_color_map(values.astype(bool))
        else:
            vmax = self._entry_vmax(plan.entry)
            rgb = get_colormap(plan.colormap).apply(
                values, vmin=0.0, vmax=vmax, log_scale=True
            )
        return png_bytes(rgb)

    def _entry_vmax(self, entry: DatasetEntry) -> float:
        """Colour normalisation ceiling for one dataset version.

        The peak of a coarse exact-density pass over the base viewport
        — one shared range per dataset version, so adjacent tiles (and
        zoom levels) colour consistently instead of each tile
        normalising to its own maximum. Cached per versioned id;
        deterministic, so every server instance agrees on tile bytes.
        """
        key = entry.versioned_id()
        with self._vmax_lock:
            cached = self._vmax.get(key)
        if cached is not None:
            return cached
        base = entry.base_grid
        coarse = base.scaled(_VMAX_GRID_WIDTH / float(base.width))
        # The entry evaluates against its finest coreset tier when one
        # exists (within delta_abs of exact — far below colour-map
        # resolution — without an O(n) scan per dataset version), and a
        # sharded entry sums its per-shard probes.
        values = np.asarray(entry.coarse_density(coarse.centers()))
        vmax = float(values.max()) if values.size else 1.0
        if vmax <= 0.0:
            vmax = 1.0
        with self._vmax_lock:
            self._vmax[key] = vmax
        return vmax

    # -- dataset lifecycle ---------------------------------------------------

    def append_points(self, dataset: str, points: Any) -> int:
        """Append to a dataset through the registry (invalidates cache)."""
        count = self.registry.append(dataset, points)
        if not self._owns_registry:
            # An externally built registry may not be wired to this
            # service's cache; invalidate explicitly (idempotent).
            self.invalidate_dataset(dataset)
        return count

    def invalidate_dataset(self, dataset_id: str) -> int:
        """Drop every fresh cache level for one dataset id.

        The stale cache is deliberately left alone: its entries are the
        degrade ladder's last-known-good fallback, and surviving the
        version bump is their purpose (they are already marked degraded
        whenever served, and TTL-bounded).
        """
        dropped = self.cache.invalidate_dataset(dataset_id)
        self.metrics.counter("tiles.invalidations").add(1)
        with self._vmax_lock:
            stale = [key for key in self._vmax if key.split("@v")[0] == dataset_id]
            for key in stale:
                del self._vmax[key]
        return dropped

    # -- introspection -------------------------------------------------------

    def readiness(self) -> Dict[str, Any]:
        """The ``/readyz`` payload: overall status + per-shard health.

        Per dataset: the shard count and each shard breaker's state, so
        an orchestrator can tell "ready, but shard 2 of `crime` is
        tripped" from "ready, everything closed". Draining is the HTTP
        layer's concern (it answers 503 before consulting this).
        """
        with self._breakers_lock:
            states = {name: breaker.state for name, breaker in self._breakers.items()}
        datasets: Dict[str, Any] = {}
        from repro.errors import DatasetNotFoundError

        for dataset_id in self.registry.ids():
            try:
                entry = self.registry.get(dataset_id)
            # lint: allow-silent-except -- a concurrent remove() pulled
            # the entry mid-walk; it has no readiness to report.
            except DatasetNotFoundError:
                continue
            shard_ids = list(getattr(entry, "shard_ids", ())) or [dataset_id]
            datasets[dataset_id] = {
                "shards": len(shard_ids),
                "breakers": {
                    shard_id: states.get(shard_id, "closed")
                    for shard_id in shard_ids
                },
            }
        return {"status": "ready", "datasets": datasets}

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: datasets, cache levels, metrics, load."""
        with self._breakers_lock:
            breakers = {
                dataset_id: breaker.as_dict()
                for dataset_id, breaker in sorted(self._breakers.items())
            }
        pools: list[Dict[str, Any]] = []
        from repro.errors import DatasetNotFoundError
        from repro.visual.executors import pool_supervision_totals

        totals = pool_supervision_totals()

        for dataset_id in self.registry.ids():
            try:
                pools.extend(self.registry.get(dataset_id).executor_health())
            # lint: allow-silent-except -- a concurrent remove() pulled
            # the entry mid-walk; its pools are being torn down anyway.
            except DatasetNotFoundError:
                pass
        return {
            "uptime_s": time.time() - self.started_at,
            "datasets": self.registry.as_dict(),
            "cache": self.cache.as_dict(),
            "metrics": self.metrics.as_dict(),
            "load": {
                "active_requests": self.active_requests,
                "queue_limit": int(self.config.queue_limit),
                "in_flight_renders": self._flight.in_flight(),
            },
            "resilience": {
                "draining": self._closing,
                "degraded_serving": bool(self.config.degraded_serving),
                "breakers": breakers,
                "pools": pools,
                # Live pools only count their own lifetime; the process
                # totals survive executor replacement after a rebuild
                # budget exhaustion.
                "pool_breaks": totals["breaks"],
                "pool_rebuilds": totals["rebuilds"],
                "stale_cache": {
                    "entries": len(self._stale),
                    "bytes": self._stale.current_bytes,
                },
            },
            "config": {
                "tile_px": int(self.config.tile_px),
                "eps": float(self.config.eps),
                "tau": None if self.config.tau is None else float(self.config.tau),
                "colormap": self.config.colormap,
                "deadline_ms": self.config.deadline_ms,
                "workers": int(self.config.workers),
                "render_workers": (
                    None
                    if self.config.render_workers is None
                    else int(self.config.render_workers)
                ),
                "executor": self.config.executor,
                "backend": self.config.backend,
                "max_zoom": int(self.config.max_zoom),
                "sharding": {
                    "shards": int(self.config.sharding.shards),
                    "min_points_per_shard": int(
                        self.config.sharding.min_points_per_shard
                    ),
                },
            },
        }

    def close(self) -> None:
        """Drain in-flight requests, then shut every pool down (idempotent).

        Graceful: the service first flips into *draining* (new slot
        acquisitions are rejected, ``/readyz`` answers 503), then waits
        up to ``config.drain_s`` for active requests and in-flight
        renders to finish before shutting down the worker pool and the
        per-method render pools. A request racing :meth:`close` either
        completes normally or is rejected up-front — it is never cut
        mid-render by the shutdown.
        """
        self._closing = True
        deadline = time.monotonic() + max(0.0, float(self.config.drain_s))
        while time.monotonic() < deadline:
            if self.active_requests == 0 and self._flight.in_flight() == 0:
                break
            time.sleep(0.01)
        self.pool.shutdown(wait=True, cancel_futures=True)
        from repro.errors import DatasetNotFoundError

        for dataset_id in self.registry.ids():
            try:
                self.registry.get(dataset_id).close()
            # lint: allow-silent-except -- a concurrent remove() already
            # closed the entry; nothing left to release.
            except DatasetNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"TileService(datasets={self.registry.ids()!r}, "
            f"active={self.active_requests})"
        )

