"""Slippy-map tile addressing over a dataset's base viewport.

The service carves each dataset's base viewport (the
:class:`~repro.visual.grid.PixelGrid` fitted at registration) into the
standard web-map pyramid: zoom level ``z`` splits the viewport into
``2^z × 2^z`` equal tiles, each rendered at ``tile_px × tile_px``
pixels. Addressing is in *data* coordinates: ``x`` counts from the low
x edge rightwards and ``y`` counts from the low y edge upwards (unlike
screen-down web-Mercator ``y``; this library's grids put row 0 at low
y, and the service keeps that convention end to end).

Tile grids are exact subdivisions — ``tile_grid(base, z, x, y)`` edges
are computed from the base extent with the same arithmetic for every
``(z, x, y)``, so adjacent tiles share edge coordinates exactly and a
stitched pyramid level has no seams.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.visual.grid import PixelGrid

__all__ = [
    "DEFAULT_TILE_PX",
    "MAX_ZOOM",
    "tile_count",
    "tile_grid",
    "validate_tile",
    "zoom_cell_size",
]

#: Default rendered tile edge, the slippy-map standard.
DEFAULT_TILE_PX = 256

#: Hard ceiling on zoom (2^24 tiles per axis is already far beyond any
#: plausible dataset extent; deeper z would overflow practical float
#: subdivision).
MAX_ZOOM = 24


def tile_count(z: int) -> int:
    """Tiles per axis at zoom ``z`` (``2^z``)."""
    z = int(z)
    if z < 0 or z > MAX_ZOOM:
        raise InvalidParameterError(f"zoom must be in [0, {MAX_ZOOM}], got {z}")
    return 1 << z


def validate_tile(z: int, x: int, y: int, *, max_zoom: int = MAX_ZOOM) -> Tuple[int, int, int]:
    """Validate and normalise a ``(z, x, y)`` tile address."""
    z, x, y = int(z), int(x), int(y)
    if z < 0 or z > min(int(max_zoom), MAX_ZOOM):
        raise InvalidParameterError(
            f"zoom must be in [0, {min(int(max_zoom), MAX_ZOOM)}], got {z}"
        )
    per_axis = tile_count(z)
    if not (0 <= x < per_axis and 0 <= y < per_axis):
        raise InvalidParameterError(
            f"tile ({x}, {y}) outside zoom-{z} range [0, {per_axis})"
        )
    return z, x, y


def zoom_cell_size(base: PixelGrid, z: int, tile_px: int = DEFAULT_TILE_PX) -> float:
    """One pixel's data-space edge length at zoom ``z`` over ``base``.

    The larger viewport span divided by ``2^z * tile_px`` — the natural
    starting cell size for the coreset pyramid
    (:func:`repro.sampling.coreset.build_pyramid`): points snapped
    within one rendered pixel of zoom ``z`` are visually
    indistinguishable at that zoom and every zoom below it.
    """
    z = int(z)
    if z < 0 or z > MAX_ZOOM:
        raise InvalidParameterError(f"zoom must be in [0, {MAX_ZOOM}], got {z}")
    tile_px = int(tile_px)
    if tile_px < 1:
        raise InvalidParameterError(f"tile_px must be >= 1, got {tile_px}")
    span = float(np.max(base.high - base.low))
    span = max(span, float(np.finfo(np.float64).tiny))
    return span / float(tile_count(z) * tile_px)


def tile_grid(
    base: PixelGrid, z: int, x: int, y: int, tile_px: int = DEFAULT_TILE_PX
) -> PixelGrid:
    """The pixel grid of tile ``(z, x, y)`` over ``base``'s viewport.

    Parameters
    ----------
    base:
        The dataset's base viewport; only its data-space extent is used
        (its pixel resolution is irrelevant to tile addressing).
    z, x, y:
        Tile address (see the module docstring for orientation).
    tile_px:
        Rendered tile edge in pixels.
    """
    z, x, y = validate_tile(z, x, y)
    tile_px = int(tile_px)
    if tile_px < 1:
        raise InvalidParameterError(f"tile_px must be >= 1, got {tile_px}")
    per_axis = tile_count(z)
    extent = base.high - base.low

    def edge(index: np.ndarray) -> np.ndarray:
        # Edges via index * extent / n (not low + index * step) so the
        # same edge value is produced whether it is tile i's high or
        # tile i+1's low — seam-free stitching. Boundary indices pin to
        # the exact base edges (low + extent need not round-trip to
        # high in floats).
        value = base.low + extent * (index.astype(np.float64) / per_axis)
        return np.where(index == per_axis, base.high, value)

    low = edge(np.array([x, y]))
    high = edge(np.array([x + 1, y + 1]))
    return PixelGrid(tile_px, tile_px, low, high)
