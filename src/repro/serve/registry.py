"""Dataset registry: load and index each served dataset exactly once.

A production tile service is dominated by repeated queries against a
small set of datasets, so the expensive per-dataset state — validated
points, the kd-tree index with its per-node moment aggregates, the
fitted method objects — must be built once at registration and shared
across every request (the KARL observation: one indexing framework
amortised across queries). :class:`DatasetRegistry` owns that state:

* :meth:`DatasetRegistry.register` validates the points, fixes the base
  viewport (tile addressing must stay stable for the dataset's
  lifetime) and eagerly fits the serving method, so no two requests can
  race to build the same index;
* every tile request renders through a shared-index clone
  (:meth:`~repro.visual.kdv.KDVRenderer.with_grid`) of the one fitted
  renderer — zero per-request index cost;
* :meth:`DatasetRegistry.append` grows a dataset in place: the index is
  refit (once, under the entry lock), the entry's **version** is
  bumped, and the registry's invalidation callback fires so the tile
  cache can drop everything computed against the old points. Version
  numbers are embedded in cache keys, making stale reuse structurally
  impossible rather than merely unlikely.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exact import exact_density
from repro.errors import DatasetNotFoundError, InvalidParameterError
from repro.sampling.coreset import Coreset, coreset_for_delta
from repro.serve.tiles import zoom_cell_size
from repro.visual.kdv import KDVRenderer

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike
    from repro.visual.grid import PixelGrid

__all__ = ["CoresetTier", "DatasetEntry", "DatasetRegistry", "ShardRouting"]

#: Default normalised coreset error budget per zoom (``delta_z``);
#: must stay well below typical request ``eps`` (0.05 by default in
#: :class:`~repro.serve.service.ServiceConfig`) so the folded
#: ``eps_effective = eps - delta_z`` stays positive.
DEFAULT_CORESET_DELTA_CAP = 0.01

#: Default pixel-tile edge assumed by the pyramid's cell sizing; matches
#: :data:`repro.serve.tiles.DEFAULT_TILE_PX`. A larger value only makes
#: the coreset finer (more conservative), never less accurate.
DEFAULT_CORESET_TILE_PX = 256


class CoresetTier:
    """One zoom level's coreset and the renderer serving it.

    The renderer shares the entry's base viewport, kernel, bandwidth
    and global weight, but evaluates over the coreset's weighted
    representatives — every density it produces is within
    ``coreset.delta_abs`` of the exact tier's, for every pixel.
    """

    __slots__ = ("zoom", "coreset", "renderer")

    def __init__(self, zoom: int, coreset: Coreset, renderer: KDVRenderer) -> None:
        self.zoom = zoom
        self.coreset = coreset
        self.renderer = renderer

    @property
    def delta_z(self) -> float:
        """Normalised error bound folded into ``eps`` (see docs/bounds.md)."""
        return self.coreset.delta_z

    def as_dict(self) -> Dict[str, Any]:
        return {
            "zoom": self.zoom,
            "m": self.coreset.m,
            "n_source": self.coreset.n_source,
            "delta_abs": float(self.coreset.delta_abs),
            "delta_z": float(self.coreset.delta_z),
            "cell_size": float(self.coreset.cell_size),
        }


@dataclass(frozen=True)
class ShardRouting:
    """How one tile zoom renders against an entry: which renderers, what fold.

    The single-entry case has one renderer (exact or the zoom's coreset
    tier); a :class:`~repro.serve.sharding.ShardedDatasetEntry` returns
    one renderer per spatial shard, in fixed shard-index order, with the
    per-shard coreset errors already combined into one ``delta_z`` (the
    summed tile folds the *combined* bound into ε once — see
    docs/serving.md). ``delta_z`` is 0.0 on the exact path.
    """

    renderers: Tuple[KDVRenderer, ...]
    tier_tag: Optional[str]
    delta_z: float

    @property
    def shards(self) -> int:
        return len(self.renderers)


def _close_renderer_methods(renderer: KDVRenderer) -> None:
    """Shut down process pools cached on a renderer's fitted methods."""
    for fitted in renderer._methods.values():
        closer = getattr(fitted, "close_executors", None)
        if closer is not None:
            closer()


class DatasetEntry:
    """One served dataset: points, fitted renderer, version.

    Not constructed directly — use :meth:`DatasetRegistry.register`.
    The entry's ``renderer`` is fitted over the dataset's base viewport;
    tile requests derive per-tile grids from it via ``with_grid`` clones
    that share the fitted method objects.
    """

    def __init__(
        self,
        dataset_id: str,
        renderer: KDVRenderer,
        *,
        gamma_given: Optional[float],
        method: str,
        coreset_zoom: Optional[int] = None,
        coreset_delta_cap: float = DEFAULT_CORESET_DELTA_CAP,
        coreset_tile_px: int = DEFAULT_CORESET_TILE_PX,
    ) -> None:
        if coreset_zoom is not None and int(coreset_zoom) < 1:
            raise InvalidParameterError(
                f"coreset_zoom must be >= 1 (or None to disable), got {coreset_zoom!r}"
            )
        if not float(coreset_delta_cap) > 0.0:
            raise InvalidParameterError(
                f"coreset_delta_cap must be > 0, got {coreset_delta_cap!r}"
            )
        self.dataset_id = dataset_id
        self.renderer = renderer
        self.method = method
        self.version = 1
        self.created_at = time.time()
        self.coreset_zoom = None if coreset_zoom is None else int(coreset_zoom)
        self.coreset_delta_cap = float(coreset_delta_cap)
        self.coreset_tile_px = int(coreset_tile_px)
        self._gamma_given = gamma_given
        self._lock = threading.RLock()
        self._coreset_tiers: Dict[int, CoresetTier] = self._build_coreset_tiers()

    def _build_coreset_tiers(self) -> Dict[int, CoresetTier]:
        """Materialise one coreset + renderer per zoom below the threshold.

        Called at registration and again after every :meth:`append`
        (the representatives and their error bounds depend on the
        points). Each tier renderer shares the base viewport and the
        exact renderer's kernel/bandwidth/weight so its densities are
        directly comparable — only the point set differs.
        """
        if self.coreset_zoom is None:
            return {}
        tiers: Dict[int, CoresetTier] = {}
        previous: Optional[CoresetTier] = None
        for zoom in range(self.coreset_zoom):
            start_cell = zoom_cell_size(
                self.renderer.grid, zoom, self.coreset_tile_px
            )
            if previous is not None and previous.coreset.cell_size <= start_cell:
                # Successive zooms halve the starting cell, so each
                # zoom's halving sequence is a suffix of the previous
                # one's. Once a coarser tier has refined (delta_cap
                # binding) to a cell at least as fine as this zoom's
                # starting cell, this zoom would converge to the
                # identical coreset — share it (and its fitted
                # renderer) instead of storing another copy.
                tiers[zoom] = CoresetTier(zoom, previous.coreset, previous.renderer)
                previous = tiers[zoom]
                continue
            coreset = coreset_for_delta(
                self.renderer.points,
                self.renderer.kernel,
                self.renderer.gamma,
                self.renderer.weight,
                cell_size=start_cell,
                delta_cap=self.coreset_delta_cap,
                point_weights=self.renderer.point_weights,
            )
            tier_renderer = KDVRenderer(
                coreset.points,
                kernel=self.renderer.kernel,
                gamma=self.renderer.gamma,
                weight=self.renderer.weight,
                grid=self.renderer.grid,
                point_weights=coreset.weights,
                **self.renderer.method_options,
            )
            tiers[zoom] = CoresetTier(zoom, coreset, tier_renderer)
            previous = tiers[zoom]
        return tiers

    def coreset_tier(self, zoom: int) -> Optional[CoresetTier]:
        """The coreset tier serving ``zoom``, or ``None`` for exact."""
        with self._lock:
            return self._coreset_tiers.get(int(zoom))

    def tile_routes(self, zoom: int) -> ShardRouting:
        """The renderers (and folded coreset error) serving ``zoom``.

        The monolithic entry routes to exactly one renderer — the
        zoom's coreset tier below the threshold, the exact renderer
        otherwise. Sharded entries override this with one renderer per
        shard.
        """
        tier = self.coreset_tier(zoom)
        if tier is None:
            return ShardRouting((self.renderer,), None, 0.0)
        return ShardRouting(
            (tier.renderer,), f"coreset-z{tier.zoom}", float(tier.delta_z)
        )

    def coarse_density(self, centers: "FloatArray") -> "FloatArray":
        """Exact density at ``centers`` — the colour-normalisation probe.

        Evaluated against the finest coreset tier when one exists (its
        density is within ``delta_abs`` of exact everywhere — far below
        colour-map resolution — and it avoids an O(n) scan per dataset
        version on planet-scale point sets), else the exact renderer.
        """
        renderer = self.renderer
        if self.coreset_zoom is not None:
            finest = self.coreset_tier(self.coreset_zoom - 1)
            if finest is not None:
                renderer = finest.renderer
        return exact_density(
            renderer.points,
            centers,
            renderer.kernel,
            renderer.gamma,
            renderer.weight,
            point_weights=renderer.point_weights,
        )

    @property
    def points(self) -> "FloatArray":
        """The validated point array currently served."""
        return self.renderer.points

    @property
    def base_grid(self) -> "PixelGrid":
        """The fixed base viewport tiles subdivide."""
        return self.renderer.grid

    def versioned_id(self) -> str:
        """``"<id>@v<version>"`` — the cache-key dataset component."""
        with self._lock:
            return f"{self.dataset_id}@v{self.version}"

    def points_digest(self) -> str:
        """SHA-1 of the current point bytes (exposed in ``/stats``)."""
        return hashlib.sha1(self.points.tobytes()).hexdigest()

    def warm(self, method: Optional[str] = None) -> None:
        """Fit ``method`` (default: the serving method) now, not per-request.

        Eager fitting under the entry lock means concurrent first
        requests never race to build the same index.
        """
        with self._lock:
            name = method if method is not None else self.method
            self.renderer.get_method(name)
            for tier in self._coreset_tiers.values():
                tier.renderer.get_method(name)

    def append(self, points: "PointLike") -> int:
        """Grow the dataset; refit; bump the version. Returns new count.

        The base viewport is deliberately **kept** — tile ``(z, x, y)``
        must keep addressing the same region of space across appends —
        so appended points may fall outside it (they still contribute
        density to every in-view pixel; kernels have unbounded support).
        The default weight (``1/n``) and Scott-rule bandwidth are
        recomputed from the grown dataset unless an explicit ``gamma``
        was registered.
        """
        extra = np.asarray(points, dtype=np.float64)
        if extra.ndim != 2 or extra.shape[1] != self.points.shape[1]:
            raise InvalidParameterError(
                f"appended points must be (m, {self.points.shape[1]}), "
                f"got shape {extra.shape}"
            )
        with self._lock:
            merged = np.vstack([self.points, extra])
            stale = self.renderer
            stale_tiers = self._coreset_tiers
            self.renderer = KDVRenderer(
                merged,
                kernel=self.renderer.kernel,
                gamma=self._gamma_given,
                grid=self.base_grid,
                **self.renderer.method_options,
            )
            self.version += 1
            # Coreset representatives (and their delta bounds) are
            # functions of the points, so the whole pyramid is rebuilt
            # against the merged dataset before any tile can route to it.
            self._coreset_tiers = self._build_coreset_tiers()
            self.warm()
            # The replaced renderer's fitted methods may hold process
            # pools + shared-memory tree segments; release them now
            # rather than waiting on garbage collection.
            _close_renderer_methods(stale)
            for tier in stale_tiers.values():
                _close_renderer_methods(tier.renderer)
            return int(merged.shape[0])

    def close(self) -> None:
        """Release per-method process pools / shared memory (idempotent)."""
        with self._lock:
            _close_renderer_methods(self.renderer)
            for tier in self._coreset_tiers.values():
                _close_renderer_methods(tier.renderer)

    def executor_health(self) -> List[Dict[str, Any]]:
        """Health snapshots of every cached process pool (for ``/stats``).

        Walks the fitted methods of the exact renderer and every coreset
        tier renderer (deduplicated — tiers share renderers when their
        coresets converge) and collects each method's
        :meth:`~repro.methods.base.IndexedMethod.executor_health`.
        """
        with self._lock:
            renderers = [self.renderer] + [
                tier.renderer for tier in self._coreset_tiers.values()
            ]
        reports: List[Dict[str, Any]] = []
        seen: set[int] = set()
        for renderer in renderers:
            if id(renderer) in seen:
                continue
            seen.add(id(renderer))
            for fitted in renderer._methods.values():
                health = getattr(fitted, "executor_health", None)
                if health is not None:
                    reports.extend(health())
        return reports

    def as_dict(self) -> Dict[str, Any]:
        """Entry snapshot for ``/stats``."""
        with self._lock:
            return {
                "id": self.dataset_id,
                "version": self.version,
                "n": int(self.points.shape[0]),
                "kernel": self.renderer.kernel.name,
                "gamma": float(self.renderer.gamma),
                "method": self.method,
                "viewport": {
                    "low": [float(v) for v in self.base_grid.low],
                    "high": [float(v) for v in self.base_grid.high],
                },
                "points_sha1": self.points_digest(),
                "coreset": {
                    "zoom_threshold": self.coreset_zoom,
                    "delta_cap": self.coreset_delta_cap,
                    "tiers": [
                        self._coreset_tiers[z].as_dict()
                        for z in sorted(self._coreset_tiers)
                    ],
                },
            }

    def __repr__(self) -> str:
        return (
            f"DatasetEntry({self.dataset_id!r}, n={self.points.shape[0]}, "
            f"v{self.version})"
        )


class DatasetRegistry:
    """Named datasets, each loaded and indexed once.

    Parameters
    ----------
    on_invalidate:
        Callback invoked with the dataset id after an append bumps its
        version — the tile service hooks its cache invalidation here.
    """

    def __init__(
        self, on_invalidate: Optional[Callable[[str], None]] = None
    ) -> None:
        self._entries: Dict[str, DatasetEntry] = {}
        self._lock = threading.Lock()
        self._on_invalidate = on_invalidate

    def register(
        self,
        dataset_id: str,
        points: "PointLike",
        *,
        kernel: Any = "gaussian",
        gamma: Optional[float] = None,
        method: str = "quad",
        grid: Optional["PixelGrid"] = None,
        coreset_zoom: Optional[int] = None,
        coreset_delta_cap: float = DEFAULT_CORESET_DELTA_CAP,
        coreset_tile_px: int = DEFAULT_CORESET_TILE_PX,
        **method_options: Any,
    ) -> DatasetEntry:
        """Validate, index and serve a dataset under ``dataset_id``.

        The renderer is built over ``grid`` (default: fitted to the
        points with a small margin) and the serving ``method`` is fitted
        eagerly. With ``coreset_zoom=k`` a per-zoom weighted-coreset
        pyramid is also materialised: tiles at zoom < k are answered
        from the zoom's coreset with the coreset error ``delta_z``
        folded into the request's ``eps`` (see docs/serving.md), while
        zoom >= k falls through to exact QUAD. Re-registering an
        existing id raises — use :meth:`append` to grow a dataset, or
        :meth:`remove` first.
        """
        dataset_id = str(dataset_id)
        if not dataset_id or "/" in dataset_id:
            raise InvalidParameterError(
                f"dataset id must be a non-empty path segment, got {dataset_id!r}"
            )
        renderer = KDVRenderer(
            points, kernel=kernel, gamma=gamma, grid=grid, **method_options
        )
        entry = DatasetEntry(
            dataset_id,
            renderer,
            gamma_given=gamma,
            method=str(method).lower(),
            coreset_zoom=coreset_zoom,
            coreset_delta_cap=coreset_delta_cap,
            coreset_tile_px=coreset_tile_px,
        )
        with self._lock:
            if dataset_id in self._entries:
                raise InvalidParameterError(
                    f"dataset {dataset_id!r} is already registered"
                )
            self._entries[dataset_id] = entry
        entry.warm()
        return entry

    def get(self, dataset_id: str) -> DatasetEntry:
        """The entry for ``dataset_id``; raises :class:`DatasetNotFoundError`."""
        with self._lock:
            entry = self._entries.get(str(dataset_id))
        if entry is None:
            with self._lock:
                known = ", ".join(sorted(self._entries)) or "none"
            raise DatasetNotFoundError(
                f"unknown dataset {dataset_id!r}; registered: {known}"
            )
        return entry

    def append(self, dataset_id: str, points: "PointLike") -> int:
        """Append points to a dataset; invalidate; return the new count."""
        entry = self.get(dataset_id)
        count = entry.append(points)
        if self._on_invalidate is not None:
            self._on_invalidate(entry.dataset_id)
        return count

    def remove(self, dataset_id: str) -> bool:
        """Drop a dataset (and invalidate); returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(str(dataset_id), None)
        if entry is not None:
            entry.close()
            if self._on_invalidate is not None:
                self._on_invalidate(entry.dataset_id)
        return entry is not None

    def ids(self) -> List[str]:
        """Registered dataset ids, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, dataset_id: object) -> bool:
        with self._lock:
            return str(dataset_id) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of every entry, keyed by id (for ``/stats``)."""
        with self._lock:
            entries = list(self._entries.values())
        return {entry.dataset_id: entry.as_dict() for entry in entries}

    def __repr__(self) -> str:
        return f"DatasetRegistry({self.ids()!r})"
