"""Dataset registry: load and index each served dataset exactly once.

A production tile service is dominated by repeated queries against a
small set of datasets, so the expensive per-dataset state — validated
points, the kd-tree index with its per-node moment aggregates, the
fitted method objects — must be built once at registration and shared
across every request (the KARL observation: one indexing framework
amortised across queries). :class:`DatasetRegistry` owns that state:

* :meth:`DatasetRegistry.register` validates the points, fixes the base
  viewport (tile addressing must stay stable for the dataset's
  lifetime) and eagerly fits the serving method, so no two requests can
  race to build the same index;
* every tile request renders through a shared-index clone
  (:meth:`~repro.visual.kdv.KDVRenderer.with_grid`) of the one fitted
  renderer — zero per-request index cost;
* :meth:`DatasetRegistry.append` grows a dataset in place: the index is
  refit (once, under the entry lock), the entry's **version** is
  bumped, and the registry's invalidation callback fires so the tile
  cache can drop everything computed against the old points. Version
  numbers are embedded in cache keys, making stale reuse structurally
  impossible rather than merely unlikely.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import DatasetNotFoundError, InvalidParameterError
from repro.visual.kdv import KDVRenderer

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike
    from repro.visual.grid import PixelGrid

__all__ = ["DatasetEntry", "DatasetRegistry"]


def _close_renderer_methods(renderer: KDVRenderer) -> None:
    """Shut down process pools cached on a renderer's fitted methods."""
    for fitted in renderer._methods.values():
        closer = getattr(fitted, "close_executors", None)
        if closer is not None:
            closer()


class DatasetEntry:
    """One served dataset: points, fitted renderer, version.

    Not constructed directly — use :meth:`DatasetRegistry.register`.
    The entry's ``renderer`` is fitted over the dataset's base viewport;
    tile requests derive per-tile grids from it via ``with_grid`` clones
    that share the fitted method objects.
    """

    def __init__(
        self,
        dataset_id: str,
        renderer: KDVRenderer,
        *,
        gamma_given: Optional[float],
        method: str,
    ) -> None:
        self.dataset_id = dataset_id
        self.renderer = renderer
        self.method = method
        self.version = 1
        self.created_at = time.time()
        self._gamma_given = gamma_given
        self._lock = threading.RLock()

    @property
    def points(self) -> "FloatArray":
        """The validated point array currently served."""
        return self.renderer.points

    @property
    def base_grid(self) -> "PixelGrid":
        """The fixed base viewport tiles subdivide."""
        return self.renderer.grid

    def versioned_id(self) -> str:
        """``"<id>@v<version>"`` — the cache-key dataset component."""
        with self._lock:
            return f"{self.dataset_id}@v{self.version}"

    def points_digest(self) -> str:
        """SHA-1 of the current point bytes (exposed in ``/stats``)."""
        return hashlib.sha1(self.points.tobytes()).hexdigest()

    def warm(self, method: Optional[str] = None) -> None:
        """Fit ``method`` (default: the serving method) now, not per-request.

        Eager fitting under the entry lock means concurrent first
        requests never race to build the same index.
        """
        with self._lock:
            self.renderer.get_method(method if method is not None else self.method)

    def append(self, points: "PointLike") -> int:
        """Grow the dataset; refit; bump the version. Returns new count.

        The base viewport is deliberately **kept** — tile ``(z, x, y)``
        must keep addressing the same region of space across appends —
        so appended points may fall outside it (they still contribute
        density to every in-view pixel; kernels have unbounded support).
        The default weight (``1/n``) and Scott-rule bandwidth are
        recomputed from the grown dataset unless an explicit ``gamma``
        was registered.
        """
        extra = np.asarray(points, dtype=np.float64)
        if extra.ndim != 2 or extra.shape[1] != self.points.shape[1]:
            raise InvalidParameterError(
                f"appended points must be (m, {self.points.shape[1]}), "
                f"got shape {extra.shape}"
            )
        with self._lock:
            merged = np.vstack([self.points, extra])
            stale = self.renderer
            self.renderer = KDVRenderer(
                merged,
                kernel=self.renderer.kernel,
                gamma=self._gamma_given,
                grid=self.base_grid,
                **self.renderer.method_options,
            )
            self.version += 1
            self.renderer.get_method(self.method)
            # The replaced renderer's fitted methods may hold process
            # pools + shared-memory tree segments; release them now
            # rather than waiting on garbage collection.
            _close_renderer_methods(stale)
            return int(merged.shape[0])

    def close(self) -> None:
        """Release per-method process pools / shared memory (idempotent)."""
        with self._lock:
            _close_renderer_methods(self.renderer)

    def as_dict(self) -> Dict[str, Any]:
        """Entry snapshot for ``/stats``."""
        with self._lock:
            return {
                "id": self.dataset_id,
                "version": self.version,
                "n": int(self.points.shape[0]),
                "kernel": self.renderer.kernel.name,
                "gamma": float(self.renderer.gamma),
                "method": self.method,
                "viewport": {
                    "low": [float(v) for v in self.base_grid.low],
                    "high": [float(v) for v in self.base_grid.high],
                },
                "points_sha1": self.points_digest(),
            }

    def __repr__(self) -> str:
        return (
            f"DatasetEntry({self.dataset_id!r}, n={self.points.shape[0]}, "
            f"v{self.version})"
        )


class DatasetRegistry:
    """Named datasets, each loaded and indexed once.

    Parameters
    ----------
    on_invalidate:
        Callback invoked with the dataset id after an append bumps its
        version — the tile service hooks its cache invalidation here.
    """

    def __init__(
        self, on_invalidate: Optional[Callable[[str], None]] = None
    ) -> None:
        self._entries: Dict[str, DatasetEntry] = {}
        self._lock = threading.Lock()
        self._on_invalidate = on_invalidate

    def register(
        self,
        dataset_id: str,
        points: "PointLike",
        *,
        kernel: Any = "gaussian",
        gamma: Optional[float] = None,
        method: str = "quad",
        grid: Optional["PixelGrid"] = None,
        **method_options: Any,
    ) -> DatasetEntry:
        """Validate, index and serve a dataset under ``dataset_id``.

        The renderer is built over ``grid`` (default: fitted to the
        points with a small margin) and the serving ``method`` is fitted
        eagerly. Re-registering an existing id raises — use
        :meth:`append` to grow a dataset, or :meth:`remove` first.
        """
        dataset_id = str(dataset_id)
        if not dataset_id or "/" in dataset_id:
            raise InvalidParameterError(
                f"dataset id must be a non-empty path segment, got {dataset_id!r}"
            )
        renderer = KDVRenderer(
            points, kernel=kernel, gamma=gamma, grid=grid, **method_options
        )
        entry = DatasetEntry(
            dataset_id, renderer, gamma_given=gamma, method=str(method).lower()
        )
        with self._lock:
            if dataset_id in self._entries:
                raise InvalidParameterError(
                    f"dataset {dataset_id!r} is already registered"
                )
            self._entries[dataset_id] = entry
        entry.warm()
        return entry

    def get(self, dataset_id: str) -> DatasetEntry:
        """The entry for ``dataset_id``; raises :class:`DatasetNotFoundError`."""
        with self._lock:
            entry = self._entries.get(str(dataset_id))
        if entry is None:
            with self._lock:
                known = ", ".join(sorted(self._entries)) or "none"
            raise DatasetNotFoundError(
                f"unknown dataset {dataset_id!r}; registered: {known}"
            )
        return entry

    def append(self, dataset_id: str, points: "PointLike") -> int:
        """Append points to a dataset; invalidate; return the new count."""
        entry = self.get(dataset_id)
        count = entry.append(points)
        if self._on_invalidate is not None:
            self._on_invalidate(entry.dataset_id)
        return count

    def remove(self, dataset_id: str) -> bool:
        """Drop a dataset (and invalidate); returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(str(dataset_id), None)
        if entry is not None:
            entry.close()
            if self._on_invalidate is not None:
                self._on_invalidate(entry.dataset_id)
        return entry is not None

    def ids(self) -> List[str]:
        """Registered dataset ids, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, dataset_id: object) -> bool:
        with self._lock:
            return str(dataset_id) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of every entry, keyed by id (for ``/stats``)."""
        with self._lock:
            entries = list(self._entries.values())
        return {entry.dataset_id: entry.as_dict() for entry in entries}

    def __repr__(self) -> str:
        return f"DatasetRegistry({self.ids()!r})"
