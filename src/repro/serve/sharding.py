"""Spatial sharding: split one served dataset into K kd-tree shards.

Horizontal scale-out for :mod:`repro.serve`. A
:class:`ShardedDatasetRegistry` splits each registered dataset into K
spatial shards by kd-tree subtree (:func:`kd_partition` — recursive
widest-dimension splits at balanced quantiles, so shards are compact
axis-aligned cells). Each shard is a full :class:`~repro.serve.registry.
DatasetEntry` — its own kd-tree index, its own per-zoom coreset tiers,
its own supervised process pools — built with the *full-dataset*
bandwidth, per-point weight and base viewport, which makes the shard
densities exact partial sums::

    F(q) = sum_s F_s(q)        (disjoint points, shared gamma/weight)

so the service can serve a tile by summing K per-shard renders. The
QUAD guarantee survives intact (docs/serving.md has the full algebra):

* **ε tiles** — every shard renders at the request's (coreset-folded)
  ε with the absolute floor split ``atol/K``; summing the per-shard
  contracts ``|F̂_s − F_s| ≤ ε·F_s + atol/K`` gives
  ``|ΣF̂_s − F| ≤ ε·F + atol`` — the exact unsharded envelope.
* **τ tiles** — shards render a reference-ε density whose summed bounds
  decide almost every pixel via the τ stopping rule; the few undecided
  pixels are finished with summed per-shard exact density, so the mask
  equals the unsharded mask bit for bit (away from exact F = τ ties).
* **coresets** — each shard's per-zoom coreset carries its own absolute
  error ``delta_abs_s``; the *sum* of those errors, normalised by the
  full dataset's density cap, is the one δ folded into ε for the whole
  tile (errors of partial sums add — no per-shard slack is wasted).

Tile→shard affinity uses rendezvous (highest-random-weight) hashing
over the tile's spatial extent (:func:`rendezvous_shard`): every tile
has a deterministic *home shard* whose circuit breaker takes the
blame/credit for the tile's renders, so a poisoned region of space
trips one shard's breaker instead of the whole dataset, and shard
health is observable per shard in ``/stats`` and ``/readyz``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.serve.registry import (
    DEFAULT_CORESET_DELTA_CAP,
    DEFAULT_CORESET_TILE_PX,
    DatasetEntry,
    DatasetRegistry,
    ShardRouting,
    _close_renderer_methods,
)
from repro.visual.kdv import KDVRenderer

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike
    from repro.visual.grid import PixelGrid

__all__ = [
    "ShardedDatasetEntry",
    "ShardedDatasetRegistry",
    "kd_partition",
    "rendezvous_shard",
    "tile_extent_key",
]

#: Reference ε for the per-shard density pass backing sharded τ tiles.
#: Not the request's accuracy knob — τ has none — just the resolution of
#: the summed bounds that pre-decide pixels before the exact fallback;
#: any value in (0, 1) is correct, this one decides almost every pixel
#: away from the τ contour while keeping the shard renders cheap.
TAU_SHARD_REF_EPS = 0.05


def kd_partition(points: "PointLike", k: int) -> List[np.ndarray]:
    """Split point indices into ``k`` compact spatial cells, kd-tree style.

    Recursively splits the widest dimension at the quantile that sends
    ``ceil(k/2)/k`` of the points left, so cells are balanced (sizes
    differ by at most the rounding of ``n/k``) and axis-aligned — the
    same locality that keeps kd-tree bounds tight keeps per-shard QUAD
    bounds tight. Deterministic: stable sorts, no randomness. Returns
    ``k`` disjoint index arrays covering ``range(n)``, in a fixed
    left-to-right tree order.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidParameterError(
            f"kd_partition expects a 2-D point array, got shape {pts.shape}"
        )
    n = int(pts.shape[0])
    k = int(k)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k!r}")
    if k > n:
        raise InvalidParameterError(f"cannot split {n} points into {k} shards")

    def split(indices: np.ndarray, parts: int) -> List[np.ndarray]:
        if parts == 1:
            return [indices]
        left_parts = (parts + 1) // 2
        subset = pts[indices]
        spans = subset.max(axis=0) - subset.min(axis=0)
        dim = int(np.argmax(spans))
        order = np.argsort(subset[:, dim], kind="stable")
        n_left = int(round(len(indices) * left_parts / parts))
        # Both sides must keep at least their shard count's worth of room.
        n_left = min(max(n_left, left_parts), len(indices) - (parts - left_parts))
        left = indices[order[:n_left]]
        right = indices[order[n_left:]]
        return split(left, left_parts) + split(right, parts - left_parts)

    return split(np.arange(n), k)


def tile_extent_key(grid: "PixelGrid") -> str:
    """Canonical string for a tile grid's spatial extent (routing key).

    Built from the exact float bounds, so the same tile of the same
    base viewport always routes identically — across requests, zoom
    revisits and server restarts.
    """
    low = ",".join(repr(float(v)) for v in grid.low)
    high = ",".join(repr(float(v)) for v in grid.high)
    return f"{low}|{high}"


def rendezvous_shard(dataset_id: str, shards: int, extent_key: str) -> int:
    """The tile's home shard by rendezvous (highest-random-weight) hashing.

    Each shard scores ``sha256(dataset|shard|extent)``; the highest
    score wins. Deterministic and minimally disruptive: changing the
    shard count remaps only the tiles whose new shard now scores
    highest, so per-shard breaker/affinity state stays warm across
    resharding.
    """
    if int(shards) <= 1:
        return 0
    best_shard = 0
    best_score = b""
    for index in range(int(shards)):
        score = hashlib.sha256(
            f"{dataset_id}|{index}|{extent_key}".encode("utf-8")
        ).digest()
        if score > best_score:
            best_score = score
            best_shard = index
    return best_shard


class ShardedDatasetEntry(DatasetEntry):
    """One served dataset split into K spatial shard entries.

    Presents the same surface as :class:`DatasetEntry` — the service
    never branches on the type — but routes tiles to K per-shard
    renderers (:meth:`tile_routes`) instead of one. The inherited
    ``renderer`` is a *probe*: it holds the validated full point set
    and defines the shared base viewport, bandwidth and weight, but is
    never fitted or rendered against (rendering it would defeat the
    sharding).

    Not constructed directly — use :meth:`ShardedDatasetRegistry.register`.
    """

    def __init__(
        self,
        dataset_id: str,
        renderer: KDVRenderer,
        *,
        shards: int,
        gamma_given: Optional[float],
        method: str,
        coreset_zoom: Optional[int] = None,
        coreset_delta_cap: float = DEFAULT_CORESET_DELTA_CAP,
        coreset_tile_px: int = DEFAULT_CORESET_TILE_PX,
    ) -> None:
        if int(shards) < 2:
            raise InvalidParameterError(
                f"ShardedDatasetEntry needs >= 2 shards, got {shards!r} "
                "(use DatasetEntry for the monolithic case)"
            )
        if coreset_zoom is not None and int(coreset_zoom) < 1:
            raise InvalidParameterError(
                f"coreset_zoom must be >= 1 (or None to disable), got {coreset_zoom!r}"
            )
        # The base class builds coreset tiers for its renderer; the
        # probe must not get any (each *shard* builds its own), so the
        # threshold is withheld from super() and restored after.
        super().__init__(
            dataset_id,
            renderer,
            gamma_given=gamma_given,
            method=method,
            coreset_zoom=None,
            coreset_delta_cap=coreset_delta_cap,
            coreset_tile_px=coreset_tile_px,
        )
        self.coreset_zoom = None if coreset_zoom is None else int(coreset_zoom)
        self._shards: List[DatasetEntry] = self._build_shards(int(shards))

    def _build_shards(self, shards: int) -> List[DatasetEntry]:
        """Partition the probe's points and build one entry per shard.

        Every shard renderer is constructed with the probe's (i.e. the
        full dataset's) bandwidth, scalar weight and base grid, so the
        shard densities are exact partial sums of the full density and
        every shard's tiles subdivide the same viewport.
        """
        probe = self.renderer
        parts = kd_partition(probe.points, shards)
        entries: List[DatasetEntry] = []
        for index, indices in enumerate(parts):
            shard_renderer = KDVRenderer(
                probe.points[indices],
                kernel=probe.kernel,
                gamma=probe.gamma,
                weight=probe.weight,
                grid=probe.grid,
                **probe.method_options,
            )
            entries.append(
                DatasetEntry(
                    f"{self.dataset_id}#s{index}",
                    shard_renderer,
                    gamma_given=float(probe.gamma),
                    method=self.method,
                    coreset_zoom=self.coreset_zoom,
                    coreset_delta_cap=self.coreset_delta_cap,
                    coreset_tile_px=self.coreset_tile_px,
                )
            )
        return entries

    @property
    def shard_count(self) -> int:
        with self._lock:
            return len(self._shards)

    @property
    def shard_ids(self) -> List[str]:
        """Per-shard breaker/affinity identifiers, in shard order."""
        with self._lock:
            return [shard.dataset_id for shard in self._shards]

    def tile_routes(self, zoom: int) -> ShardRouting:
        """One renderer per shard for ``zoom``, with the combined δ fold.

        Below the coreset threshold every shard serves its own tier;
        the per-shard absolute errors *sum* (the tile sums the shard
        densities), so the folded ``delta_z`` is
        ``Σ_s delta_abs_s / (weight · n_total)`` — the summed error
        normalised by the full dataset's density cap.
        """
        with self._lock:
            shards = list(self._shards)
        tiers = [shard.coreset_tier(zoom) for shard in shards]
        if any(tier is None for tier in tiers):
            return ShardRouting(
                tuple(shard.renderer for shard in shards), None, 0.0
            )
        delta_abs = sum(float(tier.coreset.delta_abs) for tier in tiers)  # type: ignore[union-attr]
        density_cap = float(self.renderer.weight) * float(self.points.shape[0])
        return ShardRouting(
            tuple(tier.renderer for tier in tiers),  # type: ignore[union-attr]
            f"coreset-z{int(zoom)}",
            delta_abs / density_cap,
        )

    def coarse_density(self, centers: "FloatArray") -> "FloatArray":
        """Summed per-shard probe density (the colour-normalisation pass)."""
        with self._lock:
            shards = list(self._shards)
        total: Optional[np.ndarray] = None
        for shard in shards:
            values = np.asarray(shard.coarse_density(centers))
            total = values if total is None else total + values
        assert total is not None
        return total

    def warm(self, method: Optional[str] = None) -> None:
        """Fit every shard's serving method now (the probe stays unfitted)."""
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            shard.warm(method)

    def append(self, points: "PointLike") -> int:
        """Grow the dataset; re-partition; rebuild every shard; bump version.

        Appends re-partition globally (a point appended near one shard's
        boundary may belong in its neighbour), so the whole shard set is
        rebuilt against the merged points — same shard count, same base
        viewport, recomputed bandwidth/weight unless ``gamma`` was given
        at registration — and the stale shards' pools are released.
        """
        extra = np.asarray(points, dtype=np.float64)
        if extra.ndim != 2 or extra.shape[1] != self.points.shape[1]:
            raise InvalidParameterError(
                f"appended points must be (m, {self.points.shape[1]}), "
                f"got shape {extra.shape}"
            )
        with self._lock:
            merged = np.vstack([self.points, extra])
            stale_probe = self.renderer
            stale_shards = self._shards
            self.renderer = KDVRenderer(
                merged,
                kernel=self.renderer.kernel,
                gamma=self._gamma_given,
                grid=self.base_grid,
                **self.renderer.method_options,
            )
            self.version += 1
            self._shards = self._build_shards(len(stale_shards))
            self.warm()
            _close_renderer_methods(stale_probe)
            for shard in stale_shards:
                shard.close()
            return int(merged.shape[0])

    def close(self) -> None:
        """Release every shard's pools / shared memory (idempotent)."""
        with self._lock:
            _close_renderer_methods(self.renderer)
            for shard in self._shards:
                shard.close()

    def executor_health(self) -> List[Dict[str, Any]]:
        """Pool health across every shard (for ``/stats``)."""
        with self._lock:
            shards = list(self._shards)
        reports: List[Dict[str, Any]] = []
        for shard in shards:
            reports.extend(shard.executor_health())
        return reports

    def as_dict(self) -> Dict[str, Any]:
        """Entry snapshot with a per-shard section (for ``/stats``)."""
        with self._lock:
            shards = list(self._shards)
            snapshot = {
                "id": self.dataset_id,
                "version": self.version,
                "n": int(self.points.shape[0]),
                "kernel": self.renderer.kernel.name,
                "gamma": float(self.renderer.gamma),
                "method": self.method,
                "viewport": {
                    "low": [float(v) for v in self.base_grid.low],
                    "high": [float(v) for v in self.base_grid.high],
                },
                "points_sha1": self.points_digest(),
                "coreset": {
                    "zoom_threshold": self.coreset_zoom,
                    "delta_cap": self.coreset_delta_cap,
                },
            }
        per_shard = []
        for shard in shards:
            shard_snapshot = shard.as_dict()
            per_shard.append(
                {
                    "id": shard_snapshot["id"],
                    "n": shard_snapshot["n"],
                    "points_sha1": shard_snapshot["points_sha1"],
                    "coreset": shard_snapshot["coreset"],
                }
            )
        snapshot["sharding"] = {
            "shards": len(shards),
            "partition": "kdtree",
            "per_shard": per_shard,
        }
        return snapshot

    def __repr__(self) -> str:
        return (
            f"ShardedDatasetEntry({self.dataset_id!r}, "
            f"n={self.points.shape[0]}, shards={self.shard_count}, "
            f"v{self.version})"
        )


class ShardedDatasetRegistry(DatasetRegistry):
    """A :class:`DatasetRegistry` that spatially shards what it registers.

    Parameters
    ----------
    on_invalidate:
        As on :class:`DatasetRegistry`.
    default_shards:
        Shard count used when :meth:`register` is not given one.
    min_points_per_shard:
        Effective shard counts are clamped so no shard starts below
        this many points — a 100-point toy dataset registered with
        ``shards=16`` serves unsharded rather than as 16 degenerate
        slivers.
    """

    def __init__(
        self,
        on_invalidate: Optional[Callable[[str], None]] = None,
        *,
        default_shards: int = 1,
        min_points_per_shard: int = 64,
    ) -> None:
        super().__init__(on_invalidate)
        if int(default_shards) < 1:
            raise InvalidParameterError(
                f"default_shards must be >= 1, got {default_shards!r}"
            )
        if int(min_points_per_shard) < 1:
            raise InvalidParameterError(
                f"min_points_per_shard must be >= 1, got {min_points_per_shard!r}"
            )
        self.default_shards = int(default_shards)
        self.min_points_per_shard = int(min_points_per_shard)

    def effective_shards(self, n_points: int, shards: Optional[int]) -> int:
        """The shard count actually used for an ``n_points`` dataset."""
        requested = self.default_shards if shards is None else int(shards)
        if requested < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {shards!r}")
        return max(1, min(requested, int(n_points) // self.min_points_per_shard))

    def register(
        self,
        dataset_id: str,
        points: "PointLike",
        *,
        kernel: Any = "gaussian",
        gamma: Optional[float] = None,
        method: str = "quad",
        grid: Optional["PixelGrid"] = None,
        coreset_zoom: Optional[int] = None,
        coreset_delta_cap: float = DEFAULT_CORESET_DELTA_CAP,
        coreset_tile_px: int = DEFAULT_CORESET_TILE_PX,
        shards: Optional[int] = None,
        **method_options: Any,
    ) -> DatasetEntry:
        """Register a dataset split into ``shards`` spatial shards.

        ``shards=None`` uses the registry default; an effective count of
        1 (small dataset, or ``shards=1``) registers a plain monolithic
        entry — byte-identical serving and cache keys to an unsharded
        registry. See :meth:`DatasetRegistry.register` for the shared
        parameters.
        """
        arr = np.asarray(points, dtype=np.float64)
        n_points = int(arr.shape[0]) if arr.ndim == 2 else 0
        effective = self.effective_shards(n_points, shards)
        if effective <= 1:
            return super().register(
                dataset_id,
                points,
                kernel=kernel,
                gamma=gamma,
                method=method,
                grid=grid,
                coreset_zoom=coreset_zoom,
                coreset_delta_cap=coreset_delta_cap,
                coreset_tile_px=coreset_tile_px,
                **method_options,
            )
        dataset_id = str(dataset_id)
        if not dataset_id or "/" in dataset_id:
            raise InvalidParameterError(
                f"dataset id must be a non-empty path segment, got {dataset_id!r}"
            )
        renderer = KDVRenderer(
            points, kernel=kernel, gamma=gamma, grid=grid, **method_options
        )
        entry = ShardedDatasetEntry(
            dataset_id,
            renderer,
            shards=effective,
            gamma_given=gamma,
            method=str(method).lower(),
            coreset_zoom=coreset_zoom,
            coreset_delta_cap=coreset_delta_cap,
            coreset_tile_px=coreset_tile_px,
        )
        with self._lock:
            if dataset_id in self._entries:
                raise InvalidParameterError(
                    f"dataset {dataset_id!r} is already registered"
                )
            self._entries[dataset_id] = entry
        entry.warm()
        return entry
