"""Async HTTP front end for the tile service — stdlib asyncio only.

A deliberately small HTTP/1.1 GET server (:func:`asyncio.start_server`
plus hand-rolled request parsing; no framework, no new dependencies)
exposing:

* ``GET /tile/{dataset}/{z}/{x}/{y}.png`` — one slippy-map tile.
  Query parameters: ``eps`` | ``tau`` (operation + parameter),
  ``method``, ``colormap``, ``deadline_ms``. Responses carry an
  ``X-Cache: hit|miss`` header and, for misses, render on the service's
  worker pool; the L1 (PNG) lookup runs on the event loop itself so
  warm tiles never queue behind cold renders.
* ``GET /stats`` — JSON snapshot: datasets, cache levels, obs metrics,
  load, resilience state, config.
* ``GET /healthz`` — liveness probe (200 while the process runs).
* ``GET /readyz`` — readiness probe: 200 while serving, 503 once the
  service starts draining for shutdown (load balancers stop routing
  here while in-flight requests finish).

Error payloads are uniform JSON: ``{"status": N, "code": "...",
"message": "..."}`` (plus a legacy ``"error"`` alias of ``message``).
``code`` is a stable machine-readable identifier — clients switch on
it, never on message text. Mapping: unknown dataset → 404
``dataset_not_found``, invalid parameters → 400 ``invalid_parameter``,
full render queue → 503 ``overloaded``, open circuit breaker → 503
``circuit_open``, broken worker pool → 503 ``worker_pool_broken``
(every 503 **and** 504 carries ``Retry-After``), tripped per-request
deadline → 504 ``deadline_exceeded``, unrecovered render failure → 500
``render_failed``. 5xx messages are generic — internal exception text
never leaks to clients.

Under the service's degrade-don't-fail policy a request that would
have failed may instead get a **degraded 200**: the last known-good
bytes (stale) or the anytime render's partial envelope. Degraded
responses always carry ``X-Repro-Degraded: <mode>;<reason>``, a
standard ``Warning`` header, and ``Cache-Control: no-store`` so
intermediaries never treat a stop-gap tile as fresh.

Connections are close-per-request (``Connection: close``) — tile
clients open cheap short-lived connections, and it keeps the parser
honest and tiny.
"""

from __future__ import annotations

import asyncio
import functools
import json
import re
import urllib.parse
from typing import Any, Dict, Optional

from repro.errors import (
    CircuitOpenError,
    DatasetNotFoundError,
    DeadlineExceededError,
    InvalidParameterError,
    ReproError,
    ServiceOverloadedError,
    UnknownNameError,
    WorkerPoolBrokenError,
)
from repro.serve.service import TileService

__all__ = ["TileServer", "run_server"]

#: ``/tile/{dataset}/{z}/{x}/{y}.png``
_TILE_PATH = re.compile(
    r"^/tile/(?P<dataset>[^/]+)/(?P<z>-?\d+)/(?P<x>-?\d+)/(?P<y>-?\d+)\.png$"
)

_MAX_REQUEST_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if extra_headers:
        headers.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


def _json_response(
    status: int, payload: Dict[str, Any], extra_headers: Optional[Dict[str, str]] = None
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _response(status, body, "application/json", extra_headers)


def _error_response(
    status: int,
    code: str,
    message: str,
    retry_after_s: Optional[int] = None,
    **extra: str,
) -> bytes:
    """Uniform error JSON: stable ``code``, human ``message``.

    Every 503 and 504 carries ``Retry-After`` (callers pass
    ``retry_after_s``; the default backstop adds 1s if they forget) so
    well-behaved clients back off instead of hammering an overloaded or
    recovering service. ``error`` duplicates ``message`` for clients of
    the earlier payload shape.
    """
    headers = dict(extra)
    if retry_after_s is None and status in (503, 504):
        retry_after_s = 1
    if retry_after_s is not None:
        headers["Retry-After"] = str(int(retry_after_s))
    return _json_response(
        status,
        {"status": status, "code": code, "message": message, "error": message},
        headers or None,
    )


def _parse_float(params: Dict[str, str], name: str) -> Optional[float]:
    raw = params.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise InvalidParameterError(f"query parameter {name}={raw!r} is not a number")


class TileServer:
    """Asyncio TCP server adapting HTTP GETs onto a :class:`TileService`.

    Parameters
    ----------
    service:
        The (already populated) tile service.
    host / port:
        Bind address; ``port=0`` picks a free port, readable from
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self, service: TileService, host: str = "127.0.0.1", port: int = 8699
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "TileServer":
        """Bind and start accepting connections; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (call :meth:`start` first)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = await self._handle_request(reader)
        except Exception:  # last-ditch guard: never kill the acceptor loop
            payload = _error_response(500, "internal", "internal error")
        try:
            writer.write(payload)
            await writer.drain()
        # lint: allow-silent-except -- client went away mid-response;
        # nothing to salvage and nothing to tell it
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            # lint: allow-silent-except -- already closing; a reset
            # during teardown is the expected failure mode
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader) -> bytes:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            return _error_response(400, "malformed_request", "malformed request")
        except asyncio.LimitOverrunError:
            return _error_response(400, "request_too_large", "request too large")
        if len(head) > _MAX_REQUEST_BYTES:
            return _error_response(400, "request_too_large", "request too large")
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3:
            return _error_response(
                400, "malformed_request", "malformed request line"
            )
        verb, target, _version = parts
        if verb != "GET":
            return _error_response(
                405, "method_not_allowed", f"method {verb} not allowed"
            )
        parsed = urllib.parse.urlsplit(target)
        path = urllib.parse.unquote(parsed.path)
        params = dict(urllib.parse.parse_qsl(parsed.query))
        return await self._route(path, params)

    async def _route(self, path: str, params: Dict[str, str]) -> bytes:
        if path == "/healthz":
            return _json_response(200, {"status": "ok"})
        if path == "/readyz":
            if self.service.draining:
                return _error_response(
                    503, "draining", "service is draining for shutdown"
                )
            return _json_response(200, self.service.readiness())
        if path == "/stats":
            return _json_response(200, self.service.stats())
        match = _TILE_PATH.match(path)
        if match is not None:
            return await self._tile(match, params)
        return _error_response(404, "no_route", f"no route for {path!r}")

    async def _tile(self, match: "re.Match[str]", params: Dict[str, str]) -> bytes:
        service = self.service
        try:
            options = {
                "eps": _parse_float(params, "eps"),
                "tau": _parse_float(params, "tau"),
                "deadline_ms": _parse_float(params, "deadline_ms"),
                "method": params.get("method"),
                "colormap": params.get("colormap"),
            }
            plan = service.plan_tile(
                match.group("dataset"),
                int(match.group("z")),
                int(match.group("x")),
                int(match.group("y")),
                **options,
            )
        except DatasetNotFoundError as error:
            return _error_response(
                404,
                "dataset_not_found",
                str(error.args[0] if error.args else error),
            )
        except (InvalidParameterError, UnknownNameError, ValueError) as error:
            return _error_response(
                400,
                "invalid_parameter",
                str(error.args[0] if error.args else error),
            )

        home_shard = plan.home_shard if plan.shards > 1 else None
        service.metrics.counter("tiles.requests").add(1)
        data = service.cached_png(plan)
        if data is not None:
            service.metrics.counter("tiles.l1_hits").add(1)
            return self._png_response(
                data, plan.png_key[2], "hit", shard=home_shard
            )

        if not service.try_acquire_slot():
            # Degrade-don't-fail: a full queue (or a draining service)
            # serves the last known-good bytes when it has them — the
            # stale lookup is a dictionary read, safe on the event loop.
            stale = service.stale_png(plan)
            if stale is not None:
                service.metrics.counter("tiles.stale_served").add(1)
                service.metrics.counter("tiles.degraded_served").add(1)
                return self._png_response(
                    stale, plan.png_key[2], "stale",
                    degraded=("stale", "overloaded"),
                    shard=home_shard,
                )
            if service.draining:
                return _error_response(
                    503, "draining", "service is draining for shutdown"
                )
            return _error_response(503, "overloaded", "render queue full")
        loop = asyncio.get_running_loop()
        try:
            data, info = await loop.run_in_executor(
                service.pool, functools.partial(service.serve_tile, plan)
            )
        except DeadlineExceededError:
            return _error_response(
                504,
                "deadline_exceeded",
                "tile render exceeded its deadline; retry later",
            )
        except CircuitOpenError as error:
            return _error_response(
                503,
                "circuit_open",
                str(error.args[0] if error.args else error),
            )
        except WorkerPoolBrokenError:
            return _error_response(
                503,
                "worker_pool_broken",
                "render worker pool is rebuilding; retry shortly",
            )
        except ServiceOverloadedError as error:
            return _error_response(
                503, "overloaded", str(error.args[0] if error.args else error)
            )
        except (InvalidParameterError, UnknownNameError) as error:
            return _error_response(
                400,
                "invalid_parameter",
                str(error.args[0] if error.args else error),
            )
        except ReproError:
            return _error_response(
                500, "render_failed", "tile render failed; see server logs"
            )
        except Exception:
            return _error_response(500, "internal", "internal error")
        finally:
            service.release_slot()
        degraded = None
        if info.get("degraded"):
            degraded = (str(info["degraded"]), str(info.get("degrade_reason", "")))
        return self._png_response(
            data, plan.png_key[2], "miss", degraded=degraded, shard=home_shard
        )

    def _png_response(
        self,
        data: bytes,
        fingerprint: str,
        disposition: str,
        degraded: Optional[tuple] = None,
        shard: Optional[int] = None,
    ) -> bytes:
        headers = {
            "X-Cache": disposition,
            "X-Fingerprint": fingerprint,
            "Cache-Control": "public, max-age=60",
        }
        if shard is not None:
            # The tile's rendezvous home shard — lets clients and ops
            # correlate latency/degradation with a specific shard.
            headers["X-Shard"] = str(shard)
        if degraded is not None:
            mode, reason = degraded
            headers["X-Repro-Degraded"] = f"{mode};{reason}" if reason else mode
            headers["Warning"] = (
                '110 - "response is stale"'
                if mode == "stale"
                else '214 - "partial render"'
            )
            # A stop-gap tile must never be cached as fresh — not by
            # this server (serve_tile already guarantees that) and not
            # by any intermediary either.
            headers["Cache-Control"] = "no-store"
        return _response(200, data, "image/png", headers)


def run_server(
    service: TileService, host: str = "127.0.0.1", port: int = 8699
) -> None:
    """Blocking entrypoint: serve until interrupted (the CLI uses this)."""

    async def _main() -> None:
        server = TileServer(service, host, port)
        await server.start()
        print(f"repro serve: listening on {server.url}")
        print(f"  datasets: {', '.join(service.registry.ids()) or '(none)'}")
        print(f"  try: {server.url}/tile/<dataset>/0/0/0.png  |  {server.url}/stats")
        try:
            await server.serve_forever()
        # lint: allow-silent-except -- cancellation IS the shutdown
        # signal here; cleanup happens in finally
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        service.close()
