"""Service configuration: nested knob groups with a flat-kwarg shim.

:class:`ServiceConfig` began life as one flat frozen dataclass; by PR 9
it had accumulated 20 knobs spanning four unrelated concerns. This
module restructures it into four frozen groups —

* :class:`RenderConfig` — what a tile render looks like and how it
  executes (tile size, default ε/τ, colormap, deadline, worker pools,
  executor/backend selection, zoom ceiling);
* :class:`CacheConfig` — byte budgets and TTL of the three-level
  :class:`~repro.cache.tiles.TileCache`;
* :class:`ResilienceConfig` — the degrade-don't-fail surface
  (backpressure queue, stale cache, circuit breakers, drain);
* :class:`ShardingConfig` — horizontal scale-out: how many spatial
  shards each registered dataset is split into.

Back-compat contract: ``ServiceConfig(tile_px=32, eps=0.1, ...)`` with
the historical flat keywords still works — the kwargs are routed into
their groups and a single :class:`DeprecationWarning` is emitted per
process (warn *once*: config objects are built in test loops and
sweeps, and a warning per construction would drown real ones). Every
flat name also remains readable (``config.eps``, ``config.queue_limit``
...) as a silent property alias, because read access is not the
deprecated part — flat *construction* is.

``to_dict()`` / ``from_dict()`` round-trip the nested shape, and
``from_env()`` builds a config from ``REPRO_SERVE_<GROUP>_<FIELD>``
environment variables (e.g. ``REPRO_SERVE_RENDER_EPS=0.1``,
``REPRO_SERVE_SHARDING_SHARDS=4``).
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.serve.tiles import DEFAULT_TILE_PX

__all__ = [
    "CacheConfig",
    "RenderConfig",
    "ResilienceConfig",
    "ServiceConfig",
    "ShardingConfig",
]


@dataclass(frozen=True)
class RenderConfig:
    """What a served tile render looks like and how it executes.

    ``workers`` sizes the *request* pool (threads running plan/cache/
    encode); ``render_workers`` + ``executor`` + ``backend`` shape each
    render itself: ``render_workers=N`` with ``executor="process"``
    drains every tile render through the fitted method's shared-memory
    process pool (true parallelism past the GIL), and ``backend``
    selects the compute backend (``None`` defers to ``REPRO_BACKEND``).
    Cache keys are unaffected — every executor/backend combination
    produces bit-identical tile bytes.
    """

    tile_px: int = DEFAULT_TILE_PX
    eps: float = 0.05
    tau: Optional[float] = None
    colormap: str = "density"
    deadline_ms: Optional[float] = 10_000.0
    workers: int = 4
    render_workers: Optional[int] = None
    executor: Optional[str] = None
    backend: Optional[str] = None
    max_zoom: int = 18

    def __post_init__(self) -> None:
        if int(self.tile_px) < 1:
            raise InvalidParameterError(f"tile_px must be >= 1, got {self.tile_px!r}")
        if int(self.workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {self.workers!r}")
        if self.render_workers is not None and int(self.render_workers) < 1:
            raise InvalidParameterError(
                f"render_workers must be >= 1, got {self.render_workers!r}"
            )
        if self.executor not in (None, "thread", "process"):
            raise InvalidParameterError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if int(self.max_zoom) < 0:
            raise InvalidParameterError(
                f"max_zoom must be >= 0, got {self.max_zoom!r}"
            )


@dataclass(frozen=True)
class CacheConfig:
    """Byte budgets and TTL of the three-level tile cache."""

    png_bytes: int = 64 * 1024 * 1024
    aux_bytes: int = 64 * 1024 * 1024
    ttl_s: Optional[float] = None

    def __post_init__(self) -> None:
        if int(self.png_bytes) < 1:
            raise InvalidParameterError(
                f"png_bytes must be >= 1, got {self.png_bytes!r}"
            )
        if int(self.aux_bytes) < 1:
            raise InvalidParameterError(
                f"aux_bytes must be >= 1, got {self.aux_bytes!r}"
            )
        if self.ttl_s is not None and not float(self.ttl_s) > 0.0:
            raise InvalidParameterError(
                f"ttl_s must be > 0 (or None), got {self.ttl_s!r}"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """The degrade-don't-fail surface.

    ``degraded_serving`` turns the whole overload policy on/off (off
    restores strict raise semantics everywhere); ``stale_bytes`` /
    ``stale_ttl_s`` bound the last-known-good tile store;
    ``breaker_threshold`` / ``breaker_reset_s`` parameterise the
    per-shard circuit breakers; ``drain_s`` bounds how long
    :meth:`~repro.serve.service.TileService.close` waits for in-flight
    requests before shutting the pools down.
    """

    queue_limit: int = 32
    degraded_serving: bool = True
    stale_bytes: int = 16 * 1024 * 1024
    stale_ttl_s: Optional[float] = 300.0
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    drain_s: float = 5.0

    def __post_init__(self) -> None:
        if int(self.queue_limit) < 1:
            raise InvalidParameterError(
                f"queue_limit must be >= 1, got {self.queue_limit!r}"
            )
        if int(self.stale_bytes) < 1:
            raise InvalidParameterError(
                f"stale_cache_bytes must be >= 1, got {self.stale_bytes!r}"
            )
        if self.stale_ttl_s is not None and not float(self.stale_ttl_s) > 0.0:
            raise InvalidParameterError(
                f"stale_ttl_s must be > 0 (or None), got {self.stale_ttl_s!r}"
            )
        if int(self.breaker_threshold) < 1:
            raise InvalidParameterError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold!r}"
            )
        if not float(self.breaker_reset_s) >= 0.0:
            raise InvalidParameterError(
                f"breaker_reset_s must be >= 0, got {self.breaker_reset_s!r}"
            )
        if not float(self.drain_s) >= 0.0:
            raise InvalidParameterError(
                f"drain_s must be >= 0, got {self.drain_s!r}"
            )


@dataclass(frozen=True)
class ShardingConfig:
    """Horizontal scale-out: spatial sharding of registered datasets.

    ``shards=K`` splits each dataset registered through the service into
    K spatial shards by kd-tree subtree, each with its own index,
    coreset tiers and render pools; served tiles sum the per-shard
    partial densities with the per-shard coreset error folded into ε so
    the QUAD guarantee is preserved exactly (see docs/serving.md).
    ``min_points_per_shard`` caps the effective shard count on small
    datasets so no shard ends up empty or degenerate.
    """

    shards: int = 1
    min_points_per_shard: int = 64

    def __post_init__(self) -> None:
        if int(self.shards) < 1:
            raise InvalidParameterError(
                f"shards must be >= 1, got {self.shards!r}"
            )
        if int(self.min_points_per_shard) < 1:
            raise InvalidParameterError(
                f"min_points_per_shard must be >= 1, got {self.min_points_per_shard!r}"
            )


#: Flat legacy keyword -> (group attribute, field name on the group).
_FLAT_FIELD_MAP: Dict[str, Tuple[str, str]] = {
    "tile_px": ("render", "tile_px"),
    "eps": ("render", "eps"),
    "tau": ("render", "tau"),
    "colormap": ("render", "colormap"),
    "deadline_ms": ("render", "deadline_ms"),
    "workers": ("render", "workers"),
    "render_workers": ("render", "render_workers"),
    "executor": ("render", "executor"),
    "backend": ("render", "backend"),
    "max_zoom": ("render", "max_zoom"),
    "png_cache_bytes": ("cache", "png_bytes"),
    "aux_cache_bytes": ("cache", "aux_bytes"),
    "cache_ttl_s": ("cache", "ttl_s"),
    "queue_limit": ("resilience", "queue_limit"),
    "degraded_serving": ("resilience", "degraded_serving"),
    "stale_cache_bytes": ("resilience", "stale_bytes"),
    "stale_ttl_s": ("resilience", "stale_ttl_s"),
    "breaker_threshold": ("resilience", "breaker_threshold"),
    "breaker_reset_s": ("resilience", "breaker_reset_s"),
    "drain_s": ("resilience", "drain_s"),
    "shards": ("sharding", "shards"),
}

_GROUP_TYPES: Dict[str, type] = {
    "render": RenderConfig,
    "cache": CacheConfig,
    "resilience": ResilienceConfig,
    "sharding": ShardingConfig,
}

#: One-shot latch for the flat-kwarg deprecation warning (config objects
#: are built in loops; one warning per process is signal, N is noise).
_flat_kwargs_warned = False


def _reset_flat_kwargs_warning() -> None:
    """Re-arm the one-shot flat-kwarg warning (test hook)."""
    global _flat_kwargs_warned
    _flat_kwargs_warned = False


def _warn_flat_kwargs(names: Tuple[str, ...]) -> None:
    global _flat_kwargs_warned
    if _flat_kwargs_warned:
        return
    _flat_kwargs_warned = True
    warnings.warn(
        f"ServiceConfig({', '.join(names)}=...): flat keywords are deprecated "
        "and will be removed in repro 2.0; pass nested groups instead, e.g. "
        "ServiceConfig(render=RenderConfig(...), resilience=ResilienceConfig(...)) "
        "(see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class ServiceConfig:
    """Tunables of a :class:`~repro.serve.service.TileService`.

    Canonical construction is by nested group::

        ServiceConfig(
            render=RenderConfig(tile_px=256, eps=0.05),
            cache=CacheConfig(png_bytes=64 << 20),
            resilience=ResilienceConfig(queue_limit=32),
            sharding=ShardingConfig(shards=4),
        )

    The historical flat keywords (``tile_px=...``, ``eps=...``,
    ``queue_limit=...``, ...) are accepted as a deprecation shim: each is
    routed into its group and a single :class:`DeprecationWarning` is
    emitted per process. Mixing a group object with a flat keyword that
    targets the same group is rejected — there would be no well-defined
    winner. All flat names remain readable as properties.
    """

    __slots__ = ("render", "cache", "resilience", "sharding", "_frozen")

    def __init__(
        self,
        render: Optional[RenderConfig] = None,
        cache: Optional[CacheConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        sharding: Optional[ShardingConfig] = None,
        **flat: Any,
    ) -> None:
        unknown = sorted(set(flat) - set(_FLAT_FIELD_MAP))
        if unknown:
            raise InvalidParameterError(
                f"unknown ServiceConfig keyword(s): {', '.join(unknown)}"
            )
        groups: Dict[str, Any] = {
            "render": render,
            "cache": cache,
            "resilience": resilience,
            "sharding": sharding,
        }
        overrides: Dict[str, Dict[str, Any]] = {name: {} for name in _GROUP_TYPES}
        for key in sorted(flat):
            group_name, field_name = _FLAT_FIELD_MAP[key]
            if groups[group_name] is not None:
                raise InvalidParameterError(
                    f"ServiceConfig: flat keyword {key!r} conflicts with the "
                    f"{group_name}= group object; set {field_name!r} on the "
                    "group instead"
                )
            overrides[group_name][field_name] = flat[key]
        if flat:
            _warn_flat_kwargs(tuple(sorted(flat)))
        for name, group_type in _GROUP_TYPES.items():
            if groups[name] is None:
                groups[name] = group_type(**overrides[name])
            elif not isinstance(groups[name], group_type):
                raise InvalidParameterError(
                    f"ServiceConfig {name}= expects a {group_type.__name__}, "
                    f"got {type(groups[name]).__name__}"
                )
        object.__setattr__(self, "render", groups["render"])
        object.__setattr__(self, "cache", groups["cache"])
        object.__setattr__(self, "resilience", groups["resilience"])
        object.__setattr__(self, "sharding", groups["sharding"])
        object.__setattr__(self, "_frozen", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(f"ServiceConfig is immutable; cannot set {name!r}")
        object.__setattr__(self, name, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceConfig):
            return NotImplemented
        return (
            self.render == other.render
            and self.cache == other.cache
            and self.resilience == other.resilience
            and self.sharding == other.sharding
        )

    def __hash__(self) -> int:
        return hash((self.render, self.cache, self.resilience, self.sharding))

    def __repr__(self) -> str:
        return (
            f"ServiceConfig(render={self.render!r}, cache={self.cache!r}, "
            f"resilience={self.resilience!r}, sharding={self.sharding!r})"
        )

    def replace(self, **changes: Any) -> "ServiceConfig":
        """A copy with whole groups replaced (``render=``, ``cache=``, ...)."""
        bad = sorted(set(changes) - set(_GROUP_TYPES))
        if bad:
            raise InvalidParameterError(
                f"ServiceConfig.replace takes group names only, got {', '.join(bad)}"
            )
        groups = {name: getattr(self, name) for name in _GROUP_TYPES}
        groups.update(changes)
        return ServiceConfig(**groups)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Nested JSON-ready snapshot; round-trips through :meth:`from_dict`."""
        return {
            name: dataclasses.asdict(getattr(self, name)) for name in _GROUP_TYPES
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping[str, Any]]) -> "ServiceConfig":
        """Rebuild a config from a :meth:`to_dict` snapshot."""
        unknown = sorted(set(payload) - set(_GROUP_TYPES))
        if unknown:
            raise InvalidParameterError(
                f"unknown ServiceConfig group(s): {', '.join(unknown)}"
            )
        groups = {
            name: _GROUP_TYPES[name](**dict(payload[name]))
            for name in _GROUP_TYPES
            if name in payload
        }
        return cls(**groups)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> "ServiceConfig":
        """Build a config from ``REPRO_SERVE_<GROUP>_<FIELD>`` variables.

        Examples: ``REPRO_SERVE_RENDER_EPS=0.1``,
        ``REPRO_SERVE_CACHE_PNG_BYTES=1048576``,
        ``REPRO_SERVE_RESILIENCE_DEGRADED_SERVING=false``,
        ``REPRO_SERVE_SHARDING_SHARDS=4``. Unset variables keep their
        group defaults; values parse by the field's type (the literal
        ``none``/empty clears an optional field).
        """
        env = os.environ if environ is None else environ
        groups: Dict[str, Any] = {}
        for name, group_type in _GROUP_TYPES.items():
            values: Dict[str, Any] = {}
            for field in fields(group_type):
                variable = f"REPRO_SERVE_{name.upper()}_{field.name.upper()}"
                raw = env.get(variable)
                if raw is None:
                    continue
                values[field.name] = _parse_env_value(
                    variable, raw, field.default
                )
            groups[name] = group_type(**values)
        return cls(**groups)

    # -- flat read aliases (silent; flat *construction* is the shim) ---------

    @property
    def tile_px(self) -> int:
        return self.render.tile_px

    @property
    def eps(self) -> float:
        return self.render.eps

    @property
    def tau(self) -> Optional[float]:
        return self.render.tau

    @property
    def colormap(self) -> str:
        return self.render.colormap

    @property
    def deadline_ms(self) -> Optional[float]:
        return self.render.deadline_ms

    @property
    def workers(self) -> int:
        return self.render.workers

    @property
    def render_workers(self) -> Optional[int]:
        return self.render.render_workers

    @property
    def executor(self) -> Optional[str]:
        return self.render.executor

    @property
    def backend(self) -> Optional[str]:
        return self.render.backend

    @property
    def max_zoom(self) -> int:
        return self.render.max_zoom

    @property
    def png_cache_bytes(self) -> int:
        return self.cache.png_bytes

    @property
    def aux_cache_bytes(self) -> int:
        return self.cache.aux_bytes

    @property
    def cache_ttl_s(self) -> Optional[float]:
        return self.cache.ttl_s

    @property
    def queue_limit(self) -> int:
        return self.resilience.queue_limit

    @property
    def degraded_serving(self) -> bool:
        return self.resilience.degraded_serving

    @property
    def stale_cache_bytes(self) -> int:
        return self.resilience.stale_bytes

    @property
    def stale_ttl_s(self) -> Optional[float]:
        return self.resilience.stale_ttl_s

    @property
    def breaker_threshold(self) -> int:
        return self.resilience.breaker_threshold

    @property
    def breaker_reset_s(self) -> float:
        return self.resilience.breaker_reset_s

    @property
    def drain_s(self) -> float:
        return self.resilience.drain_s

    @property
    def shards(self) -> int:
        return self.sharding.shards


def _parse_env_value(variable: str, raw: str, default: Any) -> Any:
    """Coerce an env string by the field default's type."""
    text = raw.strip()
    if text.lower() in ("", "none", "null"):
        return None
    if isinstance(default, bool):
        if text.lower() in ("1", "true", "yes", "on"):
            return True
        if text.lower() in ("0", "false", "no", "off"):
            return False
        raise InvalidParameterError(f"{variable}={raw!r} is not a boolean")
    try:
        if isinstance(default, int) and not isinstance(default, bool):
            return int(text)
        if isinstance(default, float) or default is None:
            # Optional numeric fields default to None; float covers
            # every current one (ttl/deadline/tau) and int-valued
            # strings parse losslessly through float for render_workers.
            number = float(text)
            return int(number) if number.is_integer() and "." not in text else number
    except ValueError:
        raise InvalidParameterError(f"{variable}={raw!r} is not a number") from None
    return text
