"""Quality metrics for comparing rendered colour maps.

The paper's quality measure (Section 7.5) is the average relative error

.. math::

    \\frac{1}{|Q|} \\sum_{q \\in Q} \\frac{|R(q) - F_P(q)|}{F_P(q)}

between returned values ``R(q)`` and exact densities. τKDV maps are
compared by their confusion counts against the exact mask.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = [
    "average_relative_error",
    "max_relative_error",
    "threshold_confusion",
]


def _relative_errors(returned: PointLike, exact: PointLike, floor: float) -> FloatArray:
    returned = np.asarray(returned, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    if returned.shape != exact.shape:
        raise InvalidParameterError(
            f"shape mismatch: returned {returned.shape} vs exact {exact.shape}"
        )
    if floor < 0.0:
        raise InvalidParameterError(f"floor must be >= 0, got {floor!r}")
    errors = np.abs(returned - exact)
    measurable = exact > floor
    out = np.zeros_like(errors)
    out[measurable] = errors[measurable] / exact[measurable]
    # Below the floor (including exactly-zero densities) a relative error
    # is meaningless — a pixel whose density underflowed cannot be
    # resolved relatively by any floating-point implementation — so the
    # absolute error is reported there instead (the convention also used
    # when plotting the paper's Figure 20 at t -> 0).
    out[~measurable] = errors[~measurable]
    return out


def average_relative_error(
    returned: PointLike, exact: PointLike, *, floor: float = 0.0
) -> float:
    """Mean per-pixel relative error (the paper's Figure 20 metric).

    ``floor``: densities at or below this value contribute their absolute
    (not relative) error; see :func:`max_relative_error`.
    """
    return float(_relative_errors(returned, exact, floor).mean())


def max_relative_error(
    returned: PointLike, exact: PointLike, *, floor: float = 0.0
) -> float:
    """Worst per-pixel relative error (checks the εKDV contract).

    Pass a small ``floor`` (e.g. ``1e-6 * exact.max()``) to exclude
    pixels whose density is far below visual relevance, where the
    incremental refinement's ~``1e-16 * F_max`` float-drift limit makes a
    relative comparison meaningless.
    """
    return float(_relative_errors(returned, exact, floor).max())


def threshold_confusion(
    returned_mask: PointLike, exact_mask: PointLike
) -> dict[str, float]:
    """Confusion counts of a τKDV mask versus the exact mask.

    Returns
    -------
    dict
        ``{"tp": ..., "fp": ..., "fn": ..., "tn": ..., "accuracy": ...}``.
    """
    returned_mask = np.asarray(returned_mask, dtype=bool).ravel()
    exact_mask = np.asarray(exact_mask, dtype=bool).ravel()
    if returned_mask.shape != exact_mask.shape:
        raise InvalidParameterError(
            f"shape mismatch: {returned_mask.shape} vs {exact_mask.shape}"
        )
    tp = int(np.sum(returned_mask & exact_mask))
    fp = int(np.sum(returned_mask & ~exact_mask))
    fn = int(np.sum(~returned_mask & exact_mask))
    tn = int(np.sum(~returned_mask & ~exact_mask))
    total = returned_mask.size
    accuracy = (tp + tn) / total if total else 1.0
    return {"tp": tp, "fp": fp, "fn": fn, "tn": tn, "accuracy": accuracy}
