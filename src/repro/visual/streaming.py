"""Streaming kernel density visualization (buffered index + exact tail).

**Extension beyond the paper**, addressing the use case of its citation
[26] (Lampe & Hauser, "Interactive visualization of streaming data with
kernel density estimation") without the GPU: points arrive continuously;
queries must stay answerable with the full deterministic guarantee at
any moment.

Design: recent arrivals accumulate in a flat buffer whose contribution
is evaluated by a vectorised brute-force scan — *exact*, so it enters
the refinement engine as the ``offset`` term and the ``(1 ± eps)`` /
τ guarantees hold over the union. When the buffer exceeds its limit the
index is rebuilt over everything (amortised ``O(log)`` rebuilds under
geometric growth). This is the classic "LSM-lite" pattern for
batch-built indexes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.bounds import make_bound_provider
from repro.core.engine import RefinementEngine
from repro.core.kernels import get_kernel
from repro.errors import InvalidParameterError, NotFittedError
from repro.index.kdtree import KDTree
from repro.utils.validation import check_points, check_positive, check_probability_like

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike, PointLike
    from repro.core.bounds.base import BoundProvider

__all__ = ["StreamingKDV"]

#: Default buffer capacity before the index is rebuilt.
DEFAULT_BUFFER_LIMIT = 2048


class StreamingKDV:
    """Continuously updatable kernel density with exact guarantees.

    Parameters
    ----------
    kernel:
        Kernel name or instance.
    gamma:
        Bandwidth parameter (fixed up front: a streaming setting cannot
        re-fit Scott's rule per arrival without invalidating earlier
        colour scales).
    weight:
        Per-point weight ``w``.
    buffer_limit:
        Arrivals tolerated in the flat buffer before a rebuild folds
        them into the kd-tree.
    provider:
        Bound family for the indexed part (default ``"quad"``).
    leaf_size:
        kd-tree leaf capacity.

    Example
    -------
    >>> stream = StreamingKDV(gamma=2.0, weight=1.0)
    >>> stream.extend([[0.0, 0.0], [1.0, 1.0]])
    >>> value = stream.density_eps([0.5, 0.5], eps=0.01)
    """

    def __init__(
        self,
        kernel: KernelLike = "gaussian",
        gamma: float = 1.0,
        weight: float = 1.0,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        provider: str = "quad",
        leaf_size: int = 64,
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.gamma = check_positive(gamma, "gamma")
        self.weight = check_positive(weight, "weight")
        self.buffer_limit = int(buffer_limit)
        if self.buffer_limit < 1:
            raise InvalidParameterError(
                f"buffer_limit must be >= 1, got {buffer_limit}"
            )
        self.provider_name = provider
        self.leaf_size = int(leaf_size)
        self._indexed: FloatArray | None = None  # (n, d) array currently inside the tree
        self._buffer: list[FloatArray] = []  # (k, d) arrays awaiting a rebuild
        self._buffer_count = 0
        self._engine: RefinementEngine | None = None
        self._provider: BoundProvider | None = None
        self.rebuilds = 0
        self.dims: int | None = None

    # -- ingestion -----------------------------------------------------------

    def extend(self, points: PointLike) -> StreamingKDV:
        """Ingest a batch of points; rebuilds the index when due."""
        points = check_points(points)
        if self.dims is None:
            self.dims = points.shape[1]
        elif points.shape[1] != self.dims:
            raise InvalidParameterError(
                f"expected {self.dims}-dimensional points, got {points.shape[1]}"
            )
        self._buffer.append(points)
        self._buffer_count += points.shape[0]
        if self._buffer_count > self.buffer_limit:
            self._rebuild()
        return self

    def append(self, point: PointLike) -> StreamingKDV:
        """Ingest a single point."""
        return self.extend(np.atleast_2d(np.asarray(point, dtype=np.float64)))

    def _rebuild(self) -> None:
        parts = ([] if self._indexed is None else [self._indexed]) + self._buffer
        self._indexed = np.vstack(parts)
        self._buffer = []
        self._buffer_count = 0
        tree = KDTree(self._indexed, leaf_size=self.leaf_size)
        self._provider = make_bound_provider(
            self.provider_name, self.kernel, self.gamma, self.weight
        )
        self._engine = RefinementEngine(tree, self._provider)
        self.rebuilds += 1

    # -- state ----------------------------------------------------------------

    @property
    def total_points(self) -> int:
        """Points ingested so far (indexed + buffered)."""
        indexed = 0 if self._indexed is None else self._indexed.shape[0]
        return indexed + self._buffer_count

    @property
    def buffered_points(self) -> int:
        """Points currently awaiting a rebuild."""
        return self._buffer_count

    def _require_data(self) -> None:
        if self.total_points == 0:
            raise NotFittedError("StreamingKDV has no data yet")

    def _buffer_density(self, query: FloatArray) -> float:
        """Exact buffer contribution at one query (vectorised scan)."""
        if self._buffer_count == 0:
            return 0.0
        total = 0.0
        for chunk in self._buffer:
            sq = ((chunk - query) ** 2).sum(axis=1)
            # lint: allow-backend-dispatch -- unindexed ingest buffer;
            # the backends only accelerate tree-batched evaluation.
            total += float(self.kernel.evaluate(sq, self.gamma).sum())
        return self.weight * total

    # -- queries ---------------------------------------------------------------

    def density_eps(self, query: PointLike, eps: float = 0.01, *, atol: float = 0.0) -> float:
        """εKDV over everything ingested so far (deterministic guarantee)."""
        self._require_data()
        eps = check_probability_like(eps, "eps")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        offset = self._buffer_density(query)
        if self._engine is None:
            return offset  # everything still lives in the buffer: exact
        return self._engine.query_eps(query, eps, atol=atol, offset=offset)

    def density_exact(self, query: PointLike) -> float:
        """Exact density over everything ingested (reference)."""
        self._require_data()
        from repro.core.exact import exact_density

        query = np.asarray(query, dtype=np.float64).reshape(-1)
        total = self._buffer_density(query)
        if self._indexed is not None:
            total += float(
                exact_density(
                    self._indexed, query, self.kernel, self.gamma, self.weight
                )
            )
        return total

    def above_threshold(self, query: PointLike, tau: float) -> bool:
        """τKDV over everything ingested so far."""
        self._require_data()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        offset = self._buffer_density(query)
        if self._engine is None:
            return offset >= float(tau)
        return self._engine.query_tau(query, tau, offset=offset)

    def __repr__(self) -> str:
        return (
            f"StreamingKDV(kernel={self.kernel.name!r}, total={self.total_points}, "
            f"buffered={self.buffered_points}, rebuilds={self.rebuilds})"
        )
