"""Process-pool tile executor — true parallel rendering past the GIL.

The thread-tiled paths in :mod:`repro.visual.kdv` interleave rather than
parallelise when the compute backend holds the GIL (the numpy reference
backend does; the whole refinement loop is Python + small-batch numpy).
:class:`ProcessTileExecutor` escapes that by draining tiles into worker
*processes*:

* the fitted kd-tree is published **once** into POSIX shared memory
  (:func:`repro.index.shared.publish_tree`); every worker attaches
  zero-copy views at pool start instead of unpickling megabytes of tree
  per render;
* each worker rebuilds the method's bound provider from a tiny picklable
  spec and answers tiles with a private
  :class:`~repro.core.batch_engine.BatchRefinementEngine` — the same
  engine, bounds and backend dispatch as in-process rendering, so tile
  values are **bit-identical** to the sequential/thread paths;
* per-tile :class:`~repro.core.engine.QueryStats` travel back as plain
  dicts and are merged through the usual ``QueryStats.merge`` ledger;
  the parent re-emits ``tile`` trace events into the ambient obs sinks
  (worker processes have no tracer), so observability is unchanged;
* cancellation crosses the process boundary through a shared byte slot
  (:mod:`repro.resilience.process`): Ctrl-C, deadlines and kernel
  budgets trip the parent token, a watcher thread mirrors the latch
  into the slot, and workers stop at their next frontier poll and
  return valid best-so-far envelopes — no orphaned processes, no
  zombie work;
* the pool is **supervised**: when a worker genuinely dies (OOM killer,
  segfault in a native kernel, an injected ``worker_kill`` fault),
  ``concurrent.futures`` poisons the whole ``ProcessPoolExecutor`` —
  the executor detects that, consults its
  :class:`~repro.resilience.supervisor.PoolSupervisor` and *rebuilds*
  the inner pool against the already-published shared-memory tree
  (no re-publication, no re-pack), then replays the tiles whose
  futures never returned. Rebuild storms are capped with exponential
  backoff; when the budget is exhausted (or supervision is disabled)
  a typed :class:`~repro.errors.WorkerPoolBrokenError` surfaces
  instead of the raw ``BrokenProcessPool`` traceback.

Pools are cached per fitted method by
:meth:`repro.methods.base.IndexedMethod.process_executor`, so a render
sweep pays the fork + attach cost once.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import weakref
from typing import TYPE_CHECKING, Any, NamedTuple, Optional

import numpy as np

from repro.contracts.runtime import invariants_enabled, set_invariants
from repro.core.backends import resolve_backend
from repro.core.engine import QueryStats
from repro.errors import InvalidParameterError, WorkerPoolBrokenError
from repro.index.shared import attach_tree, publish_tree
from repro.resilience.budget import STOP_INTERRUPT, CancellationToken
from repro.resilience.faults import (
    FAULT_POOL_BREAK,
    FAULT_SLOW_RESPONSE,
    FAULT_WORKER_KILL,
    FaultPlan,
    fault_fires,
)
from repro.resilience.process import CancelSlots, CancelWatcher, SlotCancellationToken
from repro.resilience.supervisor import PoolSupervisor, default_pool_supervisor

if TYPE_CHECKING:
    from repro._types import FloatArray, IntArray
    from repro.methods.base import IndexedMethod

__all__ = [
    "ProcessTileExecutor",
    "TileJob",
    "ProcessRunOutcome",
    "pool_supervision_totals",
]

# Process-wide supervision ledger. Executor instances are replaced when
# their rebuild budget is exhausted (close + fresh build on the next
# render), which would silently zero per-instance counters — these
# totals survive replacement so /stats and chaos tests can assert
# "a break happened and was recovered" across executor lifetimes.
_TOTALS_LOCK = threading.Lock()
_TOTAL_BREAKS = 0
_TOTAL_REBUILDS = 0


def _count_break() -> None:
    global _TOTAL_BREAKS
    with _TOTALS_LOCK:
        _TOTAL_BREAKS += 1


def _count_rebuild() -> None:
    global _TOTAL_REBUILDS
    with _TOTALS_LOCK:
        _TOTAL_REBUILDS += 1


def pool_supervision_totals() -> dict[str, int]:
    """Process-lifetime ``{"breaks": N, "rebuilds": N}`` across all pools."""
    with _TOTALS_LOCK:
        return {"breaks": _TOTAL_BREAKS, "rebuilds": _TOTAL_REBUILDS}

#: Environment override for the multiprocessing start method
#: (``fork`` / ``spawn`` / ``forkserver``). The default prefers ``fork``
#: where available: workers inherit the parent's modules, so pool
#: start-up is milliseconds instead of a fresh interpreter per worker.
MP_START_ENV_VAR = "REPRO_MP_START"


class TileJob(NamedTuple):
    """One tile's work order: its index, pixel ids, and query centers.

    ``centers`` is the materialised ``grid.centers()[pixels]`` slice —
    shipping the actual coordinates (a few tens of KB per tile)
    guarantees the worker refines *exactly* the same float64 inputs as
    an in-process render, which is what makes the bit-identity claim
    hold without re-deriving grid geometry in the worker.
    """

    index: int
    pixels: IntArray
    centers: FloatArray


class ProcessRunOutcome:
    """What one :meth:`ProcessTileExecutor.run` produced.

    Attributes
    ----------
    payloads:
        ``{tile_index: payload}`` for every tile whose worker returned —
        values/mask arrays in strict mode, ``(lower, upper)`` envelope
        pairs in bounds mode. Tiles a tripped token cut short still
        appear here (their envelopes are valid, just looser).
    errors:
        ``{tile_index: exception}`` for tiles whose worker raised. The
        original exception objects, so strict callers re-raise with the
        true type.
    cancelled:
        Tile indices whose worker observed the cancellation slot and
        returned early (a subset of ``payloads`` keys in bounds mode).
    unrun:
        Tile indices never executed (future cancelled before start, or
        the pool broke underneath them).
    stats:
        All workers' engine counters merged into one
        :class:`~repro.core.engine.QueryStats`.
    keyboard_interrupt:
        ``True`` when a Ctrl-C landed during collection; the run drains
        outstanding futures before returning, so the caller decides
        whether to re-raise (strict) or degrade (anytime).
    worker_seconds:
        ``{ordinal_worker_id: busy_seconds}`` summed per worker.
    pool_broken:
        ``True`` when the pool broke at least once during the run
        (even if supervision rebuilt it and the run recovered).
    rebuilds:
        How many times the pool was rebuilt during this run.
    """

    __slots__ = (
        "payloads",
        "errors",
        "cancelled",
        "unrun",
        "stats",
        "keyboard_interrupt",
        "worker_seconds",
        "pool_broken",
        "rebuilds",
    )

    def __init__(self) -> None:
        self.payloads: dict[int, Any] = {}
        self.errors: dict[int, BaseException] = {}
        self.cancelled: set[int] = set()
        self.unrun: set[int] = set()
        self.stats = QueryStats()
        self.keyboard_interrupt = False
        self.worker_seconds: dict[int, float] = {}
        self.pool_broken = False
        self.rebuilds = 0


# -- worker side -------------------------------------------------------------
#
# Module-level state, populated once per worker process by the pool
# initializer. concurrent.futures passes ``initargs`` through the
# multiprocessing Process machinery, which is the only legal route for
# shared objects (the slot array) — they inherit, they do not pickle.

_WORKER_STATE: dict[str, Any] = {}


def _worker_init(tree_meta: dict[str, Any], spec: dict[str, Any], slot_array: Any) -> None:
    from repro.core.bounds import make_bound_provider

    tree = attach_tree(tree_meta)
    provider = make_bound_provider(
        spec["provider"],
        spec["kernel"],
        spec["gamma"],
        spec["weight"],
        **spec["provider_options"],
    )
    _WORKER_STATE["tree"] = tree
    _WORKER_STATE["provider"] = provider
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["slots"] = slot_array


def _inject_process_faults(
    fault_spec: Optional[dict[str, Any]], index: int, attempt: int
) -> None:
    """Worker-side deterministic process faults (see REPRO_FAULTS docs).

    ``worker_kill`` and ``pool_break`` are *real* abrupt deaths — the
    parent observes an authentic ``BrokenProcessPool``, exactly the
    condition an OOM-killed or segfaulted worker produces — so the
    supervision path in CI exercises the same machinery production
    faults would. Rolls are keyed on (tile, attempt): a tile whose
    worker was killed on attempt 1 is (with high probability) left
    alone on the replay, so deterministic recovery converges.
    """
    if not fault_spec:
        return
    seed = int(fault_spec["seed"])
    rates: dict[str, float] = fault_spec["rates"]
    if fault_fires(seed, FAULT_WORKER_KILL, index, attempt, rates.get(FAULT_WORKER_KILL, 0.0)):
        os.kill(os.getpid(), signal.SIGKILL)
    if fault_fires(seed, FAULT_POOL_BREAK, index, attempt, rates.get(FAULT_POOL_BREAK, 0.0)):
        os._exit(1)
    if fault_fires(
        seed, FAULT_SLOW_RESPONSE, index, attempt, rates.get(FAULT_SLOW_RESPONSE, 0.0)
    ):
        time.sleep(float(fault_spec["slow_ms"]) / 1000.0)


def _run_tile(
    index: int,
    centers: FloatArray,
    op: str,
    params: dict[str, float],
    bounds: bool,
    slot: Optional[int],
    check: bool,
    fault_spec: Optional[dict[str, Any]] = None,
    attempt: int = 1,
) -> tuple[int, Any, dict[str, int], float, bool, int]:
    """Refine one tile in a worker; returns a picklable result tuple."""
    from repro.core.batch_engine import BatchRefinementEngine

    _inject_process_faults(fault_spec, index, attempt)
    spec = _WORKER_STATE["spec"]
    set_invariants(check)
    stats = QueryStats()
    engine = BatchRefinementEngine(
        _WORKER_STATE["tree"],
        _WORKER_STATE["provider"],
        ordering=spec["ordering"],
        stats=stats,
        backend=spec["backend"],
    )
    token: CancellationToken | None = None
    if slot is not None:
        token = SlotCancellationToken(_WORKER_STATE["slots"], slot)
        token.start()
    start = time.perf_counter()
    if op == "eps":
        if bounds:
            payload: Any = engine.query_eps_bounds(
                centers, params["eps"], atol=params["atol"], cancel=token
            )
        else:
            payload = engine.query_eps_batch(
                centers, params["eps"], atol=params["atol"], cancel=token
            )
    else:
        if bounds:
            payload = engine.query_tau_bounds(centers, params["tau"], cancel=token)
        else:
            payload = engine.query_tau_batch(centers, params["tau"], cancel=token)
    seconds = time.perf_counter() - start
    was_cancelled = bool(token is not None and token.triggered)
    return index, payload, stats.as_dict(), seconds, was_cancelled, os.getpid()


class _PoolBox:
    """Mutable holder for the inner ``ProcessPoolExecutor``.

    The weakref finalizer must keep closing the *current* pool even
    after a supervised rebuild swapped it — capturing the box (stable
    identity) instead of the pool object makes that true without
    re-registering finalizers per rebuild.
    """

    __slots__ = ("pool",)

    def __init__(self, pool: Any) -> None:
        self.pool = pool


def _close_pool(box: _PoolBox, handle: Any) -> None:
    box.pool.shutdown(wait=True, cancel_futures=True)
    handle.close()


class ProcessTileExecutor:
    """A persistent worker-process pool bound to one fitted method.

    Parameters
    ----------
    method:
        A fitted :class:`~repro.methods.base.IndexedMethod` over a
        kd-tree index (ball trees have no shared-memory packing and
        raise :class:`~repro.errors.InvalidParameterError`).
    workers:
        Worker process count (>= 1).
    backend:
        Compute-backend name the workers dispatch through (``None``
        inherits the method's backend / ``REPRO_BACKEND``).
    supervisor:
        Rebuild policy for broken pools. The default sentinel
        ``"default"`` resolves through
        :func:`~repro.resilience.supervisor.default_pool_supervisor`
        (supervision on unless ``REPRO_POOL_SUPERVISE=0``); pass an
        explicit :class:`~repro.resilience.supervisor.PoolSupervisor`
        to tune the storm cap/backoff, or ``None`` to disable
        supervision (the first break then raises
        :class:`~repro.errors.WorkerPoolBrokenError`).
    """

    def __init__(
        self,
        method: IndexedMethod,
        workers: int,
        backend: str | None = None,
        supervisor: PoolSupervisor | None | str = "default",
    ) -> None:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        workers = int(workers)
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        engine = method.engine
        if engine is None:
            raise InvalidParameterError(
                "method must be fitted before building a process executor"
            )
        provider = engine.provider
        # Resolve the backend *here*, in the parent: shipping the raw
        # name would make every worker process call resolve_backend()
        # with a fresh fallback-warning latch, re-firing the one-time
        # "numba unavailable" RuntimeWarning once per worker. Resolving
        # to the concrete backend's name keeps the warning once per
        # interpreter and sends workers a name that always exists.
        resolved_backend = resolve_backend(
            backend if backend is not None else method.backend
        )
        spec = {
            "provider": method.provider_name,
            "kernel": provider.kernel.name,
            "gamma": float(provider.gamma),
            "weight": float(provider.weight),
            "provider_options": dict(method.provider_options),
            "ordering": method.ordering,
            "backend": resolved_backend.name,
        }
        self.spec = spec
        start_method = os.environ.get(MP_START_ENV_VAR)
        if not start_method:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        ctx = mp.get_context(start_method)
        self.workers = workers
        if supervisor == "default":
            supervisor = default_pool_supervisor()
        self.supervisor: PoolSupervisor | None = supervisor  # type: ignore[assignment]
        self.breaks = 0
        self.rebuilds = 0
        self._ctx = ctx
        self._generation = 0
        self._rebuild_lock = threading.Lock()
        self._handle = publish_tree(engine.tree)
        try:
            self._slots = CancelSlots(ctx)
            self._box = _PoolBox(
                ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=ctx,
                    initializer=_worker_init,
                    initargs=(self._handle.meta, spec, self._slots.array),
                )
            )
        except BaseException:
            self._handle.close()
            raise
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _close_pool, self._box, self._handle
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the pool down and unlink the shared tree (idempotent)."""
        if not self._closed:
            self._closed = True
            self._finalizer()

    def rebuild(self, observed_generation: int) -> None:
        """Replace the broken inner pool with a fresh one.

        The shared-memory tree published at construction is **reused**:
        the new pool's initargs carry the same handle metadata and slot
        array, so workers re-attach zero-copy views — no re-publication,
        no re-pack of the kd-tree. ``observed_generation`` makes the
        call race-safe when several concurrent :meth:`run` loops hit the
        same broken pool: only the first one actually rebuilds.
        """
        from concurrent.futures import ProcessPoolExecutor

        with self._rebuild_lock:
            if self._closed or self._generation != observed_generation:
                return
            old = self._box.pool
            self._box.pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._ctx,
                initializer=_worker_init,
                initargs=(self._handle.meta, self.spec, self._slots.array),
            )
            self._generation += 1
            self.rebuilds += 1
            _count_rebuild()
            # The old pool is already broken: don't wait on its corpse.
            old.shutdown(wait=False, cancel_futures=True)

    def health(self) -> dict[str, Any]:
        """JSON-ready snapshot of pool liveness (for ``/stats``)."""
        report: dict[str, Any] = {
            "workers": self.workers,
            "closed": self._closed,
            "breaks": self.breaks,
            "rebuilds": self.rebuilds,
            "generation": self._generation,
            "supervised": self.supervisor is not None,
        }
        if self.supervisor is not None:
            report["supervisor"] = self.supervisor.as_dict()
        return report

    def __enter__(self) -> ProcessTileExecutor:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the drain loop ------------------------------------------------------

    def run(
        self,
        jobs: list[TileJob],
        *,
        op: str,
        params: dict[str, float],
        bounds: bool,
        token: CancellationToken | None = None,
        tracer: Any = None,
        on_result: Any = None,
        faults: FaultPlan | None = None,
    ) -> ProcessRunOutcome:
        """Drain ``jobs`` through the worker pool; never raises Ctrl-C.

        Tiles are submitted all at once and drain from the pool's shared
        call queue — idle workers steal the next tile, so an uneven tile
        cost distribution self-balances. Per-tile results stream back
        ``as_completed``:

        * worker stats merge into ``outcome.stats`` and (when ``token``
          carries a kernel budget) charge the parent token, so budgets
          account cross-process work exactly like in-process work;
        * ``tile`` trace events re-emit in the parent with stable
          ordinal worker ids (pids map to 0..N-1 in first-seen order);
        * ``on_result(index, payload)`` runs in submission-completion
          order when given (the anytime path's ``store``).

        A ``KeyboardInterrupt`` during collection cancels the token,
        trips the cancellation slot (workers stop at their next frontier
        poll), cancels not-yet-started futures, and *waits* for running
        ones — their best-so-far envelopes are collected and no process
        is orphaned. The interrupt is reported on the outcome rather
        than re-raised, because strict and anytime callers disagree on
        what to do with it.

        When the pool **breaks** (a worker died abruptly — OOM killer,
        segfault, injected ``worker_kill``), supervision kicks in: the
        supervisor grants a backoff-spaced rebuild, the inner pool is
        recreated against the already-published shared tree, and the
        tiles whose futures never returned are resubmitted with a
        bumped attempt number. Tiles that completed before the break
        keep their results — no work is redone. When the supervisor
        denies (storm cap) or supervision is off, a typed
        :class:`~repro.errors.WorkerPoolBrokenError` is raised; a run
        whose token already tripped does not rebuild at all (the caller
        is abandoning the render anyway) and reports lost tiles as
        ``unrun``.

        ``faults`` is the process-level half of a fault plan (see
        :meth:`~repro.resilience.faults.FaultPlan.partition_process`);
        its rolls execute *inside* the workers.
        """
        from concurrent.futures import BrokenExecutor, CancelledError, as_completed

        if self._closed:
            raise InvalidParameterError("process executor is closed")
        outcome = ProcessRunOutcome()
        if not jobs:
            return outcome
        if token is None:
            token = CancellationToken()
        token.start()
        check = invariants_enabled()
        fault_spec: dict[str, Any] | None = None
        if faults is not None and not faults.empty:
            fault_spec = faults.as_dict()
        slot = self._slots.claim()
        pid_to_worker: dict[int, int] = {}
        jobs_by_index = {job.index: job for job in jobs}
        attempts = {job.index: 1 for job in jobs}
        try:
            with CancelWatcher(self._slots, slot, token) as watcher:
                todo = list(jobs)
                while todo:
                    generation = self._generation
                    futures: dict[Any, int] = {}
                    pending: set[Any] = set()
                    completed_this_round = 0
                    broken: BaseException | None = None
                    lost: set[int] = set()
                    try:
                        for job in todo:
                            futures[
                                self._box.pool.submit(
                                    _run_tile,
                                    job.index,
                                    job.centers,
                                    op,
                                    params,
                                    bounds,
                                    slot,
                                    check,
                                    fault_spec,
                                    attempts[job.index],
                                )
                            ] = job.index
                        pending = set(futures)
                    except BrokenExecutor as error:
                        # A worker died fast enough to poison the pool
                        # mid-submission; nothing submitted this round
                        # will produce results, so the whole round is
                        # lost and replays after the rebuild.
                        broken = error
                        lost = {job.index for job in todo}
                    todo = []
                    while pending:
                        try:
                            for future in as_completed(pending):
                                pending.discard(future)
                                tile_index = futures[future]
                                try:
                                    result = future.result()
                                except CancelledError:
                                    outcome.unrun.add(tile_index)
                                    continue
                                except BrokenExecutor as error:
                                    # The pool died underneath us: this
                                    # future and everything still pending
                                    # never produced results.
                                    broken = error
                                    lost = {tile_index}
                                    lost.update(futures[f] for f in pending)
                                    pending.clear()
                                    break
                                except BaseException as error:
                                    outcome.errors[tile_index] = error
                                    continue
                                index, payload, stats_dict, seconds, cancelled, pid = result
                                completed_this_round += 1
                                worker_id = pid_to_worker.setdefault(
                                    pid, len(pid_to_worker)
                                )
                                tile_stats = QueryStats()
                                for field, value in stats_dict.items():
                                    setattr(tile_stats, field, value)
                                outcome.stats.merge(tile_stats)
                                token.charge(tile_stats.point_evaluations)
                                outcome.payloads[index] = payload
                                if cancelled:
                                    outcome.cancelled.add(index)
                                outcome.worker_seconds[worker_id] = (
                                    outcome.worker_seconds.get(worker_id, 0.0)
                                    + seconds
                                )
                                if tracer is not None:
                                    tracer.tile(
                                        index=index,
                                        rows=int(payload[0].shape[0])
                                        if bounds
                                        else int(np.shape(payload)[0]),
                                        seconds=seconds,
                                        worker=worker_id,
                                        op=op,
                                    )
                                if on_result is not None:
                                    on_result(index, payload)
                        except KeyboardInterrupt:
                            outcome.keyboard_interrupt = True
                            token.cancel(STOP_INTERRUPT)
                            watcher.trip()
                            for future in list(pending):
                                if future.cancel():
                                    pending.discard(future)
                                    outcome.unrun.add(futures[future])
                            # Loop back into as_completed for the
                            # stragglers: they observe the tripped slot
                            # and return their best-so-far envelopes
                            # within a frontier pop.
                            continue
                    if completed_this_round and self.supervisor is not None:
                        self.supervisor.note_progress()
                    if broken is None:
                        continue
                    outcome.pool_broken = True
                    self.breaks += 1
                    _count_break()
                    if token.triggered or outcome.keyboard_interrupt:
                        # The render is being abandoned anyway: no
                        # rebuild, report the lost tiles as unrun so
                        # the anytime path degrades them.
                        outcome.unrun.update(lost)
                        self.close()
                        break
                    delay = (
                        self.supervisor.grant()
                        if self.supervisor is not None
                        else None
                    )
                    if delay is None:
                        self.close()
                        if self.supervisor is None:
                            detail = "supervision is disabled"
                        else:
                            detail = (
                                "the rebuild budget is exhausted "
                                f"({self.supervisor.max_consecutive_rebuilds} "
                                "consecutive rebuilds without progress)"
                            )
                        raise WorkerPoolBrokenError(
                            f"process worker pool broke with {len(lost)} "
                            f"tile(s) in flight and {detail}"
                        ) from broken
                    if delay > 0.0:
                        time.sleep(delay)
                    self.rebuild(generation)
                    outcome.rebuilds += 1
                    for index in lost:
                        attempts[index] += 1
                    todo = [jobs_by_index[i] for i in sorted(lost)]
        finally:
            self._slots.release(slot)
        return outcome
