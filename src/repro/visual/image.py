"""Minimal PNG / PPM writers (standard library only).

The experiments save rendered colour maps (Figures 19 and 21) to disk;
PNG is produced directly via :mod:`zlib` — one IDAT chunk, no filtering
beyond filter type 0 — so the library needs no imaging dependency.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    import os

    from repro._types import PointLike

__all__ = ["png_bytes", "write_png", "write_ppm"]


def _as_rgb8(image: PointLike) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise InvalidParameterError(
            f"image must have shape (height, width, 3), got {image.shape}"
        )
    if image.dtype != np.uint8:
        image = np.clip(image, 0, 255).astype(np.uint8)
    return image


def _png_chunk(tag: bytes, payload: bytes) -> bytes:
    chunk = tag + payload
    return struct.pack(">I", len(payload)) + chunk + struct.pack(">I", zlib.crc32(chunk))


def png_bytes(image: PointLike) -> bytes:
    """Encode an RGB image array as PNG bytes.

    Deterministic: equal pixel arrays encode to identical bytes (fixed
    filter, fixed :mod:`zlib` level, no timestamps), which is what lets
    the tile service assert byte-identity between cached and freshly
    rendered tiles.

    Parameters
    ----------
    image:
        Array of shape ``(height, width, 3)``; non-``uint8`` input is
        clipped and converted.
    """
    image = _as_rgb8(image)
    height, width = image.shape[:2]
    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    # Scanlines with filter byte 0 (None) prepended.
    raw = np.empty((height, 1 + width * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = image.reshape(height, width * 3)
    payload = zlib.compress(raw.tobytes(), level=6)
    return b"".join(
        (
            b"\x89PNG\r\n\x1a\n",
            _png_chunk(b"IHDR", header),
            _png_chunk(b"IDAT", payload),
            _png_chunk(b"IEND", b""),
        )
    )


def write_png(path: str | os.PathLike[str], image: PointLike) -> Path:
    """Write an RGB image array to a PNG file.

    Parameters
    ----------
    path:
        Output file path (parent directories are created).
    image:
        Array of shape ``(height, width, 3)``; non-``uint8`` input is
        clipped and converted.

    Returns
    -------
    pathlib.Path
        The written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(png_bytes(image))
    return path


def write_ppm(path: str | os.PathLike[str], image: PointLike) -> Path:
    """Write an RGB image array to a binary PPM (P6) file."""
    image = _as_rgb8(image)
    height, width = image.shape[:2]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(image.tobytes())
    return path
