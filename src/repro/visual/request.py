"""The unified render request API: what to render vs how to run it.

PRs 2–4 accumulated keyword sprawl on :class:`~repro.visual.kdv.KDVRenderer`
(``tile_size``, ``workers``, ``trace``, ``budget``, ``checkpoint``, ...).
This module splits that surface into two frozen dataclasses:

* :class:`RenderRequest` — *what* is rendered: the operation (ε or τ),
  its parameters, the method, kernel, bandwidth and viewport grid.
  Every field here shapes the output bytes, so the request carries a
  stable :meth:`~RenderRequest.fingerprint` — the cache key of the tile
  service (:mod:`repro.serve`).
* :class:`RenderOptions` — *how* the render runs: tiling, worker
  threads, tracing, budgets and the rest of the resilience surface.
  With the single exception of ``tile_size`` (see below), options never
  change the rendered values, only cost, observability and degradation
  behaviour — which is exactly why they stay out of the fingerprint.

``tile_size`` lives on :class:`RenderOptions` because it is an execution
knob, but it *does* participate in the fingerprint: the batched engine
refines each tile as one frontier batch, and per-pixel ε answers (while
always honouring the ``(1 ± eps)`` contract) depend on the batch
composition. Two renders with different tile partitions may therefore
produce different — equally valid — images, so the partition must key
the cache. ``workers`` does not: tiles are refined independently, and
the same partition gives bit-identical values at any worker count.

:meth:`KDVRenderer.render(request) <repro.visual.kdv.KDVRenderer.render>`
is the single entrypoint consuming these; the historical
``render_eps`` / ``render_tau`` signatures remain as thin shims (see
``docs/api.md`` for the full mapping table).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    import os
    from pathlib import Path

    from repro.methods.base import Method
    from repro.resilience.budget import Budget, CancellationToken
    from repro.resilience.retry import RetryPolicy
    from repro.visual.grid import PixelGrid
    from repro.visual.kdv import FaultsLike, KDVRenderer, TraceTarget

__all__ = ["RenderOptions", "RenderRequest", "OP_EPS", "OP_TAU"]

#: The two render operations of the paper: approximate density (εKDV)
#: and thresholded hotspot classification (τKDV).
OP_EPS = "eps"
OP_TAU = "tau"

#: Version tag of the fingerprint payload schema. Bump whenever the
#: payload layout changes, so stale cache entries can never alias new
#: ones. v2 added the ``tier`` field (exact vs per-zoom coreset).
FINGERPRINT_FORMAT = "repro-render-request-v2"


def _float_token(value: float) -> str:
    """Canonical string for a float field (exact, `repr`-based)."""
    return repr(float(value))


def _normalize_tile_size(
    tile_size: Union[int, Tuple[int, int], None],
) -> Optional[Tuple[int, int]]:
    """``None`` | int | pair -> ``None`` | ``(width, height)`` pair."""
    if tile_size is None:
        return None
    if isinstance(tile_size, tuple):
        width, height = int(tile_size[0]), int(tile_size[1])
    else:
        width = height = int(tile_size)
    if width < 1 or height < 1:
        raise InvalidParameterError(f"tile_size must be >= 1, got {width}x{height}")
    return width, height


@dataclass(frozen=True)
class RenderOptions:
    """How a render executes — cost, scheduling and resilience knobs.

    Every field is optional; the all-defaults instance reproduces the
    plain (untiled, untraced, non-resilient) render path exactly.

    Parameters
    ----------
    tile_size:
        Pixel-tile edge (or ``(width, height)``) for tiled rendering
        through the batched engine. The only option that participates
        in :meth:`RenderRequest.fingerprint` (see the module docstring).
    workers:
        Worker threads draining the tile queue.
    trace:
        Scoped trace target (see :func:`repro.obs.trace_to`).
    budget:
        :class:`~repro.resilience.budget.Budget` cost envelope; engages
        the anytime path.
    cancel:
        Externally owned cancellation token.
    resume_from / checkpoint:
        Tile-ledger paths for checkpoint/resume.
    faults:
        Deterministic fault-injection plan (testing/chaos).
    retry:
        :class:`~repro.resilience.retry.RetryPolicy` for transient tile
        failures.
    anytime:
        Return the full :class:`~repro.resilience.result.RenderOutcome`
        (image + per-pixel envelopes + degradation metadata) instead of
        the bare image/mask.
    backend:
        Compute-backend name for the batched engines (``"numpy"`` /
        ``"numba"``); ``None`` inherits the method's backend (itself
        defaulting to ``REPRO_BACKEND`` or the numpy reference). Out of
        the fingerprint: every backend is bit-identical by contract.
    executor:
        ``"thread"`` (default) or ``"process"`` for tiled/anytime
        renders with ``workers > 1``. Process workers escape the GIL —
        see ``docs/performance.md`` for when each wins. Out of the
        fingerprint: tile values are bit-identical either way.
    """

    tile_size: Union[int, Tuple[int, int], None] = None
    workers: Optional[int] = None
    trace: "TraceTarget" = None
    budget: Optional["Budget"] = None
    cancel: Optional["CancellationToken"] = None
    resume_from: Union[str, "os.PathLike[str]", None] = None
    checkpoint: Union[str, "os.PathLike[str]", None] = None
    faults: "FaultsLike" = None
    retry: Optional["RetryPolicy"] = None
    anytime: bool = False
    backend: Optional[str] = None
    executor: Optional[str] = None

    def __post_init__(self) -> None:
        _normalize_tile_size(self.tile_size)  # validates
        if self.workers is not None and int(self.workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {self.workers!r}")
        if self.executor not in (None, "thread", "process"):
            raise InvalidParameterError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )

    def replace(self, **changes: Any) -> "RenderOptions":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @property
    def resilience_engaged(self) -> bool:
        """Whether any resilience field is set (budget, checkpointing, ...)."""
        return any(
            value is not None
            for value in (
                self.budget,
                self.cancel,
                self.resume_from,
                self.checkpoint,
                self.faults,
                self.retry,
            )
        )


#: The all-defaults options instance shared by bare requests.
_DEFAULT_OPTIONS = RenderOptions()


@dataclass(frozen=True)
class RenderRequest:
    """What to render — a complete, cacheable description of one image.

    Parameters
    ----------
    op:
        ``"eps"`` (density colour map) or ``"tau"`` (hotspot mask).
    eps / tau:
        The operation parameter (exactly the one matching ``op`` must
        be set).
    method:
        Registry name of the solution method (a fitted
        :class:`~repro.methods.base.Method` instance is accepted for
        library use, but only named methods can be fingerprinted).
    kernel / gamma / weight:
        Kernel name, bandwidth and per-point weight. ``None`` means
        "whatever the renderer was built with"; a non-``None`` value
        must *match* the renderer (requests cannot re-fit a renderer —
        build a new one for a different kernel or bandwidth).
    atol:
        εKDV absolute floor; ``None`` resolves to the renderer default
        (``1e-9 * weight``).
    grid:
        Viewport/resolution to render (``None``: the renderer's own
        grid). A different grid renders through a shared-index clone
        (:meth:`~repro.visual.kdv.KDVRenderer.with_grid`), so pan/zoom/
        tile requests reuse the fitted kd-tree and moment aggregates.
    method_options:
        Canonicalised ``(name, repr(value))`` pairs of the method
        constructor options; filled by :meth:`resolve`.
    tier:
        Data-tier label: ``None`` for the exact point set, or a
        coreset-tier tag (e.g. ``"coreset-z3"``) when the render is
        answered from a per-zoom weighted coreset. Participates in the
        fingerprint — the same viewport rendered from different tiers
        produces different (both valid) bytes, so tiers must never
        alias in the cache.
    options:
        The :class:`RenderOptions` execution knobs.
    """

    op: str
    eps: Optional[float] = None
    tau: Optional[float] = None
    method: Union[str, "Method"] = "quad"
    kernel: Optional[str] = None
    gamma: Optional[float] = None
    weight: Optional[float] = None
    atol: Optional[float] = None
    grid: Optional["PixelGrid"] = None
    method_options: Tuple[Tuple[str, str], ...] = ()
    tier: Optional[str] = None
    options: RenderOptions = field(default_factory=RenderOptions)

    def __post_init__(self) -> None:
        if self.op not in (OP_EPS, OP_TAU):
            raise InvalidParameterError(
                f"op must be {OP_EPS!r} or {OP_TAU!r}, got {self.op!r}"
            )
        if self.op == OP_EPS:
            if self.eps is None:
                raise InvalidParameterError("an eps render requires eps=")
            if self.tau is not None:
                raise InvalidParameterError("an eps render must not set tau=")
            if not (math.isfinite(float(self.eps)) and float(self.eps) > 0.0):
                raise InvalidParameterError(
                    f"eps must be a positive finite number, got {self.eps!r}"
                )
        else:
            if self.tau is None:
                raise InvalidParameterError("a tau render requires tau=")
            if self.eps is not None:
                raise InvalidParameterError("a tau render must not set eps=")
            if not math.isfinite(float(self.tau)):
                raise InvalidParameterError(f"tau must be finite, got {self.tau!r}")
        if self.gamma is not None and not float(self.gamma) > 0.0:
            raise InvalidParameterError(f"gamma must be > 0, got {self.gamma!r}")
        if self.weight is not None and not float(self.weight) > 0.0:
            raise InvalidParameterError(f"weight must be > 0, got {self.weight!r}")
        if self.atol is not None and float(self.atol) < 0.0:
            raise InvalidParameterError(f"atol must be >= 0, got {self.atol!r}")

    # -- construction helpers ----------------------------------------------

    @classmethod
    def for_eps(
        cls,
        eps: float = 0.01,
        method: Union[str, "Method"] = "quad",
        *,
        options: Optional[RenderOptions] = None,
        **fields: Any,
    ) -> "RenderRequest":
        """An εKDV request (convenience constructor)."""
        return cls(
            op=OP_EPS,
            eps=eps,
            method=method,
            options=options if options is not None else _DEFAULT_OPTIONS,
            **fields,
        )

    @classmethod
    def for_tau(
        cls,
        tau: float,
        method: Union[str, "Method"] = "quad",
        *,
        options: Optional[RenderOptions] = None,
        **fields: Any,
    ) -> "RenderRequest":
        """A τKDV request (convenience constructor)."""
        return cls(
            op=OP_TAU,
            tau=tau,
            method=method,
            options=options if options is not None else _DEFAULT_OPTIONS,
            **fields,
        )

    def replace(self, **changes: Any) -> "RenderRequest":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- resolution ---------------------------------------------------------

    def resolve(self, renderer: "KDVRenderer") -> "RenderRequest":
        """Fill renderer-default fields; validate consistency.

        Returns a request whose ``kernel``, ``gamma``, ``weight``,
        ``grid``, ``atol`` and ``method_options`` are concrete, so its
        fingerprint is well defined. A request that *names* a kernel or
        bandwidth different from the renderer's is rejected — the
        renderer's fitted indexes are specific to them, so honouring the
        request silently would render the wrong thing.
        """
        changes: Dict[str, Any] = {}
        kernel_name = renderer.kernel.name
        if self.kernel is None:
            changes["kernel"] = kernel_name
        elif str(self.kernel).lower() != kernel_name:
            raise InvalidParameterError(
                f"request kernel {self.kernel!r} does not match the renderer's "
                f"{kernel_name!r}; build a KDVRenderer with that kernel instead"
            )
        if self.gamma is None:
            changes["gamma"] = float(renderer.gamma)
        elif float(self.gamma) != float(renderer.gamma):  # lint: allow-float-eq -- config identity, not arithmetic
            raise InvalidParameterError(
                f"request gamma {self.gamma!r} does not match the renderer's "
                f"{renderer.gamma!r}; build a KDVRenderer with that bandwidth instead"
            )
        if self.weight is None:
            changes["weight"] = float(renderer.weight)
        elif float(self.weight) != float(renderer.weight):  # lint: allow-float-eq -- config identity, not arithmetic
            raise InvalidParameterError(
                f"request weight {self.weight!r} does not match the renderer's "
                f"{renderer.weight!r}"
            )
        if self.grid is None:
            changes["grid"] = renderer.grid
        if self.op == OP_EPS and self.atol is None:
            changes["atol"] = 1e-9 * float(renderer.weight)
        if not self.method_options and isinstance(self.method, str):
            from repro.methods.registry import canonical_method_options

            changes["method_options"] = canonical_method_options(
                self.method, renderer.method_options
            )
        return self.replace(**changes) if changes else self

    # -- fingerprinting ------------------------------------------------------

    def fingerprint_payload(self) -> Dict[str, Any]:
        """The canonical, JSON-ready dict the fingerprint hashes.

        Contains exactly the fields that shape the rendered values: op
        and its parameter, method name and canonical options, kernel,
        bandwidth, weight, atol, grid geometry and the tile partition.
        Execution knobs (``workers``, ``trace``, budgets, checkpoints,
        fault plans, ``anytime``) are deliberately absent — they never
        change a *complete* render's values. Partial (degraded) results
        must not be cached by callers for the same reason.
        """
        if not isinstance(self.method, str):
            raise InvalidParameterError(
                "fingerprint requires a registry-named method, got a "
                f"{type(self.method).__name__} instance"
            )
        if self.kernel is None or self.gamma is None or self.grid is None:
            raise InvalidParameterError(
                "fingerprint requires a resolved request; call "
                "request.resolve(renderer) first"
            )
        grid = self.grid
        payload: Dict[str, Any] = {
            "format": FINGERPRINT_FORMAT,
            "tier": None if self.tier is None else str(self.tier),
            "op": self.op,
            "method": str(self.method).lower(),
            "method_options": [list(pair) for pair in self.method_options],
            "kernel": str(self.kernel).lower(),
            "gamma": _float_token(self.gamma),
            "weight": None if self.weight is None else _float_token(self.weight),
            "eps": None if self.eps is None else _float_token(self.eps),
            "tau": None if self.tau is None else _float_token(self.tau),
            "atol": None if self.atol is None else _float_token(self.atol),
            "grid": [
                int(grid.width),
                int(grid.height),
                [_float_token(v) for v in grid.low],
                [_float_token(v) for v in grid.high],
            ],
            "tile_size": (
                None
                if _normalize_tile_size(self.options.tile_size) is None
                else list(_normalize_tile_size(self.options.tile_size))
            ),
        }
        return payload

    def fingerprint(self, extra: Optional[Mapping[str, Any]] = None) -> str:
        """Stable hex digest identifying the rendered bytes.

        ``extra`` mixes caller context into the key (the tile service
        passes dataset id + version, colormap and tile XYZ). Two
        requests hash equal iff every value-shaping field — and every
        ``extra`` item — is equal; see :meth:`fingerprint_payload` for
        exactly which fields those are.
        """
        payload = self.fingerprint_payload()
        if extra:
            payload["extra"] = {str(key): extra[key] for key in sorted(extra)}
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), default=repr
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
