"""Visualization layer: pixel grids, colour maps, renderers, metrics."""

from repro.visual.grid import PixelGrid
from repro.visual.colormap import Colormap, get_colormap, two_color_map
from repro.visual.image import write_png, write_ppm
from repro.visual.kdv import KDVRenderer
from repro.visual.metrics import (
    average_relative_error,
    max_relative_error,
    threshold_confusion,
)
from repro.visual.request import RenderOptions, RenderRequest
from repro.visual.streaming import StreamingKDV
from repro.visual.progressive import (
    ProgressiveRenderer,
    ProgressiveResult,
    quadtree_regions,
)

__all__ = [
    "PixelGrid",
    "RenderOptions",
    "RenderRequest",
    "Colormap",
    "get_colormap",
    "two_color_map",
    "write_png",
    "write_ppm",
    "KDVRenderer",
    "ProgressiveRenderer",
    "StreamingKDV",
    "ProgressiveResult",
    "quadtree_regions",
    "average_relative_error",
    "max_relative_error",
    "threshold_confusion",
]
