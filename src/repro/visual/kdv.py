"""KDV colour-map rendering — the library's visualization front door.

:class:`KDVRenderer` evaluates a kernel density over every pixel of a
:class:`~repro.visual.grid.PixelGrid` using any registered method and
returns the density image (εKDV) or hotspot mask (τKDV). Fitted methods
are cached per renderer, so sweeping ε or τ (as the experiments do)
pays the index build once — matching how the paper separates offline and
online stages.

:meth:`KDVRenderer.render` is the single entrypoint: it consumes a
frozen :class:`~repro.visual.request.RenderRequest` (what to render)
carrying :class:`~repro.visual.request.RenderOptions` (how to run it).
The historical ``render_eps`` / ``render_tau`` /
``render_eps_anytime`` / ``render_tau_anytime`` signatures remain as
thin shims over it; passing execution keywords (``tile_size``,
``workers``, ``trace``, ``budget``, ...) through the ε/τ shims emits a
:class:`DeprecationWarning` — those belong on ``RenderOptions`` now
(see ``docs/api.md`` for the mapping table).
"""

from __future__ import annotations

import hashlib
import time
import warnings
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.contracts.runtime import invariants_enabled
from repro.core import stopping
from repro.core.backends import resolve_backend
from repro.core.engine import QueryStats
from repro.core.exact import exact_density
from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_gamma
from repro.errors import InvalidParameterError, UnsupportedOperationError
from repro.methods.base import IndexedMethod, Method
from repro.methods.registry import create_method
from repro.obs.runtime import current_tracer, trace_to
from repro.resilience.budget import (
    STOP_TILE_FAILURES,
    Budget,
    CancellationToken,
)
from repro.resilience.checkpoint import TileLedger
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.result import DegradedResult, RenderOutcome
from repro.resilience.retry import RetryPolicy, TransientTileError
from repro.resilience.runner import run_tiles
from repro.utils.validation import check_points, check_positive
from repro.visual.colormap import get_colormap, two_color_map
from repro.visual.grid import PixelGrid
from repro.visual.image import write_png
from repro.visual.request import OP_EPS, OP_TAU, RenderOptions, RenderRequest

if TYPE_CHECKING:
    import os
    from pathlib import Path
    from typing import Callable, Mapping

    from repro._types import BoolArray, FloatArray, IntArray, KernelLike, PointLike
    from repro.core.batch_engine import BatchRefinementEngine
    from repro.obs.sinks import TraceSink
    from repro.visual.colormap import Colormap

    #: Anything ``repro.obs.sinks.resolve_sink`` accepts as a trace target.
    TraceTarget = TraceSink | Callable[[Mapping[str, Any]], object] | str | Path | None

    #: Anything the render methods accept as a fault specification.
    FaultsLike = FaultInjector | FaultPlan | str | None

__all__ = ["KDVRenderer"]

#: The paper's τKDV threshold offsets: tau = mu + k * sigma (Section 7.2).
DEFAULT_TAU_OFFSETS = (-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3)

#: Default tile edge (pixels) for tiled/batched rendering: 64x64 tiles
#: give ~4k-pixel batches — wide enough to amortise per-node Python
#: overhead, small enough that retired pixels stop costing quickly.
DEFAULT_TILE_SIZE = 64

#: One-shot latch for the GIL-bound thread-worker warning below.
_gil_warning_emitted = False


def _reset_gil_warning() -> None:
    """Re-arm the one-shot thread-scaling warning (test hook)."""
    global _gil_warning_emitted
    _gil_warning_emitted = False


def _maybe_warn_gil_threads(workers: int, backend_name: str | None) -> None:
    """Warn (once) that thread workers cannot scale a GIL-bound backend.

    The reference numpy backend holds the GIL through the whole
    refinement loop, so ``workers=N`` threads *interleave* rather than
    parallelise — the engine benchmark measures 2.78 s for a 4-thread
    tiled render that takes 2.37 s single-threaded (the threads only add
    scheduling overhead). Emitted once per process so render sweeps are
    not drowned in repeats.
    """
    global _gil_warning_emitted
    if _gil_warning_emitted:
        return
    backend = resolve_backend(backend_name)
    if backend.releases_gil:
        return
    _gil_warning_emitted = True
    warnings.warn(
        f"workers={workers} with the GIL-bound {backend.name!r} backend runs "
        "tiles on threads that cannot execute in parallel: the engine "
        "benchmark measures 2.78 s for a 4-thread tiled render vs 2.37 s "
        "single-threaded. Pass RenderOptions(executor='process') for real "
        "parallelism, or install the [perf] extra and select the 'numba' "
        "backend (REPRO_BACKEND=numba), whose kernels release the GIL",
        RuntimeWarning,
        stacklevel=3,
    )


class KDVRenderer:
    """Render kernel density colour maps over a pixel grid.

    Parameters
    ----------
    points:
        2-D data points.
    resolution:
        ``(width, height)`` of the pixel grid (ignored when ``grid`` is
        given).
    kernel:
        Kernel name or instance.
    gamma:
        Bandwidth parameter; defaults to Scott's rule (as in the paper).
    weight:
        Per-point weight; defaults to ``1 / n``.
    grid:
        Optional explicit :class:`~repro.visual.grid.PixelGrid`.
    point_weights:
        Optional non-negative per-point multipliers ``w_i`` of shape
        ``(n,)`` — the density becomes ``weight * sum_i w_i K(q, p_i)``.
        Used by the coreset tier, where each representative stands for
        ``w_i`` original points.
    method_options:
        Default keyword arguments for method construction (e.g.
        ``leaf_size``).
    """

    def __init__(
        self,
        points: PointLike,
        resolution: tuple[int, int] = (320, 240),
        kernel: KernelLike = "gaussian",
        gamma: float | None = None,
        weight: float | None = None,
        grid: PixelGrid | None = None,
        point_weights: PointLike | None = None,
        **method_options: Any,
    ) -> None:
        self.points = check_points(points)
        if self.points.shape[1] != 2:
            raise InvalidParameterError(
                f"KDV renders 2-D data, got {self.points.shape[1]} dims; "
                "reduce dimensionality first (see repro.data.pca_project)"
            )
        self.kernel = get_kernel(kernel)
        if gamma is None:
            gamma = scott_gamma(self.points, self.kernel)
        self.gamma = check_positive(gamma, "gamma")
        if weight is None:
            weight = 1.0 / self.points.shape[0]
        self.weight = check_positive(weight, "weight")
        if point_weights is not None:
            point_weights = np.ascontiguousarray(point_weights, dtype=np.float64)
            if point_weights.shape != (self.points.shape[0],):
                raise InvalidParameterError(
                    f"point_weights must have shape ({self.points.shape[0]},), "
                    f"got {point_weights.shape}"
                )
        self.point_weights = point_weights
        if grid is None:
            width, height = resolution
            grid = PixelGrid.fit(self.points, width, height)
        self.grid = grid
        self.method_options = method_options
        self._methods: dict[str, Method] = {}
        self._exact_image: FloatArray | None = None

    # -- method management -------------------------------------------------

    def get_method(self, method: str | Method) -> Method:
        """Return a fitted method instance (cached per name)."""
        if isinstance(method, Method):
            if method.points is None:
                method.fit(
                    self.points, self.kernel, self.gamma, self.weight,
                    point_weights=self.point_weights,
                )
            return method
        key = str(method).lower()
        fitted = self._methods.get(key)
        if fitted is None:
            fitted = create_method(key, **self.method_options)
            fitted.fit(
                self.points, self.kernel, self.gamma, self.weight,
                point_weights=self.point_weights,
            )
            self._methods[key] = fitted
        return fitted

    # -- rendering ----------------------------------------------------------

    def render_exact(self) -> FloatArray:
        """The exact density image, shape ``(height, width)`` (cached)."""
        if self._exact_image is None:
            values = exact_density(
                self.points, self.grid.centers(), self.kernel, self.gamma,
                self.weight, point_weights=self.point_weights,
            )
            self._exact_image = self.grid.to_image(values)
        return self._exact_image

    def _render_tiled(
        self,
        fitted: IndexedMethod,
        evaluate: Callable[[BatchRefinementEngine, FloatArray], np.ndarray],
        dtype: type,
        tile_size: int | tuple[int, int],
        workers: int | None,
        op: str,
        params: dict[str, float] | None = None,
        executor: str | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Evaluate every tile through a batched engine; return flat values.

        Sequential by default (one shared engine, unified stats); with
        ``workers=N`` the tiles drain from a shared deque into ``N``
        threads, each refining with a private engine and private
        :class:`~repro.core.engine.QueryStats`, or — with
        ``executor="process"`` — into ``N`` worker *processes* through
        the method's cached
        :class:`~repro.visual.executors.ProcessTileExecutor` (same tile
        partition, bit-identical values, no GIL contention). Tiles write
        disjoint slices of the output, so no synchronisation of the
        value array is needed.

        Error handling is all-or-nothing: the first tile that raises
        sets a shared cancel flag (so the remaining workers stop
        draining instead of finishing a partial image), the exception
        propagates to the caller, and **no** per-worker stats are merged
        into the method's ledger — a retried render therefore cannot
        double-count the work of workers that had already succeeded.
        The process branch keeps the same contract: a failed or
        interrupted run raises before any stats merge.
        """
        tracer = current_tracer()
        render_start = time.perf_counter()
        centers = self.grid.centers()
        out = np.empty(self.grid.num_pixels, dtype=dtype)
        tile_list = list(self.grid.tiles(tile_size))
        if executor == "process" and workers is not None:
            assert params is not None
            from repro.visual.executors import TileJob

            pool = fitted.process_executor(int(workers), backend)
            jobs = [
                TileJob(index, tile, centers[tile])
                for index, tile in enumerate(tile_list)
            ]
            outcome = pool.run(
                jobs, op=op, params=params, bounds=False, tracer=tracer
            )
            if outcome.keyboard_interrupt:
                raise KeyboardInterrupt
            if outcome.errors:
                raise outcome.errors[min(outcome.errors)]
            for index, tile in enumerate(tile_list):
                out[tile] = outcome.payloads[index]
            fitted.stats.merge(outcome.stats)
            if tracer is not None:
                ordinals = sorted(outcome.worker_seconds)
                tracer.render(
                    op=op,
                    pixels=self.grid.num_pixels,
                    tiles=len(tile_list),
                    workers=pool.workers,
                    seconds=time.perf_counter() - render_start,
                    worker_busy=[outcome.worker_seconds[i] for i in ordinals],
                )
            return out
        if workers is None or int(workers) <= 1:
            engine = (
                fitted.batch_engine
                if backend is None
                else fitted.make_batch_engine(fitted.stats, backend=backend)
            )
            assert engine is not None
            for index, tile in enumerate(tile_list):
                tile_start = time.perf_counter()
                out[tile] = evaluate(engine, centers[tile])
                if tracer is not None:
                    tracer.tile(
                        index=index,
                        rows=int(tile.shape[0]),
                        seconds=time.perf_counter() - tile_start,
                        worker=0,
                        op=op,
                    )
            if tracer is not None:
                tracer.render(
                    op=op,
                    pixels=self.grid.num_pixels,
                    tiles=len(tile_list),
                    workers=1,
                    seconds=time.perf_counter() - render_start,
                )
            return out

        from collections import deque
        from concurrent.futures import ThreadPoolExecutor
        from threading import Event

        _maybe_warn_gil_threads(
            int(workers), backend if backend is not None else fitted.backend
        )
        pending = deque(enumerate(tile_list))
        cancel = Event()

        def drain(worker_id: int) -> tuple[QueryStats, float]:
            stats = QueryStats()
            engine = fitted.make_batch_engine(stats, backend=backend)
            busy = 0.0
            while not cancel.is_set():
                try:
                    index, tile = pending.popleft()
                except IndexError:
                    break
                tile_start = time.perf_counter()
                try:
                    out[tile] = evaluate(engine, centers[tile])
                except BaseException:
                    cancel.set()
                    raise
                seconds = time.perf_counter() - tile_start
                busy += seconds
                if tracer is not None:
                    tracer.tile(
                        index=index,
                        rows=int(tile.shape[0]),
                        seconds=seconds,
                        worker=worker_id,
                        op=op,
                    )
            return stats, busy

        workers = int(workers)
        results: list[tuple[QueryStats, float]] = []
        first_error: BaseException | None = None
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(drain, worker_id) for worker_id in range(workers)]
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as error:  # collected, re-raised below
                    if first_error is None:
                        first_error = error
        if first_error is not None:
            raise first_error
        for stats, __ in results:
            fitted.stats.merge(stats)
        if tracer is not None:
            tracer.render(
                op=op,
                pixels=self.grid.num_pixels,
                tiles=len(tile_list),
                workers=workers,
                seconds=time.perf_counter() - render_start,
                worker_busy=[busy for __, busy in results],
            )
        return out

    def _tiled_method(self, method: str | Method, operation: str) -> IndexedMethod:
        """Resolve ``method`` for tiled rendering (index-based only)."""
        fitted = self.get_method(method)
        if not isinstance(fitted, IndexedMethod):
            raise UnsupportedOperationError(
                f"tiled rendering needs an index-based method, got {fitted.name!r}"
            )
        fitted._require(operation)
        return fitted

    def _resilience_engaged(
        self,
        tile_size: int | tuple[int, int] | None,
        workers: int | None,
        budget: Budget | None,
        cancel: CancellationToken | None,
        resume_from: str | os.PathLike[str] | None,
        checkpoint: str | os.PathLike[str] | None,
        faults: FaultsLike,
        retry: RetryPolicy | None,
    ) -> bool:
        """Whether a render call opted into the resilient anytime path.

        Opt-in is explicit: any resilience keyword, or — for renders
        that are already tiled — a fault plan in the ``REPRO_FAULTS``
        environment (the CI chaos hook). Plain renders are untouched,
        so the default paths stay bit-identical to previous releases,
        and the strict tiled path keeps its all-or-nothing error
        propagation for callers that rely on it.
        """
        if any(
            value is not None
            for value in (budget, cancel, resume_from, checkpoint, faults, retry)
        ):
            return True
        if tile_size is None and workers is None:
            return False
        plan = FaultPlan.from_env()
        return plan is not None and not plan.empty

    # -- unified entrypoint --------------------------------------------------

    def render(
        self, request: RenderRequest
    ) -> FloatArray | BoolArray | RenderOutcome:
        """Render one :class:`~repro.visual.request.RenderRequest`.

        The single entrypoint every public render path funnels through.
        The request is :meth:`~repro.visual.request.RenderRequest.resolve`-d
        against this renderer first (filling kernel/bandwidth/grid
        defaults, rejecting mismatches), then dispatched:

        * ``op="eps"`` returns the density image (``float64``,
          ``(height, width)``);
        * ``op="tau"`` returns the hotspot mask (``bool``);
        * ``options.anytime=True`` returns the full
          :class:`~repro.resilience.result.RenderOutcome` instead.

        A request targeting a different ``grid`` renders through a
        shared-index clone (:meth:`with_grid`), so viewport/tile
        requests pay no extra index build. Semantics of the individual
        paths (plain, strict tiled, resilient anytime) are exactly those
        documented on the legacy wrappers.
        """
        resolved = request.resolve(self)
        options = resolved.options
        if options.trace is not None:
            with trace_to(options.trace):
                return self._render_resolved(
                    resolved.replace(options=options.replace(trace=None))
                )
        return self._render_resolved(resolved)

    def _render_resolved(
        self, request: RenderRequest
    ) -> FloatArray | BoolArray | RenderOutcome:
        target = self if request.grid is self.grid else self.with_grid(request.grid)
        if request.op == OP_EPS:
            return target._render_eps_resolved(request)
        return target._render_tau_resolved(request)

    def _render_eps_resolved(
        self, request: RenderRequest
    ) -> FloatArray | RenderOutcome:
        options = request.options
        assert request.eps is not None and request.atol is not None
        eps = float(request.eps)
        atol = float(request.atol)
        method = request.method
        if options.anytime or self._resilience_engaged(
            options.tile_size, options.workers, options.budget, options.cancel,
            options.resume_from, options.checkpoint, options.faults, options.retry,
        ):
            fitted = self._tiled_method(method, "eps")
            outcome = self._render_anytime(
                fitted, "eps", eps=eps, atol=atol, tau=None,
                tile_size=options.tile_size, workers=options.workers,
                budget=options.budget, cancel=options.cancel,
                resume_from=options.resume_from, checkpoint=options.checkpoint,
                faults=options.faults, retry=options.retry,
                executor=options.executor, backend=options.backend,
            )
            if options.anytime:
                return outcome
            degraded = outcome.degraded
            if degraded is not None and degraded.reason == STOP_TILE_FAILURES:
                raise TransientTileError(
                    f"eps render lost {len(degraded.tiles_failed)} tile(s) "
                    "after retries; render with anytime=True for the partial "
                    "envelopes"
                )
            return outcome.image
        if (
            options.tile_size is None
            and options.workers is None
            and options.backend is None
            and options.executor is None
        ):
            fitted = self.get_method(method)
            tracer = current_tracer()
            start = time.perf_counter()
            values = fitted.batch_eps(self.grid.centers(), eps, atol=atol)
            if tracer is not None:
                with tracer.method_scope(fitted.name):
                    tracer.render(
                        op="eps",
                        pixels=self.grid.num_pixels,
                        tiles=0,
                        workers=1,
                        seconds=time.perf_counter() - start,
                    )
            return self.grid.to_image(values)
        tiled = self._tiled_method(method, "eps")

        def evaluate(engine: BatchRefinementEngine, tile: FloatArray) -> np.ndarray:
            return engine.query_eps_batch(tile, eps, atol=atol)

        values = self._render_with_scope(
            tiled,
            evaluate,
            np.float64,
            DEFAULT_TILE_SIZE if options.tile_size is None else options.tile_size,
            options.workers,
            "eps",
            params={"eps": eps, "atol": atol},
            executor=options.executor,
            backend=options.backend,
        )
        if invariants_enabled() and tiled.deterministic_guarantee:
            tiled._check_eps_agreement(self.grid.centers(), values, eps, atol)
        return self.grid.to_image(values)

    def _render_tau_resolved(
        self, request: RenderRequest
    ) -> BoolArray | RenderOutcome:
        options = request.options
        assert request.tau is not None
        tau = float(request.tau)
        method = request.method
        if options.anytime or self._resilience_engaged(
            options.tile_size, options.workers, options.budget, options.cancel,
            options.resume_from, options.checkpoint, options.faults, options.retry,
        ):
            fitted = self._tiled_method(method, "tau")
            outcome = self._render_anytime(
                fitted, "tau", eps=None, atol=None, tau=tau,
                tile_size=options.tile_size, workers=options.workers,
                budget=options.budget, cancel=options.cancel,
                resume_from=options.resume_from, checkpoint=options.checkpoint,
                faults=options.faults, retry=options.retry,
                executor=options.executor, backend=options.backend,
            )
            if options.anytime:
                return outcome
            degraded = outcome.degraded
            if degraded is not None and degraded.reason == STOP_TILE_FAILURES:
                raise TransientTileError(
                    f"tau render lost {len(degraded.tiles_failed)} tile(s) "
                    "after retries; render with anytime=True for the partial "
                    "envelopes"
                )
            mask: BoolArray = outcome.image.astype(bool)
            return mask
        if (
            options.tile_size is None
            and options.workers is None
            and options.backend is None
            and options.executor is None
        ):
            fitted = self.get_method(method)
            tracer = current_tracer()
            start = time.perf_counter()
            plain_mask = fitted.batch_tau(self.grid.centers(), tau)
            if tracer is not None:
                with tracer.method_scope(fitted.name):
                    tracer.render(
                        op="tau",
                        pixels=self.grid.num_pixels,
                        tiles=0,
                        workers=1,
                        seconds=time.perf_counter() - start,
                    )
            return self.grid.to_image(plain_mask)
        tiled = self._tiled_method(method, "tau")

        def evaluate(engine: BatchRefinementEngine, tile: FloatArray) -> np.ndarray:
            return engine.query_tau_batch(tile, tau)

        tiled_mask = self._render_with_scope(
            tiled,
            evaluate,
            np.bool_,
            DEFAULT_TILE_SIZE if options.tile_size is None else options.tile_size,
            options.workers,
            "tau",
            params={"tau": tau},
            executor=options.executor,
            backend=options.backend,
        )
        return self.grid.to_image(tiled_mask)

    # -- legacy wrappers -----------------------------------------------------

    def _warn_legacy_kwargs(self, name: str, **kwargs: Any) -> None:
        """Deprecation shim: execution kwargs moved to ``RenderOptions``."""
        used = sorted(key for key, value in kwargs.items() if value is not None)
        if used:
            warnings.warn(
                f"KDVRenderer.{name}({', '.join(used)}=...): passing execution "
                "keywords here is deprecated and will be removed in repro 2.0; "
                "put them on RenderOptions and call "
                "KDVRenderer.render(RenderRequest(...)) instead "
                "(see docs/api.md)",
                DeprecationWarning,
                stacklevel=3,
            )

    def render_eps(
        self,
        eps: float = 0.01,
        method: str | Method = "quad",
        *,
        atol: float | None = None,
        tile_size: int | tuple[int, int] | None = None,
        workers: int | None = None,
        trace: TraceTarget = None,
        budget: Budget | None = None,
        cancel: CancellationToken | None = None,
        resume_from: str | os.PathLike[str] | None = None,
        checkpoint: str | os.PathLike[str] | None = None,
        faults: FaultsLike = None,
        retry: RetryPolicy | None = None,
    ) -> FloatArray:
        """εKDV colour-map values, shape ``(height, width)``.

        Thin wrapper over :meth:`render`; the bare
        ``render_eps(eps, method)`` form is stable, but every
        execution keyword below is deprecated here — put it on
        :class:`~repro.visual.request.RenderOptions` instead (a
        :class:`DeprecationWarning` is emitted when one is passed).

        ``atol`` defaults to a vanishing fraction of a single point's
        weight (``1e-9 * w``), which caps the work spent on pixels whose
        exact density underflows — and absorbs the ~``1e-16 * F_max``
        floating-point floor inherent to incremental refinement — while
        leaving the ``(1 ± eps)`` contract intact everywhere a pixel is
        visibly coloured.

        Passing ``tile_size`` and/or ``workers`` opts into tiled
        rendering through the batched engine
        (:class:`~repro.core.batch_engine.BatchRefinementEngine`):
        row-major pixel tiles are refined whole-batch-at-a-time, and
        ``workers=N`` spreads tiles over ``N`` threads with per-worker
        statistics merged back into :attr:`IndexedMethod.stats`.
        Requires an index-based method; per-pixel answers keep the exact
        same ``(1 ± eps)`` contract as the scalar path.

        ``trace`` scopes a tracer around just this render (see
        :func:`repro.obs.trace_to`): pass a JSONL path, a
        :class:`~repro.obs.sinks.TraceSink`, or a callable receiving
        each event dict. Independent of the ambient ``REPRO_TRACE``.

        Any resilience keyword (``budget`` / ``cancel`` /
        ``resume_from`` / ``checkpoint`` / ``faults`` / ``retry`` — see
        :meth:`render_eps_anytime`) routes through the anytime tiled
        path and returns its best-so-far image; a render degraded by
        unrecovered tile failures raises
        :class:`~repro.resilience.retry.TransientTileError` instead of
        silently returning an image with unfinished tiles. Render with
        ``RenderOptions(anytime=True)`` when the degradation metadata
        and per-pixel envelopes are wanted.
        """
        self._warn_legacy_kwargs(
            "render_eps", tile_size=tile_size, workers=workers, trace=trace,
            budget=budget, cancel=cancel, resume_from=resume_from,
            checkpoint=checkpoint, faults=faults, retry=retry,
        )
        request = RenderRequest(
            op=OP_EPS, eps=eps, method=method, atol=atol,
            options=RenderOptions(
                tile_size=tile_size, workers=workers, trace=trace,
                budget=budget, cancel=cancel, resume_from=resume_from,
                checkpoint=checkpoint, faults=faults, retry=retry,
            ),
        )
        image: FloatArray = self.render(request)  # type: ignore[assignment]
        return image

    def render_tau(
        self,
        tau: float,
        method: str | Method = "quad",
        *,
        tile_size: int | tuple[int, int] | None = None,
        workers: int | None = None,
        trace: TraceTarget = None,
        budget: Budget | None = None,
        cancel: CancellationToken | None = None,
        resume_from: str | os.PathLike[str] | None = None,
        checkpoint: str | os.PathLike[str] | None = None,
        faults: FaultsLike = None,
        retry: RetryPolicy | None = None,
    ) -> BoolArray:
        """τKDV hotspot mask, boolean, shape ``(height, width)``.

        Thin wrapper over :meth:`render`, with the same deprecation
        shim as :meth:`render_eps`: the bare ``render_tau(tau, method)``
        form is stable, execution keywords warn. ``tile_size`` /
        ``workers`` opt into tiled batched rendering and ``trace``
        scopes a tracer around the render, exactly as in
        :meth:`render_eps`. The resilience keywords likewise route
        through the anytime path; pixels a tripped budget left
        undecided render conservatively as cold.
        """
        self._warn_legacy_kwargs(
            "render_tau", tile_size=tile_size, workers=workers, trace=trace,
            budget=budget, cancel=cancel, resume_from=resume_from,
            checkpoint=checkpoint, faults=faults, retry=retry,
        )
        request = RenderRequest(
            op=OP_TAU, tau=tau, method=method,
            options=RenderOptions(
                tile_size=tile_size, workers=workers, trace=trace,
                budget=budget, cancel=cancel, resume_from=resume_from,
                checkpoint=checkpoint, faults=faults, retry=retry,
            ),
        )
        mask: BoolArray = self.render(request)  # type: ignore[assignment]
        return mask

    def _render_with_scope(
        self,
        fitted: IndexedMethod,
        evaluate: Callable[[BatchRefinementEngine, FloatArray], np.ndarray],
        dtype: type,
        tile_size: int | tuple[int, int],
        workers: int | None,
        op: str,
        params: dict[str, float] | None = None,
        executor: str | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """:meth:`_render_tiled` with the method name attached to events."""
        tracer = current_tracer()
        if tracer is None:
            return self._render_tiled(
                fitted, evaluate, dtype, tile_size, workers, op,
                params=params, executor=executor, backend=backend,
            )
        with tracer.method_scope(fitted.name):
            return self._render_tiled(
                fitted, evaluate, dtype, tile_size, workers, op,
                params=params, executor=executor, backend=backend,
            )

    # -- anytime (resilient) rendering ---------------------------------------

    def render_eps_anytime(
        self,
        eps: float = 0.01,
        method: str | Method = "quad",
        *,
        atol: float | None = None,
        tile_size: int | tuple[int, int] | None = None,
        workers: int | None = None,
        budget: Budget | None = None,
        cancel: CancellationToken | None = None,
        resume_from: str | os.PathLike[str] | None = None,
        checkpoint: str | os.PathLike[str] | None = None,
        faults: FaultsLike = None,
        retry: RetryPolicy | None = None,
        trace: TraceTarget = None,
    ) -> RenderOutcome:
        """εKDV as an anytime render: best-so-far envelopes, never a hang.

        Runs the tiled batched refinement under the resilience layer
        (:mod:`repro.resilience`) and returns a
        :class:`~repro.resilience.result.RenderOutcome`: the midpoint
        image, the per-pixel ``(LB, UB)`` envelope images (always
        satisfying ``LB <= F <= UB``), the resolved-pixel mask, and —
        when the render stopped early — structured
        :class:`~repro.resilience.result.DegradedResult` metadata.

        Parameters beyond :meth:`render_eps`:

        budget:
            A :class:`~repro.resilience.budget.Budget` (wall-clock
            deadline, kernel-evaluation cap, memory cap). When it trips,
            refinement stops cooperatively at the next frontier pop and
            unresolved pixels keep their current envelopes.
        cancel:
            An externally owned
            :class:`~repro.resilience.budget.CancellationToken`
            (overrides ``budget``'s token; pass ``budget`` via
            ``CancellationToken(budget)`` in that case).
        resume_from:
            Path of a checkpoint written by ``checkpoint=``; completed
            tiles are loaded instead of recomputed. The checkpoint
            signature must match this render exactly
            (:class:`~repro.errors.CheckpointError` otherwise), and the
            resumed image is bit-identical to an uninterrupted run.
        checkpoint:
            Path to write the completed-tile ledger to (written on
            success, cancellation, and fatal errors alike).
        faults:
            Fault injection: a
            :class:`~repro.resilience.faults.FaultInjector`, a
            :class:`~repro.resilience.faults.FaultPlan`, or a spec
            string (``"worker_crash:0.05,..."``). Defaults to the
            ``REPRO_FAULTS`` environment plan.
        retry:
            :class:`~repro.resilience.retry.RetryPolicy` for transient
            tile failures (default: 4 attempts, exponential backoff,
            quarantine after 3 consecutive failures per worker).

        A run with no budget, no faults and no failures is bit-identical
        to ``render_eps(..., tile_size=..., workers=...)``.

        Thin wrapper over :meth:`render` with
        ``RenderOptions(anytime=True)``.
        """
        request = RenderRequest(
            op=OP_EPS, eps=eps, method=method, atol=atol,
            options=RenderOptions(
                tile_size=tile_size, workers=workers, trace=trace,
                budget=budget, cancel=cancel, resume_from=resume_from,
                checkpoint=checkpoint, faults=faults, retry=retry,
                anytime=True,
            ),
        )
        outcome: RenderOutcome = self.render(request)  # type: ignore[assignment]
        return outcome

    def render_tau_anytime(
        self,
        tau: float,
        method: str | Method = "quad",
        *,
        tile_size: int | tuple[int, int] | None = None,
        workers: int | None = None,
        budget: Budget | None = None,
        cancel: CancellationToken | None = None,
        resume_from: str | os.PathLike[str] | None = None,
        checkpoint: str | os.PathLike[str] | None = None,
        faults: FaultsLike = None,
        retry: RetryPolicy | None = None,
        trace: TraceTarget = None,
    ) -> RenderOutcome:
        """τKDV as an anytime render (see :meth:`render_eps_anytime`).

        The outcome image is the boolean hot mask ``LB >= τ``:
        conservative under degradation, since a pixel whose interval
        still straddles ``τ`` renders cold until proven hot. The
        resolved mask marks pixels whose decision is certain.

        Thin wrapper over :meth:`render` with
        ``RenderOptions(anytime=True)``.
        """
        request = RenderRequest(
            op=OP_TAU, tau=tau, method=method,
            options=RenderOptions(
                tile_size=tile_size, workers=workers, trace=trace,
                budget=budget, cancel=cancel, resume_from=resume_from,
                checkpoint=checkpoint, faults=faults, retry=retry,
                anytime=True,
            ),
        )
        outcome: RenderOutcome = self.render(request)  # type: ignore[assignment]
        return outcome

    def _render_signature(
        self,
        fitted: IndexedMethod,
        op: str,
        params: dict[str, float],
        tile_shape: tuple[int, int],
    ) -> dict[str, Any]:
        """Checkpoint signature: everything that shapes per-tile values.

        Two renders with equal signatures produce bit-identical tile
        values (dataset, kernel, bandwidth, grid geometry, method and
        its options, operation parameters, and the tile partitioning
        that defines tile indices), so resuming across them is safe.
        """
        return {
            "format": "repro-render-v1",
            "points_sha1": hashlib.sha1(self.points.tobytes()).hexdigest(),
            "point_weights_sha1": (
                None
                if self.point_weights is None
                else hashlib.sha1(self.point_weights.tobytes()).hexdigest()
            ),
            "n": int(self.points.shape[0]),
            "kernel": self.kernel.name,
            "gamma": float(self.gamma),
            "weight": float(self.weight),
            "grid": [
                int(self.grid.width),
                int(self.grid.height),
                [float(v) for v in self.grid.low],
                [float(v) for v in self.grid.high],
            ],
            "method": fitted.name,
            "method_options": {
                key: repr(value)
                for key, value in sorted(self.method_options.items())
            },
            "op": op,
            "params": params,
            "tile": [int(tile_shape[0]), int(tile_shape[1])],
        }

    def _run_tiles_process(
        self,
        fitted: IndexedMethod,
        tile_list: list[IntArray],
        centers: FloatArray,
        op: str,
        params: dict[str, float],
        *,
        skip: set[int] | None,
        workers: int,
        backend: str | None,
        token: CancellationToken,
        tracer: Any,
        store: Callable[[int, IntArray, FloatArray, FloatArray], None],
        tile_complete: Callable[[FloatArray, FloatArray], bool],
        worker_stats: list[QueryStats],
        faults: FaultPlan | None = None,
    ) -> Any:
        """Anytime tile drain over the method's process pool.

        The process-executor counterpart of
        :func:`repro.resilience.runner.run_tiles` for the (no retry)
        configuration: tiles drain from the pool's shared queue,
        envelopes stream back through ``store`` as they complete, and
        the parent token's latch (deadline, kernel budget, Ctrl-C)
        propagates to the workers through the shared cancellation slot —
        cut-short tiles land as *partial* with valid best-so-far
        ``(LB, UB)``, never as failures. ``faults`` (the process-level
        half of a fault plan) executes inside the workers; a worker a
        fault kills triggers the executor's supervised pool
        rebuild-and-replay. Returns the same
        :class:`~repro.resilience.runner.TileRunReport` shape the thread
        runner produces, so degradation metadata is uniform.
        """
        from repro.resilience.budget import STOP_INTERRUPT
        from repro.resilience.runner import TileRunReport
        from repro.visual.executors import TileJob

        run_start = time.perf_counter()
        pool = fitted.process_executor(int(workers), backend)
        jobs = [
            TileJob(index, tile_list[index], centers[tile_list[index]])
            for index in range(len(tile_list))
            if skip is None or index not in skip
        ]

        def on_result(index: int, payload: tuple[FloatArray, FloatArray]) -> None:
            lo, up = payload
            store(index, tile_list[index], lo, up)

        outcome = pool.run(
            jobs, op=op, params=params, bounds=True, token=token,
            tracer=tracer, on_result=on_result, faults=faults,
        )
        worker_stats.append(outcome.stats)
        if outcome.keyboard_interrupt and tracer is not None:
            tracer.recovery(action="cancel", reason=STOP_INTERRUPT)
        report = TileRunReport()
        for job in jobs:
            index = job.index
            if index in outcome.errors:
                report.failed[index] = str(outcome.errors[index])
            elif index in outcome.payloads:
                lo, up = outcome.payloads[index]
                if tile_complete(lo, up):
                    report.completed.append(index)
                else:
                    report.partial.append(index)
            else:
                report.unprocessed.append(index)
        report.elapsed_s = time.perf_counter() - run_start
        return report

    def _render_anytime(
        self,
        fitted: IndexedMethod,
        op: str,
        *,
        eps: float | None,
        atol: float | None,
        tau: float | None,
        tile_size: int | tuple[int, int] | None,
        workers: int | None,
        budget: Budget | None,
        cancel: CancellationToken | None,
        resume_from: str | os.PathLike[str] | None,
        checkpoint: str | os.PathLike[str] | None,
        faults: FaultsLike,
        retry: RetryPolicy | None,
        executor: str | None = None,
        backend: str | None = None,
    ) -> RenderOutcome:
        """Shared anytime ε/τ implementation over the resilient runner."""
        tracer = current_tracer()
        if tracer is not None:
            with tracer.method_scope(fitted.name):
                return self._render_anytime_impl(
                    fitted, op, eps=eps, atol=atol, tau=tau,
                    tile_size=tile_size, workers=workers, budget=budget,
                    cancel=cancel, resume_from=resume_from,
                    checkpoint=checkpoint, faults=faults, retry=retry,
                    executor=executor, backend=backend, tracer=tracer,
                )
        return self._render_anytime_impl(
            fitted, op, eps=eps, atol=atol, tau=tau, tile_size=tile_size,
            workers=workers, budget=budget, cancel=cancel,
            resume_from=resume_from, checkpoint=checkpoint, faults=faults,
            retry=retry, executor=executor, backend=backend, tracer=None,
        )

    def _render_anytime_impl(
        self,
        fitted: IndexedMethod,
        op: str,
        *,
        eps: float | None,
        atol: float | None,
        tau: float | None,
        tile_size: int | tuple[int, int] | None,
        workers: int | None,
        budget: Budget | None,
        cancel: CancellationToken | None,
        resume_from: str | os.PathLike[str] | None,
        checkpoint: str | os.PathLike[str] | None,
        faults: FaultsLike,
        retry: RetryPolicy | None,
        executor: str | None,
        backend: str | None,
        tracer: Any,
    ) -> RenderOutcome:
        start = time.perf_counter()
        centers = self.grid.centers()
        n_pixels = self.grid.num_pixels
        if tile_size is None:
            tile_size = DEFAULT_TILE_SIZE
        tile_shape = (
            (int(tile_size), int(tile_size))
            if np.isscalar(tile_size)
            else (int(tile_size[0]), int(tile_size[1]))  # type: ignore[index]
        )
        tile_list = list(self.grid.tiles(tile_size))
        n_tiles = len(tile_list)
        n_workers = None if workers is None else int(workers)

        token = cancel
        if token is None:
            token = budget.token() if budget is not None else CancellationToken()
        token.start()

        injector: FaultInjector | None
        if isinstance(faults, FaultInjector):
            injector = faults
        else:
            plan: FaultPlan | None
            if isinstance(faults, FaultPlan):
                plan = faults
            elif isinstance(faults, str):
                plan = FaultPlan.parse(faults)
            else:
                plan = FaultPlan.from_env()
            injector = (
                FaultInjector(plan, tracer)
                if plan is not None and not plan.empty
                else None
            )

        # The initial envelope is the root node's bounds over every
        # pixel: valid before any refinement runs, so even a render
        # cancelled on its very first tile returns LB <= F <= UB
        # everywhere.
        engine0 = (
            fitted.batch_engine
            if backend is None
            else fitted.make_batch_engine(fitted.stats, backend=backend)
        )
        assert engine0 is not None
        lower, upper = engine0.root_envelope(centers)
        completed_flags = np.zeros(n_tiles, dtype=bool)

        if op == "eps":
            assert eps is not None and atol is not None
            params = {"eps": eps, "atol": atol}
            one_plus_eps = 1.0 + eps

            def evaluate(
                engine: BatchRefinementEngine, pixels: IntArray
            ) -> tuple[FloatArray, FloatArray]:
                return engine.query_eps_bounds(
                    centers[pixels], eps, atol=atol, cancel=token
                )

            def resolved_rows(lo: FloatArray, up: FloatArray) -> BoolArray:
                return stopping.eps_stop_mask(lo, up, one_plus_eps, 0.0, atol)

        else:
            assert tau is not None
            params = {"tau": tau}

            def evaluate(
                engine: BatchRefinementEngine, pixels: IntArray
            ) -> tuple[FloatArray, FloatArray]:
                return engine.query_tau_bounds(centers[pixels], tau, cancel=token)

            def resolved_rows(lo: FloatArray, up: FloatArray) -> BoolArray:
                return stopping.tau_stop_mask(lo, up, tau)

        signature = self._render_signature(fitted, op, params, tile_shape)
        skip: set[int] | None = None
        if resume_from is not None:
            ledger = TileLedger.load(resume_from)
            ledger.require_signature(signature)
            skip = ledger.completed_tiles()
            for index in skip:
                pixels = tile_list[index]
                lower[pixels] = ledger.lower[pixels]
                upper[pixels] = ledger.upper[pixels]
                completed_flags[index] = True

        def store(
            index: int, pixels: IntArray, lo: FloatArray, up: FloatArray
        ) -> None:
            lower[pixels] = lo
            upper[pixels] = up
            if bool(resolved_rows(lo, up).all()):
                completed_flags[index] = True

        def tile_complete(lo: FloatArray, up: FloatArray) -> bool:
            return bool(resolved_rows(lo, up).all())

        worker_stats: list[QueryStats] = []

        def make_engine(worker_id: int) -> BatchRefinementEngine:
            if n_workers is None or n_workers <= 1:
                assert engine0 is not None
                return engine0
            stats = QueryStats()
            worker_stats.append(stats)
            return fitted.make_batch_engine(stats, backend=backend)

        use_process = executor == "process" and n_workers is not None
        process_faults: FaultPlan | None = None
        if use_process and injector is not None and retry is None:
            # Process-level fault kinds (worker_kill / pool_break /
            # slow_response) execute *inside* worker processes, so a
            # plan made only of those stays on the process path — that
            # is what lets CI chaos-test the supervised pool for real.
            proc_plan, thread_plan = injector.plan.partition_process()
            if thread_plan.empty:
                process_faults = None if proc_plan.empty else proc_plan
                injector = None
        if use_process and (injector is not None or retry is not None):
            warnings.warn(
                "thread-level faults/retry are features of the thread tile "
                "runner; executor='process' falls back to thread workers "
                "for this render (process-level fault kinds alone — "
                "worker_kill/pool_break/slow_response — keep the process "
                "path)",
                RuntimeWarning,
                stacklevel=4,
            )
            use_process = False
        if not use_process and n_workers is not None and n_workers > 1:
            _maybe_warn_gil_threads(
                n_workers, backend if backend is not None else fitted.backend
            )

        report = None
        try:
            if use_process:
                report = self._run_tiles_process(
                    fitted, tile_list, centers, op, params, skip=skip,
                    workers=n_workers, backend=backend, token=token,
                    tracer=tracer, store=store, tile_complete=tile_complete,
                    worker_stats=worker_stats, faults=process_faults,
                )
            else:
                report = run_tiles(
                    tile_list, evaluate, store, tile_complete, make_engine,
                    token=token, retry=retry, faults=injector, tracer=tracer,
                    workers=n_workers, skip=skip, op=op,
                )
        finally:
            # Stats merge unconditionally (unlike the strict tiled
            # path's all-or-nothing merge): partial work is this path's
            # deliverable, so the ledger must account for it. The
            # checkpoint is written even when a fatal error propagates,
            # so completed tiles survive a crash.
            for stats in worker_stats:
                fitted.stats.merge(stats)
            if checkpoint is not None:
                TileLedger(signature, lower, upper, completed_flags).save(checkpoint)

        if op == "eps":
            values: np.ndarray = 0.5 * (lower + upper)
        else:
            values = stopping.tau_hot_mask(lower, tau)  # type: ignore[arg-type]
        resolved_mask = resolved_rows(lower, upper)
        resolved = int(resolved_mask.sum())
        if resolved == n_pixels:
            worst_gap = 0.0
        else:
            worst_gap = float(np.max((upper - lower)[~resolved_mask]))

        if token.triggered:
            reason: str | None = token.reason
        elif report.failed or report.partial or report.unprocessed:
            reason = STOP_TILE_FAILURES
        else:
            reason = None

        elapsed = time.perf_counter() - start
        degraded: DegradedResult | None = None
        if reason is not None:
            budget_dict = None
            if budget is not None:
                budget_dict = budget.as_dict()
            elif token.budget is not None:
                budget_dict = token.budget.as_dict()
            degraded = DegradedResult(
                reason=reason,
                pixels_total=n_pixels,
                pixels_resolved=resolved,
                worst_gap=worst_gap,
                tiles_total=n_tiles,
                tiles_completed=int(completed_flags.sum()),
                tiles_failed=[
                    {"tile": index, "error": message}
                    for index, message in sorted(report.failed.items())
                ],
                retries=report.retries,
                faults_injected=report.faults_injected,
                quarantined_workers=report.quarantined,
                elapsed_s=elapsed,
                budget=budget_dict,
            )
        elif (
            op == "eps"
            and invariants_enabled()
            and fitted.deterministic_guarantee
        ):
            # Complete anytime renders honour the same eps-agreement
            # contract check as the strict tiled path.
            assert eps is not None and atol is not None
            fitted._check_eps_agreement(centers, values, eps, atol)

        if tracer is not None:
            tracer.render(
                op=op,
                pixels=n_pixels,
                tiles=n_tiles,
                workers=n_workers if n_workers is not None else 1,
                seconds=elapsed,
            )

        return RenderOutcome(
            image=self.grid.to_image(values),
            lower=self.grid.to_image(lower),
            upper=self.grid.to_image(upper),
            resolved=self.grid.to_image(resolved_mask),
            degraded=degraded,
            stats=None,
            checkpoint_path=None if checkpoint is None else str(checkpoint),
        )

    # -- interactive viewport operations ------------------------------------

    def with_grid(self, grid: PixelGrid) -> KDVRenderer:
        """A renderer over a different viewport/resolution, sharing state.

        The fitted methods (kd-trees, samples) are viewport-independent,
        so pan/zoom re-renders reuse them at zero extra offline cost —
        the interactive-exploration pattern of the paper's Section 6
        motivation. Only the exact-image cache is dropped.
        """
        clone = KDVRenderer.__new__(KDVRenderer)
        clone.points = self.points
        clone.kernel = self.kernel
        clone.gamma = self.gamma
        clone.weight = self.weight
        clone.point_weights = self.point_weights
        clone.grid = grid
        clone.method_options = self.method_options
        clone._methods = self._methods  # shared: indexes are reusable
        clone._exact_image = None
        return clone

    def zoom(
        self,
        center: PointLike,
        factor: float,
        resolution: tuple[int, int] | None = None,
    ) -> KDVRenderer:
        """A renderer zoomed on ``center`` by ``factor`` (> 1 zooms in).

        Parameters
        ----------
        center:
            Data-space ``(x, y)`` to centre the new viewport on (clamped
            so the viewport stays inside the current one for factors
            > 1).
        factor:
            Viewport shrink factor; 2.0 shows a quarter of the area.
        resolution:
            Optional ``(width, height)`` override (defaults to the
            current resolution).
        """
        factor = check_positive(factor, "factor")
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        if center.shape != (2,):
            raise InvalidParameterError("center must be a 2-D point")
        extent = (self.grid.high - self.grid.low) / factor
        low = center - extent / 2.0
        high = center + extent / 2.0
        if resolution is None:
            resolution = self.grid.resolution
        grid = PixelGrid(resolution[0], resolution[1], low, high)
        return self.with_grid(grid)

    def pan(self, delta: PointLike) -> KDVRenderer:
        """A renderer with the viewport shifted by ``delta`` (data units)."""
        delta = np.asarray(delta, dtype=np.float64).reshape(-1)
        if delta.shape != (2,):
            raise InvalidParameterError("delta must be a 2-D offset")
        grid = PixelGrid(
            self.grid.width,
            self.grid.height,
            self.grid.low + delta,
            self.grid.high + delta,
        )
        return self.with_grid(grid)

    # -- thresholds -----------------------------------------------------------

    def density_stats(self) -> tuple[float, float]:
        """``(mu, sigma)`` of the exact per-pixel densities.

        The paper's τKDV experiments express thresholds as
        ``mu + k * sigma`` over all pixels (Section 7.2).
        """
        image = self.render_exact()
        return float(image.mean()), float(image.std())

    def thresholds(self, offsets: Sequence[float] = DEFAULT_TAU_OFFSETS) -> list[float]:
        """The paper's seven thresholds ``mu + k sigma`` (clamped > 0)."""
        mu, sigma = self.density_stats()
        floor = np.finfo(np.float64).tiny
        return [max(mu + k * sigma, floor) for k in offsets]

    # -- saving -----------------------------------------------------------------

    def save_density_png(
        self,
        image: PointLike,
        path: str | os.PathLike[str],
        colormap: str | Colormap = "density",
        *,
        log_scale: bool = True,
    ) -> Path:
        """Save a density image as a coloured PNG."""
        rgb = get_colormap(colormap).apply(np.asarray(image), log_scale=log_scale)
        return write_png(path, rgb)

    def save_mask_png(self, mask: PointLike, path: str | os.PathLike[str]) -> Path:
        """Save a τKDV mask as a two-colour PNG (Figure 2c style)."""
        return write_png(path, two_color_map(mask))

    def __repr__(self) -> str:
        return (
            f"KDVRenderer(n={self.points.shape[0]}, kernel={self.kernel.name!r}, "
            f"grid={self.grid.width}x{self.grid.height})"
        )
