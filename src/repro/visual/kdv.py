"""KDV colour-map rendering — the library's visualization front door.

:class:`KDVRenderer` evaluates a kernel density over every pixel of a
:class:`~repro.visual.grid.PixelGrid` using any registered method and
returns the density image (εKDV) or hotspot mask (τKDV). Fitted methods
are cached per renderer, so sweeping ε or τ (as the experiments do)
pays the index build once — matching how the paper separates offline and
online stages.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.contracts.runtime import invariants_enabled
from repro.core.engine import QueryStats
from repro.core.exact import exact_density
from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_gamma
from repro.errors import InvalidParameterError, UnsupportedOperationError
from repro.methods.base import IndexedMethod, Method
from repro.methods.registry import create_method
from repro.obs.runtime import current_tracer, trace_to
from repro.utils.validation import check_points, check_positive
from repro.visual.colormap import get_colormap, two_color_map
from repro.visual.grid import PixelGrid
from repro.visual.image import write_png

if TYPE_CHECKING:
    import os
    from pathlib import Path
    from typing import Callable, Mapping

    from repro._types import BoolArray, FloatArray, KernelLike, PointLike
    from repro.core.batch_engine import BatchRefinementEngine
    from repro.obs.sinks import TraceSink
    from repro.visual.colormap import Colormap

    #: Anything ``repro.obs.sinks.resolve_sink`` accepts as a trace target.
    TraceTarget = TraceSink | Callable[[Mapping[str, Any]], object] | str | Path | None

__all__ = ["KDVRenderer"]

#: The paper's τKDV threshold offsets: tau = mu + k * sigma (Section 7.2).
DEFAULT_TAU_OFFSETS = (-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3)

#: Default tile edge (pixels) for tiled/batched rendering: 64x64 tiles
#: give ~4k-pixel batches — wide enough to amortise per-node Python
#: overhead, small enough that retired pixels stop costing quickly.
DEFAULT_TILE_SIZE = 64


class KDVRenderer:
    """Render kernel density colour maps over a pixel grid.

    Parameters
    ----------
    points:
        2-D data points.
    resolution:
        ``(width, height)`` of the pixel grid (ignored when ``grid`` is
        given).
    kernel:
        Kernel name or instance.
    gamma:
        Bandwidth parameter; defaults to Scott's rule (as in the paper).
    weight:
        Per-point weight; defaults to ``1 / n``.
    grid:
        Optional explicit :class:`~repro.visual.grid.PixelGrid`.
    method_options:
        Default keyword arguments for method construction (e.g.
        ``leaf_size``).
    """

    def __init__(
        self,
        points: PointLike,
        resolution: tuple[int, int] = (320, 240),
        kernel: KernelLike = "gaussian",
        gamma: float | None = None,
        weight: float | None = None,
        grid: PixelGrid | None = None,
        **method_options: Any,
    ) -> None:
        self.points = check_points(points)
        if self.points.shape[1] != 2:
            raise InvalidParameterError(
                f"KDV renders 2-D data, got {self.points.shape[1]} dims; "
                "reduce dimensionality first (see repro.data.pca_project)"
            )
        self.kernel = get_kernel(kernel)
        if gamma is None:
            gamma = scott_gamma(self.points, self.kernel)
        self.gamma = check_positive(gamma, "gamma")
        if weight is None:
            weight = 1.0 / self.points.shape[0]
        self.weight = check_positive(weight, "weight")
        if grid is None:
            width, height = resolution
            grid = PixelGrid.fit(self.points, width, height)
        self.grid = grid
        self.method_options = method_options
        self._methods: dict[str, Method] = {}
        self._exact_image: FloatArray | None = None

    # -- method management -------------------------------------------------

    def get_method(self, method: str | Method) -> Method:
        """Return a fitted method instance (cached per name)."""
        if isinstance(method, Method):
            if method.points is None:
                method.fit(self.points, self.kernel, self.gamma, self.weight)
            return method
        key = str(method).lower()
        fitted = self._methods.get(key)
        if fitted is None:
            fitted = create_method(key, **self.method_options)
            fitted.fit(self.points, self.kernel, self.gamma, self.weight)
            self._methods[key] = fitted
        return fitted

    # -- rendering ----------------------------------------------------------

    def render_exact(self) -> FloatArray:
        """The exact density image, shape ``(height, width)`` (cached)."""
        if self._exact_image is None:
            values = exact_density(
                self.points, self.grid.centers(), self.kernel, self.gamma, self.weight
            )
            self._exact_image = self.grid.to_image(values)
        return self._exact_image

    def _render_tiled(
        self,
        fitted: IndexedMethod,
        evaluate: Callable[[BatchRefinementEngine, FloatArray], np.ndarray],
        dtype: type,
        tile_size: int | tuple[int, int],
        workers: int | None,
        op: str,
    ) -> np.ndarray:
        """Evaluate every tile through a batched engine; return flat values.

        Sequential by default (one shared engine, unified stats); with
        ``workers=N`` the tiles drain from a shared deque into ``N``
        threads, each refining with a private engine and private
        :class:`~repro.core.engine.QueryStats`. Tiles write disjoint
        slices of the output, so no synchronisation of the value array
        is needed.

        Error handling is all-or-nothing: the first tile that raises
        sets a shared cancel flag (so the remaining workers stop
        draining instead of finishing a partial image), the exception
        propagates to the caller, and **no** per-worker stats are merged
        into the method's ledger — a retried render therefore cannot
        double-count the work of workers that had already succeeded.
        """
        tracer = current_tracer()
        render_start = time.perf_counter()
        centers = self.grid.centers()
        out = np.empty(self.grid.num_pixels, dtype=dtype)
        tile_list = list(self.grid.tiles(tile_size))
        if workers is None or int(workers) <= 1:
            engine = fitted.batch_engine
            assert engine is not None
            for index, tile in enumerate(tile_list):
                tile_start = time.perf_counter()
                out[tile] = evaluate(engine, centers[tile])
                if tracer is not None:
                    tracer.tile(
                        index=index,
                        rows=int(tile.shape[0]),
                        seconds=time.perf_counter() - tile_start,
                        worker=0,
                        op=op,
                    )
            if tracer is not None:
                tracer.render(
                    op=op,
                    pixels=self.grid.num_pixels,
                    tiles=len(tile_list),
                    workers=1,
                    seconds=time.perf_counter() - render_start,
                )
            return out

        from collections import deque
        from concurrent.futures import ThreadPoolExecutor
        from threading import Event

        pending = deque(enumerate(tile_list))
        cancel = Event()

        def drain(worker_id: int) -> tuple[QueryStats, float]:
            stats = QueryStats()
            engine = fitted.make_batch_engine(stats)
            busy = 0.0
            while not cancel.is_set():
                try:
                    index, tile = pending.popleft()
                except IndexError:
                    break
                tile_start = time.perf_counter()
                try:
                    out[tile] = evaluate(engine, centers[tile])
                except BaseException:
                    cancel.set()
                    raise
                seconds = time.perf_counter() - tile_start
                busy += seconds
                if tracer is not None:
                    tracer.tile(
                        index=index,
                        rows=int(tile.shape[0]),
                        seconds=seconds,
                        worker=worker_id,
                        op=op,
                    )
            return stats, busy

        workers = int(workers)
        results: list[tuple[QueryStats, float]] = []
        first_error: BaseException | None = None
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(drain, worker_id) for worker_id in range(workers)]
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as error:  # collected, re-raised below
                    if first_error is None:
                        first_error = error
        if first_error is not None:
            raise first_error
        for stats, __ in results:
            fitted.stats.merge(stats)
        if tracer is not None:
            tracer.render(
                op=op,
                pixels=self.grid.num_pixels,
                tiles=len(tile_list),
                workers=workers,
                seconds=time.perf_counter() - render_start,
                worker_busy=[busy for __, busy in results],
            )
        return out

    def _tiled_method(self, method: str | Method, operation: str) -> IndexedMethod:
        """Resolve ``method`` for tiled rendering (index-based only)."""
        fitted = self.get_method(method)
        if not isinstance(fitted, IndexedMethod):
            raise UnsupportedOperationError(
                f"tiled rendering needs an index-based method, got {fitted.name!r}"
            )
        fitted._require(operation)
        return fitted

    def render_eps(
        self,
        eps: float = 0.01,
        method: str | Method = "quad",
        *,
        atol: float | None = None,
        tile_size: int | tuple[int, int] | None = None,
        workers: int | None = None,
        trace: TraceTarget = None,
    ) -> FloatArray:
        """εKDV colour-map values, shape ``(height, width)``.

        ``atol`` defaults to a vanishing fraction of a single point's
        weight (``1e-9 * w``), which caps the work spent on pixels whose
        exact density underflows — and absorbs the ~``1e-16 * F_max``
        floating-point floor inherent to incremental refinement — while
        leaving the ``(1 ± eps)`` contract intact everywhere a pixel is
        visibly coloured.

        Passing ``tile_size`` and/or ``workers`` opts into tiled
        rendering through the batched engine
        (:class:`~repro.core.batch_engine.BatchRefinementEngine`):
        row-major pixel tiles are refined whole-batch-at-a-time, and
        ``workers=N`` spreads tiles over ``N`` threads with per-worker
        statistics merged back into :attr:`IndexedMethod.stats`.
        Requires an index-based method; per-pixel answers keep the exact
        same ``(1 ± eps)`` contract as the scalar path.

        ``trace`` scopes a tracer around just this render (see
        :func:`repro.obs.trace_to`): pass a JSONL path, a
        :class:`~repro.obs.sinks.TraceSink`, or a callable receiving
        each event dict. Independent of the ambient ``REPRO_TRACE``.
        """
        if trace is not None:
            with trace_to(trace):
                return self.render_eps(
                    eps, method, atol=atol, tile_size=tile_size, workers=workers
                )
        if atol is None:
            atol = 1e-9 * self.weight
        if tile_size is None and workers is None:
            fitted = self.get_method(method)
            tracer = current_tracer()
            start = time.perf_counter()
            values = fitted.batch_eps(self.grid.centers(), eps, atol=atol)
            if tracer is not None:
                with tracer.method_scope(fitted.name):
                    tracer.render(
                        op="eps",
                        pixels=self.grid.num_pixels,
                        tiles=0,
                        workers=1,
                        seconds=time.perf_counter() - start,
                    )
            return self.grid.to_image(values)
        tiled = self._tiled_method(method, "eps")
        resolved_atol = atol

        def evaluate(engine: BatchRefinementEngine, tile: FloatArray) -> np.ndarray:
            return engine.query_eps_batch(tile, eps, atol=resolved_atol)

        values = self._render_with_scope(
            tiled,
            evaluate,
            np.float64,
            DEFAULT_TILE_SIZE if tile_size is None else tile_size,
            workers,
            "eps",
        )
        if invariants_enabled() and tiled.deterministic_guarantee:
            tiled._check_eps_agreement(self.grid.centers(), values, eps, atol)
        return self.grid.to_image(values)

    def render_tau(
        self,
        tau: float,
        method: str | Method = "quad",
        *,
        tile_size: int | tuple[int, int] | None = None,
        workers: int | None = None,
        trace: TraceTarget = None,
    ) -> BoolArray:
        """τKDV hotspot mask, boolean, shape ``(height, width)``.

        ``tile_size`` / ``workers`` opt into tiled batched rendering and
        ``trace`` scopes a tracer around the render, exactly as in
        :meth:`render_eps`.
        """
        if trace is not None:
            with trace_to(trace):
                return self.render_tau(
                    tau, method, tile_size=tile_size, workers=workers
                )
        if tile_size is None and workers is None:
            fitted = self.get_method(method)
            tracer = current_tracer()
            start = time.perf_counter()
            mask = fitted.batch_tau(self.grid.centers(), tau)
            if tracer is not None:
                with tracer.method_scope(fitted.name):
                    tracer.render(
                        op="tau",
                        pixels=self.grid.num_pixels,
                        tiles=0,
                        workers=1,
                        seconds=time.perf_counter() - start,
                    )
            return self.grid.to_image(mask)
        tiled = self._tiled_method(method, "tau")

        def evaluate(engine: BatchRefinementEngine, tile: FloatArray) -> np.ndarray:
            return engine.query_tau_batch(tile, tau)

        mask = self._render_with_scope(
            tiled,
            evaluate,
            np.bool_,
            DEFAULT_TILE_SIZE if tile_size is None else tile_size,
            workers,
            "tau",
        )
        return self.grid.to_image(mask)

    def _render_with_scope(
        self,
        fitted: IndexedMethod,
        evaluate: Callable[[BatchRefinementEngine, FloatArray], np.ndarray],
        dtype: type,
        tile_size: int | tuple[int, int],
        workers: int | None,
        op: str,
    ) -> np.ndarray:
        """:meth:`_render_tiled` with the method name attached to events."""
        tracer = current_tracer()
        if tracer is None:
            return self._render_tiled(fitted, evaluate, dtype, tile_size, workers, op)
        with tracer.method_scope(fitted.name):
            return self._render_tiled(fitted, evaluate, dtype, tile_size, workers, op)

    # -- interactive viewport operations ------------------------------------

    def with_grid(self, grid: PixelGrid) -> KDVRenderer:
        """A renderer over a different viewport/resolution, sharing state.

        The fitted methods (kd-trees, samples) are viewport-independent,
        so pan/zoom re-renders reuse them at zero extra offline cost —
        the interactive-exploration pattern of the paper's Section 6
        motivation. Only the exact-image cache is dropped.
        """
        clone = KDVRenderer.__new__(KDVRenderer)
        clone.points = self.points
        clone.kernel = self.kernel
        clone.gamma = self.gamma
        clone.weight = self.weight
        clone.grid = grid
        clone.method_options = self.method_options
        clone._methods = self._methods  # shared: indexes are reusable
        clone._exact_image = None
        return clone

    def zoom(
        self,
        center: PointLike,
        factor: float,
        resolution: tuple[int, int] | None = None,
    ) -> KDVRenderer:
        """A renderer zoomed on ``center`` by ``factor`` (> 1 zooms in).

        Parameters
        ----------
        center:
            Data-space ``(x, y)`` to centre the new viewport on (clamped
            so the viewport stays inside the current one for factors
            > 1).
        factor:
            Viewport shrink factor; 2.0 shows a quarter of the area.
        resolution:
            Optional ``(width, height)`` override (defaults to the
            current resolution).
        """
        factor = check_positive(factor, "factor")
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        if center.shape != (2,):
            raise InvalidParameterError("center must be a 2-D point")
        extent = (self.grid.high - self.grid.low) / factor
        low = center - extent / 2.0
        high = center + extent / 2.0
        if resolution is None:
            resolution = self.grid.resolution
        grid = PixelGrid(resolution[0], resolution[1], low, high)
        return self.with_grid(grid)

    def pan(self, delta: PointLike) -> KDVRenderer:
        """A renderer with the viewport shifted by ``delta`` (data units)."""
        delta = np.asarray(delta, dtype=np.float64).reshape(-1)
        if delta.shape != (2,):
            raise InvalidParameterError("delta must be a 2-D offset")
        grid = PixelGrid(
            self.grid.width,
            self.grid.height,
            self.grid.low + delta,
            self.grid.high + delta,
        )
        return self.with_grid(grid)

    # -- thresholds -----------------------------------------------------------

    def density_stats(self) -> tuple[float, float]:
        """``(mu, sigma)`` of the exact per-pixel densities.

        The paper's τKDV experiments express thresholds as
        ``mu + k * sigma`` over all pixels (Section 7.2).
        """
        image = self.render_exact()
        return float(image.mean()), float(image.std())

    def thresholds(self, offsets: Sequence[float] = DEFAULT_TAU_OFFSETS) -> list[float]:
        """The paper's seven thresholds ``mu + k sigma`` (clamped > 0)."""
        mu, sigma = self.density_stats()
        floor = np.finfo(np.float64).tiny
        return [max(mu + k * sigma, floor) for k in offsets]

    # -- saving -----------------------------------------------------------------

    def save_density_png(
        self,
        image: PointLike,
        path: str | os.PathLike[str],
        colormap: str | Colormap = "density",
        *,
        log_scale: bool = True,
    ) -> Path:
        """Save a density image as a coloured PNG."""
        rgb = get_colormap(colormap).apply(np.asarray(image), log_scale=log_scale)
        return write_png(path, rgb)

    def save_mask_png(self, mask: PointLike, path: str | os.PathLike[str]) -> Path:
        """Save a τKDV mask as a two-colour PNG (Figure 2c style)."""
        return write_png(path, two_color_map(mask))

    def __repr__(self) -> str:
        return (
            f"KDVRenderer(n={self.points.shape[0]}, kernel={self.kernel.name!r}, "
            f"grid={self.grid.width}x{self.grid.height})"
        )
