"""Pixel grids: the mapping between screen pixels and data coordinates.

A :class:`PixelGrid` covers a data-space viewport with ``width x height``
pixels; each pixel's density is evaluated at its centre, exactly as KDV
tools do. Row-major layout: row index ``iy`` grows along the second data
axis, column index ``ix`` along the first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import FloatArray, IntArray, PointLike

__all__ = ["PixelGrid"]

#: Fraction of the data extent added around it when auto-fitting a viewport.
DEFAULT_MARGIN = 0.05


class PixelGrid:
    """A ``width x height`` pixel grid over a rectangular 2-D viewport.

    Parameters
    ----------
    width, height:
        Resolution in pixels (the paper's default is 1280 x 960).
    low, high:
        Viewport corners in data coordinates, each a pair
        ``(x, y)``.
    """

    def __init__(
        self,
        width: int,
        height: int,
        low: PointLike,
        high: PointLike,
    ) -> None:
        width = int(width)
        height = int(height)
        if width < 1 or height < 1:
            raise InvalidParameterError(
                f"resolution must be >= 1x1, got {width}x{height}"
            )
        low = np.asarray(low, dtype=np.float64).reshape(-1)
        high = np.asarray(high, dtype=np.float64).reshape(-1)
        if low.shape != (2,) or high.shape != (2,):
            raise InvalidParameterError("viewport corners must be 2-D points")
        if np.any(low >= high):
            raise InvalidParameterError("viewport must satisfy low < high per axis")
        self.width = width
        self.height = height
        self.low = low
        self.high = high
        self._cell = (high - low) / np.array([width, height], dtype=np.float64)

    @classmethod
    def fit(
        cls,
        points: PointLike,
        width: int,
        height: int,
        *,
        margin: float = DEFAULT_MARGIN,
    ) -> PixelGrid:
        """A grid whose viewport covers ``points`` with a relative margin."""
        points = check_points(points)
        if points.shape[1] != 2:
            raise InvalidParameterError(
                f"PixelGrid.fit needs 2-D points, got {points.shape[1]} dims"
            )
        low = points.min(axis=0)
        high = points.max(axis=0)
        extent = high - low
        # lint: allow-float-eq -- exact sentinel: a degenerate axis (all
        # points share the coordinate) gets unit extent so padding stays
        # finite; any positive value centres the points identically.
        extent[extent == 0.0] = 1.0
        pad = margin * extent
        return cls(width, height, low - pad, high + pad)

    @property
    def resolution(self) -> tuple[int, int]:
        """The ``(width, height)`` pair."""
        return self.width, self.height

    @property
    def num_pixels(self) -> int:
        """Total pixel count."""
        return self.width * self.height

    def pixel_center(self, ix: int, iy: int) -> FloatArray:
        """Data coordinates of the centre of pixel ``(ix, iy)``."""
        if not (0 <= ix < self.width and 0 <= iy < self.height):
            raise InvalidParameterError(
                f"pixel ({ix}, {iy}) outside {self.width}x{self.height} grid"
            )
        return self.low + self._cell * (np.array([ix, iy], dtype=np.float64) + 0.5)

    def centers(self) -> FloatArray:
        """All pixel centres as an ``(height * width, 2)`` array.

        Row-major: index ``iy * width + ix`` corresponds to pixel
        ``(ix, iy)``; reshape densities with :meth:`to_image`.
        """
        xs = self.low[0] + self._cell[0] * (np.arange(self.width) + 0.5)
        ys = self.low[1] + self._cell[1] * (np.arange(self.height) + 0.5)
        grid_x, grid_y = np.meshgrid(xs, ys)
        return np.column_stack([grid_x.ravel(), grid_y.ravel()])

    def to_image(self, values: PointLike) -> np.ndarray:
        """Reshape a flat per-pixel array into ``(height, width)``."""
        values = np.asarray(values)
        if values.size != self.num_pixels:
            raise InvalidParameterError(
                f"expected {self.num_pixels} values, got {values.size}"
            )
        return values.reshape(self.height, self.width)

    def tiles(self, tile_size: int | tuple[int, int]) -> Iterator[IntArray]:
        """Yield flat pixel-index arrays of rectangular tiles, row-major.

        ``tile_size`` is the tile edge in pixels (or ``(tile_width,
        tile_height)``); edge tiles are clipped to the grid. Every pixel
        appears in exactly one tile, and each yielded array indexes into
        :meth:`centers` / the flat value vector of :meth:`to_image`.
        """
        if isinstance(tile_size, tuple):
            tile_width, tile_height = int(tile_size[0]), int(tile_size[1])
        else:
            tile_width = tile_height = int(tile_size)
        if tile_width < 1 or tile_height < 1:
            raise InvalidParameterError(
                f"tile_size must be >= 1, got {tile_width}x{tile_height}"
            )
        for y0 in range(0, self.height, tile_height):
            rows = np.arange(y0, min(y0 + tile_height, self.height), dtype=np.int64)
            for x0 in range(0, self.width, tile_width):
                cols = np.arange(x0, min(x0 + tile_width, self.width), dtype=np.int64)
                yield (rows[:, None] * self.width + cols[None, :]).ravel()

    def scaled(self, factor: float) -> PixelGrid:
        """A grid over the same viewport at ``factor`` times the resolution."""
        width = max(1, int(round(self.width * factor)))
        height = max(1, int(round(self.height * factor)))
        return PixelGrid(width, height, self.low, self.high)

    def __repr__(self) -> str:
        return (
            f"PixelGrid({self.width}x{self.height}, "
            f"low={self.low.tolist()}, high={self.high.tolist()})"
        )
