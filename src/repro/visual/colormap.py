"""Colour maps turning densities into RGB colour values.

Piecewise-linear interpolation between anchor colours — no matplotlib
dependency. The default ``"density"`` map runs dark-blue -> green ->
yellow -> red, matching the hotspot colouring convention of the paper's
Figure 1; a two-colour map renders τKDV masks (its Figure 2c).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import InvalidParameterError, UnknownNameError

if TYPE_CHECKING:
    from repro._types import PointLike

    AnchorSeq = Sequence[tuple[float, tuple[float, float, float]]]

__all__ = ["Colormap", "get_colormap", "two_color_map", "COLORMAP_REGISTRY"]


class Colormap:
    """A piecewise-linear colour map over ``[0, 1]``.

    Parameters
    ----------
    anchors:
        Sequence of ``(position, (r, g, b))`` with positions increasing
        from 0 to 1 and channels in ``0..255``.
    name:
        Registry/display name.
    """

    def __init__(self, anchors: AnchorSeq, name: str = "custom") -> None:
        if len(anchors) < 2:
            raise InvalidParameterError("a colormap needs at least two anchors")
        positions = np.array([anchor[0] for anchor in anchors], dtype=np.float64)
        colors = np.array([anchor[1] for anchor in anchors], dtype=np.float64)
        # lint: allow-float-eq -- validating user-specified anchors, which
        # must cover the unit interval with exact 0.0 / 1.0 endpoints.
        if positions[0] != 0.0 or positions[-1] != 1.0:
            raise InvalidParameterError("anchor positions must start at 0 and end at 1")
        if np.any(np.diff(positions) <= 0.0):
            raise InvalidParameterError("anchor positions must be strictly increasing")
        if colors.shape[1] != 3 or np.any(colors < 0) or np.any(colors > 255):
            raise InvalidParameterError("anchor colors must be RGB triples in 0..255")
        self.positions = positions
        self.colors = colors
        self.name = name

    def apply(
        self,
        values: PointLike,
        vmin: float | None = None,
        vmax: float | None = None,
        *,
        log_scale: bool = False,
    ) -> np.ndarray:
        """Map an array of values to ``uint8`` RGB.

        Parameters
        ----------
        values:
            Array of any shape; output appends a channel axis.
        vmin, vmax:
            Normalisation range (defaults to the data range).
        log_scale:
            Normalise on ``log1p`` of the values — KDV colour maps are
            often log-scaled because densities span orders of magnitude.
        """
        values = np.asarray(values, dtype=np.float64)
        work = np.log1p(np.maximum(values, 0.0)) if log_scale else values
        if vmin is None:
            vmin = float(np.nanmin(work)) if work.size else 0.0
        elif log_scale:
            vmin = float(np.log1p(max(vmin, 0.0)))
        if vmax is None:
            vmax = float(np.nanmax(work)) if work.size else 1.0
        elif log_scale:
            vmax = float(np.log1p(max(vmax, 0.0)))
        span = vmax - vmin
        if span <= 0.0:
            normalised = np.zeros_like(work)
        else:
            normalised = np.clip((work - vmin) / span, 0.0, 1.0)
        rgb = np.empty(normalised.shape + (3,), dtype=np.float64)
        for channel in range(3):
            rgb[..., channel] = np.interp(
                normalised, self.positions, self.colors[:, channel]
            )
        return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)

    def __repr__(self) -> str:
        return f"Colormap(name={self.name!r}, anchors={len(self.positions)})"


#: Built-in maps. "density" mimics the classic KDV hotspot ramp.
COLORMAP_REGISTRY: dict[str, Colormap] = {
    "density": Colormap(
        [
            (0.00, (13, 8, 135)),
            (0.25, (84, 2, 163)),
            (0.50, (219, 92, 104)),
            (0.75, (244, 166, 54)),
            (1.00, (240, 249, 33)),
        ],
        name="density",
    ),
    "heat": Colormap(
        [
            (0.00, (0, 0, 64)),
            (0.35, (0, 128, 255)),
            (0.65, (255, 255, 0)),
            (1.00, (255, 0, 0)),
        ],
        name="heat",
    ),
    "gray": Colormap([(0.0, (0, 0, 0)), (1.0, (255, 255, 255))], name="gray"),
}


def get_colormap(colormap: str | Colormap) -> Colormap:
    """Resolve a name or instance to a :class:`Colormap`."""
    if isinstance(colormap, Colormap):
        return colormap
    try:
        return COLORMAP_REGISTRY[str(colormap).lower()]
    except KeyError:
        known = ", ".join(sorted(COLORMAP_REGISTRY))
        raise UnknownNameError(
            f"unknown colormap {colormap!r}; available: {known}"
        ) from None


def two_color_map(
    mask: PointLike,
    hot: tuple[int, int, int] = (220, 20, 20),
    cold: tuple[int, int, int] = (235, 235, 235),
) -> np.ndarray:
    """Render a boolean τKDV mask as a two-colour RGB image.

    The paper's Figure 2c: one colour for pixels with ``F(q) >= tau``,
    another for the rest.
    """
    mask = np.asarray(mask, dtype=bool)
    rgb = np.empty(mask.shape + (3,), dtype=np.uint8)
    rgb[mask] = np.asarray(hot, dtype=np.uint8)
    rgb[~mask] = np.asarray(cold, dtype=np.uint8)
    return rgb
