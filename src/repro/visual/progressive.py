"""Progressive visualization framework (the paper's Section 6).

Instead of evaluating pixels in row-major order, pixels are visited in a
quad-tree order (the paper's Figure 13): first the centre of the whole
viewport, then the centres of its four quadrants, and so on. Every
evaluated pixel's density temporarily fills its whole sub-region, so a
coarse-but-complete colour map exists after a handful of evaluations and
sharpens continuously. The user (or a time budget) can stop at any
moment; combined with QUAD's fast εKDV per pixel this is what achieves
the paper's 0.5-second "reasonable visualization" result on a single
machine with no GPU or parallelism.

Any resolution is supported, not just powers of two — regions split at
``floor(size / 2)`` and degenerate splits collapse.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_gamma
from repro.errors import InvalidParameterError
from repro.methods.base import Method
from repro.methods.registry import create_method
from repro.obs.runtime import current_tracer
from repro.resilience.budget import STOP_INTERRUPT, Budget, CancellationToken
from repro.utils.validation import check_points, check_positive, check_probability_like
from repro.visual.grid import PixelGrid

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike, PointLike

    Region = tuple[int, int, int, int]

__all__ = [
    "quadtree_regions",
    "ProgressiveRenderer",
    "ProgressiveResult",
    "Snapshot",
    "STOP_TIME_BUDGET",
    "STOP_MAX_PIXELS",
]

#: ``run(time_budget=...)`` elapsed before the stream drained.
STOP_TIME_BUDGET = "time-budget"
#: ``run(max_pixels=...)`` was reached before the stream drained.
STOP_MAX_PIXELS = "max-pixels"


def quadtree_regions(width: int, height: int) -> Iterator[Region]:
    """Yield ``(x0, y0, w, h)`` regions in coarse-to-fine BFS order.

    The first region is the full grid; each region is later split into
    its (up to four) quadrants, down to single pixels. Every pixel
    appears as exactly one ``1 x 1`` region, so a full traversal
    enumerates each pixel once.
    """
    width = int(width)
    height = int(height)
    if width < 1 or height < 1:
        raise InvalidParameterError(f"grid must be >= 1x1, got {width}x{height}")
    queue = deque([(0, 0, width, height)])
    while queue:
        region = queue.popleft()
        yield region
        x0, y0, w, h = region
        if w == 1 and h == 1:
            continue
        x_parts = [(x0, w)] if w == 1 else [(x0, w // 2), (x0 + w // 2, w - w // 2)]
        y_parts = [(y0, h)] if h == 1 else [(y0, h // 2), (y0 + h // 2, h - h // 2)]
        for cy, ch in y_parts:
            for cx, cw in x_parts:
                queue.append((cx, cy, cw, ch))


def region_representative(region: Region) -> tuple[int, int]:
    """The representative (centre) pixel of a region."""
    x0, y0, w, h = region
    return x0 + w // 2, y0 + h // 2


class Snapshot:
    """One partial visualization captured mid-stream.

    Attributes
    ----------
    label:
        The requested time (seconds) or pixel-count trigger.
    image:
        Density image at capture time, shape ``(height, width)``.
    pixels_evaluated:
        Number of pixels whose density had been evaluated.
    elapsed:
        Wall-clock seconds since the stream started.
    """

    __slots__ = ("label", "image", "pixels_evaluated", "elapsed")

    def __init__(
        self,
        label: float,
        image: FloatArray,
        pixels_evaluated: int,
        elapsed: float,
    ) -> None:
        self.label = label
        self.image = image
        self.pixels_evaluated = pixels_evaluated
        self.elapsed = elapsed

    def __repr__(self) -> str:
        return (
            f"Snapshot(label={self.label!r}, pixels={self.pixels_evaluated}, "
            f"elapsed={self.elapsed:.4f}s)"
        )


class ProgressiveResult:
    """Outcome of a progressive run.

    Attributes
    ----------
    image:
        The final (possibly partial) density image.
    pixels_evaluated:
        Pixels evaluated before the run stopped.
    total_pixels:
        Grid size; the run completed iff the two are equal.
    elapsed:
        Wall-clock seconds.
    snapshots:
        List of :class:`Snapshot`, in capture order.
    stop_reason:
        Why the run stopped early — :data:`STOP_TIME_BUDGET`,
        :data:`STOP_MAX_PIXELS`, or a
        :class:`~repro.resilience.budget.CancellationToken` reason
        (deadline / kernel budget / keyboard interrupt) — or ``None``
        when the stream drained completely.
    """

    __slots__ = (
        "image",
        "pixels_evaluated",
        "total_pixels",
        "elapsed",
        "snapshots",
        "stop_reason",
    )

    def __init__(
        self,
        image: FloatArray,
        pixels_evaluated: int,
        total_pixels: int,
        elapsed: float,
        snapshots: list[Snapshot],
        stop_reason: str | None = None,
    ) -> None:
        self.image = image
        self.pixels_evaluated = pixels_evaluated
        self.total_pixels = total_pixels
        self.elapsed = elapsed
        self.snapshots = snapshots
        self.stop_reason = stop_reason

    @property
    def complete(self) -> bool:
        """Whether every pixel was evaluated exactly."""
        return self.pixels_evaluated >= self.total_pixels

    def __repr__(self) -> str:
        return (
            f"ProgressiveResult(pixels={self.pixels_evaluated}/{self.total_pixels}, "
            f"elapsed={self.elapsed:.4f}s, snapshots={len(self.snapshots)}, "
            f"stop_reason={self.stop_reason!r})"
        )


class ProgressiveRenderer:
    """Stream a coarse-to-fine εKDV colour map (Section 6 framework).

    Parameters
    ----------
    points:
        2-D data points.
    resolution:
        ``(width, height)`` of the target grid.
    kernel, gamma, weight:
        As in :class:`~repro.visual.kdv.KDVRenderer`.
    method:
        Per-pixel evaluation method (default QUAD; the paper's Figure 20
        runs the framework over every method).
    eps:
        Relative error of each per-pixel εKDV evaluation.
    grid:
        Optional explicit grid overriding ``resolution``.
    """

    def __init__(
        self,
        points: PointLike,
        resolution: tuple[int, int] = (320, 240),
        kernel: KernelLike = "gaussian",
        gamma: float | None = None,
        weight: float | None = None,
        method: str | Method = "quad",
        eps: float = 0.01,
        grid: PixelGrid | None = None,
        **method_options: Any,
    ) -> None:
        self.points = check_points(points)
        if self.points.shape[1] != 2:
            raise InvalidParameterError(
                f"progressive KDV renders 2-D data, got {self.points.shape[1]} dims"
            )
        self.kernel = get_kernel(kernel)
        if gamma is None:
            gamma = scott_gamma(self.points, self.kernel)
        self.gamma = check_positive(gamma, "gamma")
        if weight is None:
            weight = 1.0 / self.points.shape[0]
        self.weight = check_positive(weight, "weight")
        self.eps = check_probability_like(eps, "eps")
        if grid is None:
            width, height = resolution
            grid = PixelGrid.fit(self.points, width, height)
        self.grid = grid
        if isinstance(method, Method):
            self.method = method
            if self.method.points is None:
                self.method.fit(self.points, self.kernel, self.gamma, self.weight)
        else:
            self.method = create_method(method, **method_options)
            self.method.fit(self.points, self.kernel, self.gamma, self.weight)
        self._atol = 1e-9 * self.weight

    def stream(self) -> Iterator[tuple[Region, float, int]]:
        """Yield ``(region, value, pixels_evaluated)`` coarse-to-fine.

        ``value`` is the εKDV density of the region's representative
        pixel; consumers paint the whole region with it. Regions whose
        representative was already evaluated by an ancestor are yielded
        with the cached value (no new work), matching the paper's
        Figure 13 where already-evaluated (red) pixels are skipped.
        """
        evaluated: dict[tuple[int, int], float] = {}
        single_point = self.method.query_eps
        for region in quadtree_regions(self.grid.width, self.grid.height):
            pixel = region_representative(region)
            value = evaluated.get(pixel)
            if value is None:
                center = self.grid.pixel_center(*pixel)
                value = single_point(center, self.eps, atol=self._atol)
                evaluated[pixel] = value
            yield region, value, len(evaluated)

    def run(
        self,
        time_budget: float | None = None,
        max_pixels: int | None = None,
        snapshot_times: Sequence[float] = (),
        snapshot_pixels: Sequence[int] = (),
        *,
        budget: Budget | None = None,
        cancel: CancellationToken | None = None,
    ) -> ProgressiveResult:
        """Run the stream under a budget, capturing snapshots.

        Parameters
        ----------
        time_budget:
            Stop after this many wall-clock seconds (``None``: no limit).
        max_pixels:
            Stop after evaluating this many pixels (``None``: no limit).
        snapshot_times:
            Capture a snapshot the first time the elapsed clock passes
            each value (seconds, ascending recommended).
        snapshot_pixels:
            Capture a snapshot when the evaluated-pixel count first
            reaches each value — the deterministic twin of
            ``snapshot_times`` used by tests and quality experiments.
        budget:
            A :class:`~repro.resilience.budget.Budget` checked between
            pixel evaluations (per-pixel kernel evaluations are charged
            against its eval cap from the method's stats when the
            method exposes them).
        cancel:
            An externally owned cancellation token (overrides
            ``budget``'s token).

        The run is always anytime: a tripped budget/token — or a
        ``KeyboardInterrupt`` during evaluation — returns the partial
        coarse-to-fine image accumulated so far, with
        :attr:`ProgressiveResult.stop_reason` naming the cause.

        Returns
        -------
        ProgressiveResult
        """
        image = np.zeros((self.grid.height, self.grid.width), dtype=np.float64)
        pending_times = sorted(float(t) for t in snapshot_times)
        pending_pixels = sorted(int(p) for p in snapshot_pixels)
        snapshots: list[Snapshot] = []
        pixels_evaluated = 0
        stop_reason: str | None = None
        token = cancel
        if token is None and budget is not None:
            token = budget.token()
        if token is not None:
            token.start()
        stats = getattr(self.method, "stats", None)
        evals_seen = stats.point_evaluations if stats is not None else 0
        tracer = current_tracer()
        start = time.perf_counter()
        elapsed = 0.0
        try:
            for region, value, pixels_evaluated in self.stream():
                x0, y0, w, h = region
                image[y0 : y0 + h, x0 : x0 + w] = value
                elapsed = time.perf_counter() - start
                while pending_times and elapsed >= pending_times[0]:
                    label = pending_times.pop(0)
                    snapshots.append(
                        Snapshot(label, image.copy(), pixels_evaluated, elapsed)
                    )
                    if tracer is not None:
                        tracer.snapshot(
                            pixels=pixels_evaluated, elapsed=elapsed, label=label
                        )
                while pending_pixels and pixels_evaluated >= pending_pixels[0]:
                    label = pending_pixels.pop(0)
                    snapshots.append(
                        Snapshot(label, image.copy(), pixels_evaluated, elapsed)
                    )
                    if tracer is not None:
                        tracer.snapshot(
                            pixels=pixels_evaluated, elapsed=elapsed, label=label
                        )
                if time_budget is not None and elapsed >= time_budget:
                    stop_reason = STOP_TIME_BUDGET
                    break
                if max_pixels is not None and pixels_evaluated >= max_pixels:
                    stop_reason = STOP_MAX_PIXELS
                    break
                if token is not None:
                    if stats is not None:
                        token.charge(stats.point_evaluations - evals_seen)
                        evals_seen = stats.point_evaluations
                    stop_reason = token.stop_reason()
                    if stop_reason is not None:
                        break
        except KeyboardInterrupt:
            elapsed = time.perf_counter() - start
            stop_reason = STOP_INTERRUPT
            if token is not None:
                token.cancel(STOP_INTERRUPT)
        # Budgets larger than the full run: record the completed image
        # under the remaining labels so consumers get one snapshot per
        # request.
        for label in pending_times + pending_pixels:
            snapshots.append(Snapshot(label, image.copy(), pixels_evaluated, elapsed))
        if tracer is not None:
            with tracer.method_scope(self.method.name):
                tracer.render(
                    op="progressive",
                    pixels=pixels_evaluated,
                    tiles=0,
                    workers=1,
                    seconds=elapsed,
                )
        return ProgressiveResult(
            image=image,
            pixels_evaluated=pixels_evaluated,
            total_pixels=self.grid.num_pixels,
            elapsed=elapsed,
            snapshots=snapshots,
            stop_reason=stop_reason,
        )
