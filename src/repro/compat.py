"""A Scikit-learn-style facade over the QUAD-accelerated estimator.

The paper repeatedly positions Scikit-learn's ``KernelDensity`` as the
software incarnation of εKDV (Table 2, footnote 6). This module offers a
drop-in-shaped class so existing Scikit-learn KDE code can switch to the
QUAD backend by changing an import:

* ``fit(X)`` / ``score_samples(X)`` (log densities) / ``score(X)``;
* ``sample(n)`` — smoothed bootstrap draws (resample a training point,
  add kernel-shaped noise);
* ``bandwidth="scott"`` or a float, ``kernel=`` any supported kernel,
  ``rtol``/``atol`` mapping to the εKDV guarantee as in Scikit-learn.

Normalisation: Scikit-learn returns *probability* densities. For the
Gaussian kernel in d dimensions the normaliser is
``(2 pi h^2)^(-d/2) / n``; compact kernels use their analytic
normalising constants in 1-D/2-D and the unnormalised sum elsewhere
(documented per kernel in :func:`kernel_normaliser`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.core.kde import KernelDensity as _CoreKernelDensity
from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_bandwidth
from repro.errors import InvalidParameterError, NotFittedError
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike, PointLike

__all__ = ["QuadKernelDensity", "kernel_normaliser"]


def kernel_normaliser(kernel: KernelLike, bandwidth: float, dims: int) -> float:
    """The constant making one kernel bump integrate to 1.

    Supported analytically: Gaussian (any d); triangular, cosine,
    exponential, Epanechnikov and quartic in d in {1, 2}. Raises for
    other combinations rather than silently returning unnormalised
    densities.
    """
    kernel = get_kernel(kernel)
    h = check_positive(bandwidth, "bandwidth")
    name = kernel.name
    if name == "gaussian":
        return (2.0 * math.pi * h * h) ** (-dims / 2.0)
    if dims not in (1, 2):
        raise InvalidParameterError(
            f"analytic normaliser for kernel {name!r} is implemented for "
            f"d in {{1, 2}}, got d={dims}"
        )
    # Integrals of the profile over R^d with support radius h:
    # 1-D: 2h * int_0^1 k(x) dx ; 2-D: 2*pi*h^2 * int_0^1 x k(x) dx.
    if name == "triangular":
        integral = h if dims == 1 else 2.0 * math.pi * h * h / 6.0
    elif name == "epanechnikov":
        integral = 4.0 * h / 3.0 if dims == 1 else math.pi * h * h / 2.0
    elif name == "quartic":
        integral = 16.0 * h / 15.0 if dims == 1 else math.pi * h * h / 3.0
    elif name == "cosine":
        # gamma = (pi/2)/h puts the support edge at dist = h.
        # 1-D: 2 int_0^h cos(gamma r) dr = (4/pi) h;
        # 2-D: 2 pi int_0^h r cos(gamma r) dr = (8/pi) h^2 (pi/2 - 1).
        if dims == 1:
            integral = 4.0 * h / math.pi
        else:
            integral = 8.0 * h * h * (math.pi / 2.0 - 1.0) / math.pi
    elif name == "exponential":
        integral = 2.0 * h if dims == 1 else 2.0 * math.pi * h * h
    else:
        raise InvalidParameterError(f"no analytic normaliser for kernel {name!r}")
    return 1.0 / integral


class QuadKernelDensity:
    """Scikit-learn-shaped kernel density estimation on the QUAD engine.

    Parameters
    ----------
    bandwidth:
        Positive float, or ``"scott"`` (default) for Scott's rule.
    kernel:
        Kernel name (default ``"gaussian"``).
    rtol:
        Relative tolerance of the density values — the εKDV guarantee
        (Scikit-learn's identically-named parameter).
    atol:
        Absolute tolerance floor (see Scikit-learn).
    method:
        Underlying solution method (default ``"quad"``).
    """

    def __init__(
        self,
        bandwidth: float | str = "scott",
        kernel: KernelLike = "gaussian",
        rtol: float = 1e-2,
        atol: float = 0.0,
        method: str = "quad",
    ) -> None:
        self.bandwidth = bandwidth
        self.kernel = get_kernel(kernel)
        self.rtol = float(rtol)
        self.atol = float(atol)
        if self.rtol < 0.0 or self.atol < 0.0:
            raise InvalidParameterError("rtol and atol must be >= 0")
        self.method = method
        self._kde: _CoreKernelDensity | None = None
        self._points: FloatArray | None = None
        self.bandwidth_: float | None = None

    def fit(
        self,
        X: PointLike,
        y: object = None,
        sample_weight: PointLike | None = None,
    ) -> QuadKernelDensity:
        """Fit on data ``X``; ``y`` is ignored (API compatibility)."""
        X = check_points(X, name="X")
        self._points = X
        if self.bandwidth == "scott":
            self.bandwidth_ = scott_bandwidth(X)
        else:
            self.bandwidth_ = check_positive(self.bandwidth, "bandwidth")
        h = self.bandwidth_
        if self.kernel.uses_squared_distance:
            gamma = 1.0 / (2.0 * h * h)
        else:
            support = self.kernel.support_xmax
            gamma = (1.0 if math.isinf(support) else support) / h
        normaliser = kernel_normaliser(self.kernel, h, X.shape[1])
        self._kde = _CoreKernelDensity(
            kernel=self.kernel,
            gamma=gamma,
            weight=normaliser / X.shape[0],
            method=self.method,
        ).fit(X, point_weights=sample_weight)
        return self

    def _require_fitted(self) -> None:
        if self._kde is None:
            raise NotFittedError("QuadKernelDensity must be fitted before scoring")

    def score_samples(self, X: PointLike) -> FloatArray:
        """Log probability densities at ``X`` (Scikit-learn semantics).

        Densities are computed with the εKDV guarantee ``rtol`` (exact
        when ``rtol == 0``); zero densities map to ``-inf`` as in
        Scikit-learn.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        # lint: allow-float-eq -- rtol=0.0 is the documented exact-mode
        # sentinel (mirrors Scikit-learn), not a computed quantity.
        if self.rtol == 0.0:
            densities = self._kde.density(X)
        else:
            densities = np.atleast_1d(
                self._kde.density_eps(X, eps=self.rtol, atol=self.atol)
            )
        with np.errstate(divide="ignore"):
            return np.log(np.maximum(densities, 0.0))

    def score(self, X: PointLike, y: object = None) -> float:
        """Total log-likelihood of ``X``."""
        return float(self.score_samples(X).sum())

    def sample(
        self, n_samples: int = 1, random_state: int | None = None
    ) -> FloatArray:
        """Smoothed-bootstrap draws from the fitted density.

        Resamples training points and perturbs each with kernel-shaped
        noise (exact for the Gaussian kernel; radial rejection sampling
        of the profile for compact kernels).
        """
        self._require_fitted()
        rng = np.random.default_rng(random_state)
        points = self._points
        dims = points.shape[1]
        picks = points[rng.integers(points.shape[0], size=int(n_samples))]
        h = self.bandwidth_
        if self.kernel.name == "gaussian":
            return picks + rng.normal(scale=h, size=picks.shape)
        # Radial rejection sampling of the profile. Compact kernels are
        # sampled exactly within their support radius h; infinite-support
        # kernels (exponential) are truncated at 15h, beyond which the
        # remaining mass is ~exp(-15) and statistically invisible.
        support = self.kernel.support_xmax
        if math.isinf(support):
            gamma = 1.0 / h
            radius = 15.0 * h
        else:
            gamma = support / h
            radius = h
        offsets = np.empty_like(picks)
        for index in range(picks.shape[0]):
            while True:
                candidate = rng.uniform(-radius, radius, size=dims)
                dist = float(np.sqrt((candidate**2).sum()))
                if dist > radius:
                    continue
                x = self.kernel.x_from_distance(dist, gamma)
                if rng.random() <= self.kernel.profile_scalar(min(x, 50.0)):
                    offsets[index] = candidate
                    break
        return picks + offsets

    def __repr__(self) -> str:
        state = "fitted" if self._kde is not None else "unfitted"
        return (
            f"QuadKernelDensity(kernel={self.kernel.name!r}, "
            f"bandwidth={self.bandwidth!r}, rtol={self.rtol}, {state})"
        )
