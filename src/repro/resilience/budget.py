"""Budgets and cooperative cancellation.

A :class:`Budget` states how much a render is allowed to cost — wall
clock, kernel evaluations, refinement memory — and a
:class:`CancellationToken` turns that statement into something the hot
loops can poll cheaply. Cancellation is *cooperative*: nothing is
interrupted mid-arithmetic. The scalar and batched refinement engines
poll the token once per frontier pop, the tiled renderer once per tile,
and the progressive framework once per pixel, so a tripped token stops
the work at the next consistent point and the best-so-far ``(LB, UB)``
envelopes remain valid — the partial answer is still an enclosure of
the truth, just a looser one.

Stop reasons are short stable strings (the ``STOP_*`` constants); they
appear in :class:`~repro.resilience.result.DegradedResult` metadata and
in ``repro.obs`` trace events, so the naming is part of the public
schema documented in ``docs/robustness.md``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.errors import InvalidParameterError

__all__ = [
    "Budget",
    "CancellationToken",
    "STOP_DEADLINE",
    "STOP_KERNEL_BUDGET",
    "STOP_MEMORY",
    "STOP_CANCELLED",
    "STOP_INTERRUPT",
    "STOP_TILE_FAILURES",
]

#: The wall-clock deadline passed.
STOP_DEADLINE = "deadline"
#: The kernel-evaluation (point-evaluation) budget was spent.
STOP_KERNEL_BUDGET = "kernel-budget"
#: The refinement-frontier memory estimate exceeded the cap.
STOP_MEMORY = "memory"
#: :meth:`CancellationToken.cancel` was called programmatically.
STOP_CANCELLED = "cancelled"
#: ``KeyboardInterrupt`` (Ctrl-C) was converted into cancellation.
STOP_INTERRUPT = "keyboard-interrupt"
#: Tiles failed permanently (retries exhausted / workers quarantined).
STOP_TILE_FAILURES = "tile-failures"


class Budget:
    """A cost envelope for one render (all limits optional).

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds the render may take, measured from
        :meth:`CancellationToken.start` (the renderer arms it when the
        online stage begins, so index build time is not charged).
    max_kernel_evals:
        Cap on point (kernel) evaluations, the hardware-neutral work
        measure of :class:`~repro.core.engine.QueryStats`.
    max_memory_bytes:
        Cap on the batched engine's frontier-memory *estimate* (heap
        entries carry four float64 rows per pixel); this is a guard
        against pathological frontier growth, not an allocator hook.
    """

    __slots__ = ("deadline_s", "max_kernel_evals", "max_memory_bytes")

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_kernel_evals: Optional[int] = None,
        max_memory_bytes: Optional[int] = None,
    ) -> None:
        if deadline_s is not None and not deadline_s > 0.0:
            raise InvalidParameterError(
                f"deadline_s must be > 0, got {deadline_s!r}"
            )
        if max_kernel_evals is not None and not int(max_kernel_evals) > 0:
            raise InvalidParameterError(
                f"max_kernel_evals must be > 0, got {max_kernel_evals!r}"
            )
        if max_memory_bytes is not None and not int(max_memory_bytes) > 0:
            raise InvalidParameterError(
                f"max_memory_bytes must be > 0, got {max_memory_bytes!r}"
            )
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.max_kernel_evals = (
            None if max_kernel_evals is None else int(max_kernel_evals)
        )
        self.max_memory_bytes = (
            None if max_memory_bytes is None else int(max_memory_bytes)
        )

    @classmethod
    def from_deadline_ms(cls, deadline_ms: float) -> Budget:
        """A pure wall-clock budget (the CLI's ``--deadline-ms``)."""
        return cls(deadline_s=float(deadline_ms) / 1000.0)

    @property
    def unlimited(self) -> bool:
        """Whether no limit is set at all."""
        return (
            self.deadline_s is None
            and self.max_kernel_evals is None
            and self.max_memory_bytes is None
        )

    def token(self) -> CancellationToken:
        """A fresh (unarmed) token enforcing this budget."""
        return CancellationToken(self)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready description (for :class:`DegradedResult`)."""
        return {
            "deadline_s": self.deadline_s,
            "max_kernel_evals": self.max_kernel_evals,
            "max_memory_bytes": self.max_memory_bytes,
        }

    def __repr__(self) -> str:
        parts = [
            f"{slot}={getattr(self, slot)!r}"
            for slot in self.__slots__
            if getattr(self, slot) is not None
        ]
        return f"Budget({', '.join(parts)})"


class CancellationToken:
    """Cooperative stop signal, optionally enforcing a :class:`Budget`.

    The token is polled by the hot loops via :meth:`stop_reason`; once
    any budget limit trips (or :meth:`cancel` is called) the token
    latches — every later poll returns the same reason, and the
    latched :attr:`reason` never changes. Tokens are single-use: create
    a fresh one per render (``budget.token()``).

    Thread safety: :meth:`cancel` / :meth:`charge` / :meth:`stop_reason`
    may race across the renderer's worker threads. All races are benign
    — the latch is a single attribute store, and the eval counter is
    advisory (a lost increment delays the trip by one tile at worst) —
    so no lock sits on the per-pop hot path.
    """

    __slots__ = ("budget", "reason", "_cancelled", "_deadline_at", "_evals")

    def __init__(self, budget: Optional[Budget] = None) -> None:
        self.budget = budget
        self.reason: Optional[str] = None
        self._cancelled = False
        self._deadline_at: Optional[float] = None
        self._evals = 0

    def start(self) -> CancellationToken:
        """Arm the wall-clock deadline (idempotent; first call wins)."""
        if (
            self._deadline_at is None
            and self.budget is not None
            and self.budget.deadline_s is not None
        ):
            self._deadline_at = time.monotonic() + self.budget.deadline_s
        return self

    def cancel(self, reason: str = STOP_CANCELLED) -> None:
        """Trip the token programmatically (first reason wins)."""
        if not self._cancelled:
            self.reason = reason
            self._cancelled = True

    def charge(self, kernel_evals: int) -> None:
        """Record kernel-evaluation work against the eval budget."""
        self._evals += kernel_evals

    @property
    def triggered(self) -> bool:
        """Whether the token has latched (any reason)."""
        return self._cancelled

    @property
    def kernel_evals_charged(self) -> int:
        """Kernel evaluations charged so far (across all engines)."""
        return self._evals

    def stop_reason(self, memory_bytes: int = 0) -> Optional[str]:
        """Poll the token: the latched stop reason, or ``None`` (keep going).

        ``memory_bytes`` is the caller's current memory estimate (the
        batched engine passes its frontier estimate; other callers pass
        nothing). Tripping a budget limit latches the token.
        """
        if self._cancelled:
            return self.reason
        budget = self.budget
        if budget is None:
            return None
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            self.cancel(STOP_DEADLINE)
        elif (
            budget.max_kernel_evals is not None
            and self._evals >= budget.max_kernel_evals
        ):
            self.cancel(STOP_KERNEL_BUDGET)
        elif (
            budget.max_memory_bytes is not None
            and memory_bytes > budget.max_memory_bytes
        ):
            self.cancel(STOP_MEMORY)
        return self.reason

    def __repr__(self) -> str:
        state = f"triggered={self.reason!r}" if self._cancelled else "active"
        return f"CancellationToken({state}, budget={self.budget!r})"
