"""Retry policy and the transient/fatal error taxonomy.

A tile worker can fail for two very different reasons. *Transient*
failures (a flaky worker, an injected fault, a poisoned intermediate
array) are safe to retry because tile evaluation is deterministic and
side-effect-free: recomputing the tile from its inputs yields the same
bits as a run that never failed. *Fatal* failures (an
:class:`~repro.errors.InvariantViolation`, an invalid-parameter error)
mean the computation itself is wrong — retrying would just fail again,
or worse, mask a soundness bug — so they propagate immediately.

:func:`is_transient` encodes that taxonomy; :class:`RetryPolicy` says
how hard to try (attempts, exponential backoff, per-worker quarantine).
"""

from __future__ import annotations

from repro.errors import InvalidParameterError, ReproError

__all__ = ["RetryPolicy", "TransientTileError", "is_transient"]


class TransientTileError(ReproError, RuntimeError):
    """A tile failed in a way that is expected to succeed on retry.

    Raised by the fault injectors and by the tile runner's sanity
    checks (e.g. a bound provider returning NaN/Inf), and by the
    image-returning render wrappers when retries were exhausted and the
    image would otherwise silently carry unfinished tiles.
    """


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying.

    The taxonomy, from most to least specific:

    * :class:`TransientTileError` — explicitly transient, retry.
    * Any other :class:`~repro.errors.ReproError` (including
      :class:`~repro.errors.InvariantViolation`) — the computation or
      its parameters are wrong; retrying cannot help and must not mask
      the bug. Fatal.
    * ``KeyboardInterrupt`` (and other ``BaseException`` outside
      ``Exception``) — user intent, never retried. Fatal (the runner
      converts it into cooperative cancellation instead).
    * Any other ``Exception`` (``MemoryError``, a crashed worker's
      ``RuntimeError``, numpy floating errors) — environmental, retry.
    """
    if isinstance(error, TransientTileError):
        return True
    if isinstance(error, ReproError):
        return False
    return isinstance(error, Exception)


class RetryPolicy:
    """How hard to retry transient tile failures.

    Parameters
    ----------
    max_attempts:
        Total tries per tile (first attempt included). ``1`` disables
        retrying.
    backoff_s / backoff_factor / max_backoff_s:
        Exponential backoff: attempt ``k`` (1-based) sleeps
        ``min(backoff_s * backoff_factor**(k-1), max_backoff_s)``
        before re-running. Tile recomputation is CPU-bound and local,
        so the defaults are short — backoff exists to let a transiently
        wedged worker thread drain, not to be polite to a server.
    quarantine_after:
        Consecutive transient failures on one worker before it is
        quarantined (taken out of the pool). Only meaningful with
        multiple workers; a single worker is never quarantined because
        that would abandon the render.
    """

    __slots__ = (
        "max_attempts",
        "backoff_s",
        "backoff_factor",
        "max_backoff_s",
        "quarantine_after",
    )

    def __init__(
        self,
        max_attempts: int = 4,
        backoff_s: float = 0.01,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 0.25,
        quarantine_after: int = 3,
    ) -> None:
        if int(max_attempts) < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {max_attempts!r}"
            )
        if backoff_s < 0.0 or max_backoff_s < 0.0:
            raise InvalidParameterError("backoff times must be >= 0")
        if backoff_factor < 1.0:
            raise InvalidParameterError(
                f"backoff_factor must be >= 1, got {backoff_factor!r}"
            )
        if int(quarantine_after) < 1:
            raise InvalidParameterError(
                f"quarantine_after must be >= 1, got {quarantine_after!r}"
            )
        self.max_attempts = int(max_attempts)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.quarantine_after = int(quarantine_after)

    def delay(self, attempt: int) -> float:
        """Backoff seconds before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"backoff_s={self.backoff_s}, quarantine_after={self.quarantine_after})"
        )
