"""Deterministic seeded fault injection (``REPRO_FAULTS=``).

Every degradation path in the resilience layer must be exercisable on
demand, or it is dead code that fails the first time reality tests it.
This module injects four fault kinds into the tile runner:

========================  ==================================================
``worker_crash``          The tile evaluation raises (transient) before any
                          work happens — exercises retry and quarantine.
``slow_tile``             The tile sleeps ``slow_ms`` before evaluating —
                          exercises deadlines and latency accounting.
``nan_bounds``            The tile's returned envelopes are poisoned with
                          NaN — exercises the runner's output sanity check
                          (the poisoned copy is discarded and the tile
                          retried clean, so final images are unaffected).
``oom``                   An allocation-failure stand-in raises (transient,
                          reported as ``MemoryError``-like) — exercises the
                          same retry path under a different label.
``worker_kill``           **Process-level.** The worker process SIGKILLs
                          itself before evaluating — the parent observes a
                          real ``BrokenProcessPool`` and the supervised
                          executor must rebuild the pool and replay the
                          lost tiles.
``pool_break``            **Process-level.** The worker calls ``os._exit``
                          — an abrupt non-signal death that equally poisons
                          the pool; exercises the same supervision path
                          through a different kill mechanism.
``slow_response``         **Process-level.** The worker sleeps ``slow_ms``
                          before evaluating — exercises cross-process
                          deadline propagation through the cancel slot.
========================  ==================================================

The process-level kinds are executed *inside worker processes* by
:mod:`repro.visual.executors` (the thread tile runner ignores them);
:meth:`FaultPlan.partition_process` splits a mixed plan into its
process-level and thread-level halves so each runner injects only the
kinds it owns.

Injection is **deterministic**: each (kind, tile, attempt) triple rolls
its own ``numpy`` generator seeded from the plan seed, so a run with the
same plan injects exactly the same faults — CI chaos jobs are
reproducible, never flaky. Because faults are keyed on the *attempt*
number, a tile that crashed on attempt 1 is (with high probability) left
alone on attempt 2, and because tile evaluation is deterministic the
retried tile produces bit-identical values to a fault-free run.

Activation: programmatically (pass a :class:`FaultPlan` /
:class:`FaultInjector` to the renderer) or via the environment::

    REPRO_FAULTS="worker_crash:0.05,slow_tile:0.05,seed:7,slow_ms:20"

Injected faults and the runner's recovery actions are emitted as
``repro.obs`` trace events (kinds ``fault`` / ``recovery``).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.resilience.retry import TransientTileError

if TYPE_CHECKING:
    from repro._types import FloatArray
    from repro.obs.trace import Tracer

__all__ = [
    "FAULT_WORKER_CRASH",
    "FAULT_SLOW_TILE",
    "FAULT_NAN_BOUNDS",
    "FAULT_OOM",
    "FAULT_WORKER_KILL",
    "FAULT_POOL_BREAK",
    "FAULT_SLOW_RESPONSE",
    "FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "fault_fires",
]

FAULT_WORKER_CRASH = "worker_crash"
FAULT_SLOW_TILE = "slow_tile"
FAULT_NAN_BOUNDS = "nan_bounds"
FAULT_OOM = "oom"
FAULT_WORKER_KILL = "worker_kill"
FAULT_POOL_BREAK = "pool_break"
FAULT_SLOW_RESPONSE = "slow_response"

#: Recognised kinds, with the stable integer each contributes to the
#: per-roll seed (appending new kinds must not renumber old ones).
FAULT_KINDS: Dict[str, int] = {
    FAULT_WORKER_CRASH: 1,
    FAULT_SLOW_TILE: 2,
    FAULT_NAN_BOUNDS: 3,
    FAULT_OOM: 4,
    FAULT_WORKER_KILL: 5,
    FAULT_POOL_BREAK: 6,
    FAULT_SLOW_RESPONSE: 7,
}

#: Kinds executed inside worker *processes* (real process death / delay)
#: rather than by the thread tile runner's injector.
PROCESS_FAULT_KINDS = frozenset(
    {FAULT_WORKER_KILL, FAULT_POOL_BREAK, FAULT_SLOW_RESPONSE}
)


def fault_fires(seed: int, kind: str, tile: int, attempt: int, rate: float) -> bool:
    """Whether one deterministic fault roll fires.

    Pure function of ``(seed, kind, tile, attempt)`` — the same roll a
    :class:`FaultInjector` makes, exposed at module level so worker
    *processes* (which carry no injector object) reproduce the parent's
    plan bit-for-bit, and so tests/tools can predict exactly which
    tiles a given seed kills.
    """
    if rate <= 0.0:
        return False
    rng = np.random.default_rng([int(seed), FAULT_KINDS[kind], int(tile), int(attempt)])
    return bool(rng.random() < rate)

#: Environment variable holding the fault plan.
ENV_FAULTS = "REPRO_FAULTS"


class InjectedFault(TransientTileError):
    """A fault the injector raised on purpose (always transient)."""

    def __init__(self, kind: str, tile: int, attempt: int) -> None:
        super().__init__(
            f"injected fault {kind!r} on tile {tile} (attempt {attempt})"
        )
        self.kind = kind
        self.tile = tile
        self.attempt = attempt


class FaultPlan:
    """Which faults to inject, at what rates, under which seed.

    Parameters
    ----------
    rates:
        Mapping of fault kind to per-(tile, attempt) probability in
        ``[0, 1]``.
    seed:
        Base seed of the deterministic rolls.
    slow_ms:
        Sleep duration of ``slow_tile`` faults, in milliseconds.
    """

    __slots__ = ("rates", "seed", "slow_ms")

    def __init__(
        self,
        rates: Mapping[str, float],
        seed: int = 0,
        slow_ms: float = 50.0,
    ) -> None:
        clean: Dict[str, float] = {}
        for kind, rate in rates.items():
            if kind not in FAULT_KINDS:
                raise InvalidParameterError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{sorted(FAULT_KINDS)}"
                )
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise InvalidParameterError(
                    f"fault rate for {kind!r} must be in [0, 1], got {rate!r}"
                )
            if rate > 0.0:
                clean[kind] = rate
        self.rates = clean
        self.seed = int(seed)
        if not slow_ms >= 0.0:
            raise InvalidParameterError(
                f"slow_ms must be >= 0, got {slow_ms!r}"
            )
        self.slow_ms = float(slow_ms)

    @classmethod
    def parse(cls, spec: str) -> FaultPlan:
        """Parse ``"worker_crash:0.05,slow_tile:0.05[,seed:N][,slow_ms:X]"``."""
        rates: Dict[str, float] = {}
        seed = 0
        slow_ms = 50.0
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition(":")
            key = key.strip()
            if not sep:
                raise InvalidParameterError(
                    f"bad fault spec item {item!r}: expected 'kind:rate'"
                )
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "slow_ms":
                    slow_ms = float(value)
                else:
                    rates[key] = float(value)
            except ValueError as exc:
                raise InvalidParameterError(
                    f"bad fault spec item {item!r}: {exc}"
                ) from exc
        return cls(rates, seed=seed, slow_ms=slow_ms)

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
        """The plan from ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        spec = (env if env is not None else os.environ).get(ENV_FAULTS, "")
        spec = spec.strip()
        if not spec:
            return None
        return cls.parse(spec)

    @property
    def empty(self) -> bool:
        """Whether no fault has a positive rate."""
        return not self.rates

    def partition_process(self) -> Tuple["FaultPlan", "FaultPlan"]:
        """Split into ``(process_plan, thread_plan)`` halves.

        Process-level kinds (:data:`PROCESS_FAULT_KINDS`) are injected
        inside worker processes by the process tile executor; everything
        else belongs to the thread runner's :class:`FaultInjector`. Both
        halves keep the seed and ``slow_ms``, so a kind fires for the
        same (tile, attempt) regardless of which runner rolls it.
        """
        process = {k: r for k, r in self.rates.items() if k in PROCESS_FAULT_KINDS}
        thread = {k: r for k, r in self.rates.items() if k not in PROCESS_FAULT_KINDS}
        return (
            FaultPlan(process, seed=self.seed, slow_ms=self.slow_ms),
            FaultPlan(thread, seed=self.seed, slow_ms=self.slow_ms),
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready description of the plan."""
        return {"rates": dict(self.rates), "seed": self.seed, "slow_ms": self.slow_ms}

    def __repr__(self) -> str:
        return f"FaultPlan({self.rates!r}, seed={self.seed}, slow_ms={self.slow_ms})"


class FaultInjector:
    """Executes a :class:`FaultPlan` against the tile runner's hooks.

    The runner calls :meth:`before` ahead of every tile attempt and
    :meth:`after` on the attempt's envelopes. Injection counts are
    tracked on :attr:`injected` (total) and per kind; fired faults are
    emitted on ``tracer`` when one is attached.

    Thread safety: rolls are pure functions of (seed, kind, tile,
    attempt) with a private generator per call, so concurrent workers
    need no locking; the counters use benign unlocked increments (they
    are advisory accounting, not control flow).
    """

    __slots__ = ("plan", "tracer", "injected", "by_kind")

    def __init__(self, plan: FaultPlan, tracer: Optional[Tracer] = None) -> None:
        self.plan = plan
        self.tracer = tracer
        self.injected = 0
        self.by_kind: Dict[str, int] = {}

    def _fires(self, kind: str, tile: int, attempt: int) -> bool:
        return fault_fires(
            self.plan.seed, kind, tile, attempt, self.plan.rates.get(kind, 0.0)
        )

    def _record(self, kind: str, tile: int, attempt: int, worker: int) -> None:
        self.injected += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.fault(kind=kind, tile=tile, attempt=attempt, worker=worker)

    def before(self, tile: int, attempt: int, worker: int = 0) -> None:
        """Pre-evaluation faults: crash, OOM stand-in, slow tile."""
        if self._fires(FAULT_WORKER_CRASH, tile, attempt):
            self._record(FAULT_WORKER_CRASH, tile, attempt, worker)
            raise InjectedFault(FAULT_WORKER_CRASH, tile, attempt)
        if self._fires(FAULT_OOM, tile, attempt):
            self._record(FAULT_OOM, tile, attempt, worker)
            raise InjectedFault(FAULT_OOM, tile, attempt)
        if self._fires(FAULT_SLOW_TILE, tile, attempt):
            self._record(FAULT_SLOW_TILE, tile, attempt, worker)
            time.sleep(self.plan.slow_ms / 1000.0)

    def after(
        self,
        tile: int,
        attempt: int,
        lower: FloatArray,
        upper: FloatArray,
        worker: int = 0,
    ) -> Tuple[FloatArray, FloatArray]:
        """Post-evaluation faults: poison the envelopes with NaN.

        Returns (possibly replaced) envelope arrays; the originals are
        never mutated, so a retry recomputes clean values and the final
        image stays bit-identical to a fault-free run.
        """
        if self._fires(FAULT_NAN_BOUNDS, tile, attempt):
            self._record(FAULT_NAN_BOUNDS, tile, attempt, worker)
            lower = np.array(lower, dtype=np.float64, copy=True)
            upper = np.array(upper, dtype=np.float64, copy=True)
            lower[0] = np.nan
            upper[0] = np.nan
        return lower, upper

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan!r}, injected={self.injected})"
