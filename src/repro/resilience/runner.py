"""The resilient tile loop: retries, quarantine, cancellation, faults.

:func:`run_tiles` is the engine room of the anytime renderer. It drains
a deterministic work list of pixel-index tiles through caller-supplied
hooks (evaluate / store / completeness test), while providing the
guarantees the resilience layer promises:

* **Cancellation** — the :class:`~repro.resilience.budget.CancellationToken`
  is polled before every tile is taken *and* inside the refinement
  engines (per frontier pop), so a tripped token stops the run at the
  next consistent point; tiles already evaluated keep their valid
  best-so-far envelopes.
* **Retries** — transiently failed tiles (see
  :func:`~repro.resilience.retry.is_transient`) are requeued with
  exponential backoff up to the policy's attempt limit; tile evaluation
  is deterministic and side-effect-free, so a retried tile produces
  bit-identical values to a run that never failed.
* **Quarantine** — a worker thread with ``quarantine_after``
  *consecutive* transient failures is retired (its tile is requeued at
  the same attempt number — the worker is blamed, not the tile). A
  single-worker run never quarantines, which would abandon the render.
* **Fatal errors** — non-transient failures
  (:class:`~repro.errors.InvariantViolation`, bad parameters) propagate
  immediately; retrying them would mask soundness bugs.
* **KeyboardInterrupt** — converted into cooperative cancellation
  (``STOP_INTERRUPT``) rather than a stack trace, so the caller still
  gets the partial image and its metadata.
* **Faults** — an optional
  :class:`~repro.resilience.faults.FaultInjector` wraps every attempt;
  a NaN-poisoned result is caught by the runner's output sanity check
  and retried clean.

Results are written through ``store`` into caller-owned arrays indexed
by absolute pixel position, so completion order (which retries and
threading perturb) cannot affect the final image bits.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro._types import FloatArray, IntArray
from repro.resilience.budget import STOP_INTERRUPT, CancellationToken
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy, TransientTileError, is_transient

if TYPE_CHECKING:
    from repro.obs.trace import Tracer

__all__ = ["TileRunReport", "run_tiles"]

#: One queued unit of work: (tile index, pixel indices, attempt number).
_Task = Tuple[int, "IntArray", int]

EvaluateFn = Callable[[Any, "IntArray"], Tuple["FloatArray", "FloatArray"]]
StoreFn = Callable[[int, "IntArray", "FloatArray", "FloatArray"], None]
CompleteFn = Callable[["FloatArray", "FloatArray"], bool]
MakeEngineFn = Callable[[int], Any]


class TileRunReport:
    """What happened to every tile of one resilient run.

    Attributes
    ----------
    completed:
        Tiles whose every pixel reached its stopping rule (eligible for
        the checkpoint ledger).
    partial:
        Tiles evaluated under a tripped token — stored envelopes are
        valid but not fully tightened.
    failed:
        Tiles whose retries were exhausted, as ``{tile: error string}``.
    unprocessed:
        Tiles never taken off the queue (cancellation hit first).
    retries / quarantined / faults_injected:
        Recovery accounting; ``quarantined`` lists retired worker ids.
    elapsed_s:
        Wall-clock seconds of the drain loop.
    """

    __slots__ = (
        "completed",
        "partial",
        "failed",
        "unprocessed",
        "retries",
        "quarantined",
        "faults_injected",
        "elapsed_s",
    )

    def __init__(self) -> None:
        self.completed: List[int] = []
        self.partial: List[int] = []
        self.failed: Dict[int, str] = {}
        self.unprocessed: List[int] = []
        self.retries = 0
        self.quarantined: List[int] = []
        self.faults_injected = 0
        self.elapsed_s = 0.0

    @property
    def all_completed(self) -> bool:
        """Whether every queued tile fully resolved."""
        return not (self.partial or self.failed or self.unprocessed)

    def __repr__(self) -> str:
        return (
            f"TileRunReport(completed={len(self.completed)}, "
            f"partial={len(self.partial)}, failed={len(self.failed)}, "
            f"unprocessed={len(self.unprocessed)}, retries={self.retries})"
        )


def _sane(lower: FloatArray, upper: FloatArray) -> bool:
    """Envelope sanity: every bound finite (kernels are bounded)."""
    return bool(np.isfinite(lower).all() and np.isfinite(upper).all())


def run_tiles(
    tiles: Sequence[IntArray],
    evaluate: EvaluateFn,
    store: StoreFn,
    tile_complete: CompleteFn,
    make_engine: MakeEngineFn,
    *,
    token: CancellationToken,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[Tracer] = None,
    workers: Optional[int] = None,
    skip: Optional[Set[int]] = None,
    op: str = "eps",
) -> TileRunReport:
    """Drain ``tiles`` through ``evaluate``/``store`` resiliently.

    Parameters
    ----------
    tiles:
        Pixel-index arrays in deterministic (row-major) order; the tile
        index is the position in this sequence.
    evaluate:
        ``evaluate(engine, pixels) -> (lower, upper)`` — runs the
        refinement for one tile's pixels. Must be deterministic and
        side-effect-free apart from engine statistics, and must poll
        ``token`` internally so cancellation reaches mid-tile work.
    store:
        ``store(tile, pixels, lower, upper)`` — writes results into
        caller-owned arrays (called for partial results too). Writes
        are disjoint across tiles; completion order cannot change bits.
    tile_complete:
        ``tile_complete(lower, upper) -> bool`` — whether every pixel
        reached its stopping rule (the ledger-eligibility test).
    make_engine:
        ``make_engine(worker_id) -> engine`` — one engine per worker
        (engines are not thread-safe across workers).
    token / retry / faults / tracer:
        Cancellation token (required; pass an un-budgeted
        ``CancellationToken()`` for "only explicit cancel"), retry
        policy (default :class:`RetryPolicy`), optional fault injector
        and tracer.
    workers:
        ``None`` or ``<= 1`` for the sequential loop; otherwise that
        many threads.
    skip:
        Tile indices to leave untouched (checkpoint resume).
    op:
        Label for trace events (``"eps"`` / ``"tau"``).
    """
    policy = retry if retry is not None else RetryPolicy()
    token.start()
    queue: Deque[_Task] = deque()
    for index, pixels in enumerate(tiles):
        if skip is not None and index in skip:
            continue
        queue.append((index, pixels, 1))

    report = TileRunReport()
    start = time.perf_counter()

    def recovery(action: str, **fields: Any) -> None:
        if tracer is not None:
            tracer.recovery(action=action, **fields)

    def attempt_tile(
        engine: Any, tile: int, pixels: IntArray, attempt: int, worker: int
    ) -> Tuple[FloatArray, FloatArray]:
        if faults is not None:
            faults.before(tile, attempt, worker)
        lower, upper = evaluate(engine, pixels)
        if faults is not None:
            lower, upper = faults.after(tile, attempt, lower, upper, worker)
        if not _sane(lower, upper):
            raise TransientTileError(
                f"tile {tile}: non-finite bound envelope from provider"
            )
        return lower, upper

    if workers is None or workers <= 1:
        _run_sequential(
            queue, evaluate, store, tile_complete, make_engine,
            token=token, policy=policy, report=report,
            attempt_tile=attempt_tile, recovery=recovery, tracer=tracer, op=op,
        )
    else:
        _run_threaded(
            queue, store, tile_complete, make_engine, int(workers),
            token=token, policy=policy, report=report,
            attempt_tile=attempt_tile, recovery=recovery, tracer=tracer, op=op,
        )

    report.unprocessed = sorted(task[0] for task in queue)
    if faults is not None:
        report.faults_injected = faults.injected
    report.elapsed_s = time.perf_counter() - start
    return report


def _give_up_or_requeue(
    queue: Deque[_Task],
    task: _Task,
    err: BaseException,
    policy: RetryPolicy,
    report: TileRunReport,
    recovery: Callable[..., None],
) -> None:
    """Transient-failure bookkeeping shared by both loops.

    Caller must hold whatever lock guards ``queue`` and ``report``.
    """
    tile, pixels, attempt = task
    if attempt >= policy.max_attempts:
        report.failed[tile] = f"{type(err).__name__}: {err}"
        recovery(
            action="give-up", tile=tile, attempt=attempt,
            reason=type(err).__name__,
        )
    else:
        report.retries += 1
        recovery(
            action="retry", tile=tile, attempt=attempt,
            reason=type(err).__name__,
        )
        queue.append((tile, pixels, attempt + 1))


def _run_sequential(
    queue: Deque[_Task],
    evaluate: EvaluateFn,
    store: StoreFn,
    tile_complete: CompleteFn,
    make_engine: MakeEngineFn,
    *,
    token: CancellationToken,
    policy: RetryPolicy,
    report: TileRunReport,
    attempt_tile: Callable[..., Tuple[FloatArray, FloatArray]],
    recovery: Callable[..., None],
    tracer: Optional[Tracer],
    op: str,
) -> None:
    engine = make_engine(0)
    while queue:
        if token.stop_reason() is not None:
            break
        task = queue.popleft()
        tile, pixels, attempt = task
        tile_start = time.perf_counter()
        try:
            lower, upper = attempt_tile(engine, tile, pixels, attempt, 0)
        except KeyboardInterrupt:
            token.cancel(STOP_INTERRUPT)
            recovery(action="cancel", reason=STOP_INTERRUPT)
            queue.appendleft(task)
            break
        except Exception as err:
            if not is_transient(err):
                raise
            delay = policy.delay(attempt)
            if delay > 0.0 and attempt < policy.max_attempts:
                time.sleep(delay)
            _give_up_or_requeue(queue, task, err, policy, report, recovery)
            continue
        store(tile, pixels, lower, upper)
        if tile_complete(lower, upper):
            report.completed.append(tile)
        else:
            report.partial.append(tile)
        if tracer is not None:
            tracer.tile(
                index=tile, rows=int(len(pixels)),
                seconds=time.perf_counter() - tile_start, worker=0, op=op,
            )


def _run_threaded(
    queue: Deque[_Task],
    store: StoreFn,
    tile_complete: CompleteFn,
    make_engine: MakeEngineFn,
    nworkers: int,
    *,
    token: CancellationToken,
    policy: RetryPolicy,
    report: TileRunReport,
    attempt_tile: Callable[..., Tuple[FloatArray, FloatArray]],
    recovery: Callable[..., None],
    tracer: Optional[Tracer],
    op: str,
) -> None:
    cond = threading.Condition()
    inflight = [0]
    alive = [nworkers]
    fatal: List[BaseException] = []

    def worker(worker_id: int) -> None:
        engine = make_engine(worker_id)
        consecutive = 0
        while True:
            with cond:
                while not queue and inflight[0] > 0 and not fatal:
                    cond.wait(0.05)
                if fatal or not queue or token.stop_reason() is not None:
                    cond.notify_all()
                    return
                task = queue.popleft()
                inflight[0] += 1
            tile, pixels, attempt = task
            tile_start = time.perf_counter()
            try:
                lower, upper = attempt_tile(
                    engine, tile, pixels, attempt, worker_id
                )
            except BaseException as err:
                if isinstance(err, KeyboardInterrupt):
                    token.cancel(STOP_INTERRUPT)
                    recovery(action="cancel", reason=STOP_INTERRUPT)
                    with cond:
                        inflight[0] -= 1
                        queue.appendleft(task)
                        cond.notify_all()
                    return
                if not is_transient(err):
                    with cond:
                        inflight[0] -= 1
                        fatal.append(err)
                        cond.notify_all()
                    return
                consecutive += 1
                if consecutive >= policy.quarantine_after and alive[0] > 1:
                    # Blame the worker, not the tile: requeue at the
                    # same attempt number and retire this thread.
                    with cond:
                        inflight[0] -= 1
                        alive[0] -= 1
                        report.quarantined.append(worker_id)
                        report.retries += 1
                        queue.append(task)
                        cond.notify_all()
                    recovery(
                        action="quarantine", worker=worker_id, tile=tile,
                        reason=type(err).__name__,
                    )
                    return
                delay = policy.delay(attempt)
                if delay > 0.0 and attempt < policy.max_attempts:
                    time.sleep(delay)
                with cond:
                    inflight[0] -= 1
                    _give_up_or_requeue(
                        queue, task, err, policy, report, recovery
                    )
                    cond.notify_all()
                continue
            consecutive = 0
            store(tile, pixels, lower, upper)
            complete = tile_complete(lower, upper)
            with cond:
                inflight[0] -= 1
                if complete:
                    report.completed.append(tile)
                else:
                    report.partial.append(tile)
                cond.notify_all()
            if tracer is not None:
                tracer.tile(
                    index=tile, rows=int(len(pixels)),
                    seconds=time.perf_counter() - tile_start,
                    worker=worker_id, op=op,
                )

    threads = [
        threading.Thread(
            target=worker, args=(i,), name=f"repro-tile-{i}", daemon=True
        )
        for i in range(nworkers)
    ]
    for thread in threads:
        thread.start()
    try:
        for thread in threads:
            while thread.is_alive():
                thread.join(0.1)
    except KeyboardInterrupt:
        token.cancel(STOP_INTERRUPT)
        recovery(action="cancel", reason=STOP_INTERRUPT)
        with cond:
            cond.notify_all()
        for thread in threads:
            thread.join()
    if fatal:
        raise fatal[0]
