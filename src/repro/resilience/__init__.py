"""Deadline-aware resilience: budgets, cancellation, retries, recovery.

A render either finishes or it doesn't — this package makes "doesn't"
a first-class, well-defined outcome instead of a stack trace:

* :mod:`repro.resilience.budget` — :class:`Budget` (wall-clock
  deadline, kernel-evaluation budget, memory cap) and the cooperative
  :class:`CancellationToken` both refinement engines poll at
  refinement-step granularity and the tiled renderer polls at tile
  granularity;
* :mod:`repro.resilience.result` — :class:`DegradedResult` /
  :class:`RenderOutcome`, the structured description of a partial
  render (best-so-far per-pixel ``(LB, UB)`` envelopes, resolved-pixel
  fraction, worst residual gap, stop reason);
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff, per-worker quarantine) and the transient/fatal error
  taxonomy;
* :mod:`repro.resilience.checkpoint` — :class:`TileLedger`, the
  completed-tile checkpoint a killed render resumes from;
* :mod:`repro.resilience.faults` — deterministic seeded fault
  injectors (``REPRO_FAULTS=``) so every degradation path above is
  exercised in CI;
* :mod:`repro.resilience.runner` — the resilient tile loop gluing the
  pieces together for :class:`repro.visual.kdv.KDVRenderer`;
* :mod:`repro.resilience.supervisor` — :class:`PoolSupervisor` (rebuild
  policy for broken process pools — backoff-capped, storm-bounded) and
  :class:`CircuitBreaker` (per-dataset closed/open/half-open breaker
  the tile service consults before rendering).

See ``docs/robustness.md`` for budget semantics, the degradation
contract, the fault matrix and the resume format.
"""

from __future__ import annotations

from repro.resilience.budget import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_INTERRUPT,
    STOP_KERNEL_BUDGET,
    STOP_MEMORY,
    STOP_TILE_FAILURES,
    Budget,
    CancellationToken,
)
from repro.resilience.checkpoint import TileLedger
from repro.resilience.faults import FaultInjector, FaultPlan, InjectedFault
from repro.resilience.result import DegradedResult, RenderOutcome
from repro.resilience.retry import RetryPolicy, TransientTileError, is_transient
from repro.resilience.runner import TileRunReport, run_tiles
from repro.resilience.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    PoolSupervisor,
)

__all__ = [
    "Budget",
    "CancellationToken",
    "CircuitBreaker",
    "PoolSupervisor",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "DegradedResult",
    "RenderOutcome",
    "RetryPolicy",
    "TransientTileError",
    "is_transient",
    "TileLedger",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "TileRunReport",
    "run_tiles",
    "STOP_DEADLINE",
    "STOP_KERNEL_BUDGET",
    "STOP_MEMORY",
    "STOP_CANCELLED",
    "STOP_INTERRUPT",
    "STOP_TILE_FAILURES",
]
