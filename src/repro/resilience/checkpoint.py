"""Per-tile checkpoint/resume: the completed-tile ledger.

A :class:`TileLedger` records, for one tiled render, which tiles have
*fully resolved* and the per-pixel ``(LB, UB)`` envelopes of the whole
grid so far. A killed render saves the ledger (``.npz``); a later run
passes ``resume_from=`` and only recomputes tiles the ledger does not
mark completed.

The resume contract is **bit-identity**: a tile is marked completed
only when every one of its pixels reached its stopping rule, which (for
the deterministic batched refinement schedule) happens exactly when the
tile's refinement loop terminated naturally — so the stored envelopes
are the same bits an uninterrupted run would have produced, and the
resumed image equals the uninterrupted image bit for bit.

Safety: the ledger embeds a JSON *signature* of everything that shapes
tile values (dataset fingerprint, kernel, bandwidth, grid geometry,
operation and its parameters). Loading a ledger whose signature differs
from the resuming render raises
:class:`~repro.errors.CheckpointError` — splicing pixels from a
different render into an image must be impossible, not merely unlikely.
Saves are atomic (write to a temporary file, then ``os.replace``) so a
kill during save leaves either the old checkpoint or the new one, never
a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Set, Union

import numpy as np

from repro._types import BoolArray, FloatArray, IntArray
from repro.errors import CheckpointError, InvalidParameterError

__all__ = ["TileLedger"]

#: Format marker stored inside every ledger file.
_FORMAT = "repro-tile-ledger-v1"


class TileLedger:
    """Completed-tile ledger for one tiled render.

    Parameters
    ----------
    signature:
        JSON-serialisable dict identifying the render (see module
        docstring). Compared exactly on resume.
    lower / upper:
        Flat per-pixel envelope arrays (row-major, full grid). Only the
        slices of completed tiles are meaningful on resume.
    completed:
        Boolean array, one flag per tile (tile order is the grid's
        row-major tile order, which is deterministic).
    """

    __slots__ = ("signature", "lower", "upper", "completed")

    def __init__(
        self,
        signature: Dict[str, Any],
        lower: FloatArray,
        upper: FloatArray,
        completed: BoolArray,
    ) -> None:
        self.signature = dict(signature)
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        self.completed = np.asarray(completed, dtype=bool)
        if self.lower.shape != self.upper.shape:
            raise InvalidParameterError(
                "ledger lower/upper envelope shapes differ: "
                f"{self.lower.shape} vs {self.upper.shape}"
            )

    @classmethod
    def new(
        cls,
        signature: Dict[str, Any],
        n_pixels: int,
        n_tiles: int,
    ) -> TileLedger:
        """An empty ledger: vacuous envelopes, no tile completed."""
        return cls(
            signature,
            np.zeros(int(n_pixels), dtype=np.float64),
            np.full(int(n_pixels), np.inf, dtype=np.float64),
            np.zeros(int(n_tiles), dtype=bool),
        )

    # -- persistence -------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Atomically write the ledger to ``path`` (npz format)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    format=np.array(_FORMAT),
                    signature=np.array(
                        json.dumps(self.signature, sort_keys=True)
                    ),
                    lower=self.lower,
                    upper=self.upper,
                    completed=self.completed,
                )
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # a failed save leaves no debris behind
                tmp.unlink()

    @classmethod
    def load(cls, path: Union[str, Path]) -> TileLedger:
        """Read a ledger; :class:`CheckpointError` if unusable."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                if str(data["format"]) != _FORMAT:
                    raise CheckpointError(
                        f"{path}: unknown checkpoint format "
                        f"{str(data['format'])!r} (expected {_FORMAT!r})"
                    )
                signature = json.loads(str(data["signature"]))
                return cls(
                    signature,
                    data["lower"],
                    data["upper"],
                    data["completed"],
                )
        except CheckpointError:
            raise
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{path}: unreadable or corrupt checkpoint ({exc})"
            ) from exc

    def require_signature(self, expected: Dict[str, Any]) -> None:
        """Refuse to resume a render the ledger does not belong to."""
        if self.signature != dict(expected):
            ours = json.dumps(self.signature, sort_keys=True)
            theirs = json.dumps(dict(expected), sort_keys=True)
            raise CheckpointError(
                "checkpoint signature mismatch — refusing to resume.\n"
                f"  checkpoint: {ours}\n"
                f"  render:     {theirs}"
            )

    # -- bookkeeping -------------------------------------------------------

    def mark_completed(
        self,
        tile: int,
        pixels: IntArray,
        lower: FloatArray,
        upper: FloatArray,
    ) -> None:
        """Record tile ``tile`` as fully resolved with its envelopes."""
        self.lower[pixels] = lower
        self.upper[pixels] = upper
        self.completed[tile] = True

    def completed_tiles(self) -> Set[int]:
        """Indices of tiles already resolved (the resume skip set)."""
        return set(int(i) for i in np.flatnonzero(self.completed))

    def __repr__(self) -> str:
        done = int(self.completed.sum())
        return (
            f"TileLedger(tiles={self.completed.size}, completed={done}, "
            f"pixels={self.lower.size})"
        )
