"""Structured description of a partial (degraded) render.

A resilient render never "half fails": it returns a
:class:`RenderOutcome` carrying the best-so-far image, the per-pixel
``(LB, UB)`` envelopes it was derived from, and a
:class:`DegradedResult` record saying *how far it got and why it
stopped*. A run that finished normally carries ``degraded=None`` and its
image is bit-identical to the non-resilient code path.

``DegradedResult.as_dict()`` is the JSON sidecar schema the CLI writes
next to a partial image (``<out>.degraded.json``); field names are
stable and documented in ``docs/robustness.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro._types import BoolArray, FloatArray

__all__ = ["DegradedResult", "RenderOutcome"]


class DegradedResult:
    """Why and how much a render was degraded.

    Attributes
    ----------
    reason:
        Stop reason (a ``STOP_*`` constant from
        :mod:`repro.resilience.budget`).
    pixels_total / pixels_resolved:
        Grid size and how many pixels reached their stopping rule
        (``resolved_fraction`` is the ratio).
    worst_gap:
        Largest residual ``UB - LB`` over unresolved pixels (``0.0``
        when everything resolved).
    tiles_total / tiles_completed / tiles_failed:
        Tile accounting; ``tiles_failed`` lists tiles whose retries were
        exhausted (each as ``{"tile": i, "error": str}``).
    retries / faults_injected / quarantined_workers:
        Recovery accounting from the tile runner.
    elapsed_s:
        Wall-clock seconds of the online (render) stage.
    budget:
        The budget in force, as a plain dict (or ``None``).
    """

    __slots__ = (
        "reason",
        "pixels_total",
        "pixels_resolved",
        "worst_gap",
        "tiles_total",
        "tiles_completed",
        "tiles_failed",
        "retries",
        "faults_injected",
        "quarantined_workers",
        "elapsed_s",
        "budget",
    )

    def __init__(
        self,
        *,
        reason: Optional[str],
        pixels_total: int,
        pixels_resolved: int,
        worst_gap: float,
        tiles_total: int,
        tiles_completed: int,
        tiles_failed: Optional[List[Dict[str, Any]]] = None,
        retries: int = 0,
        faults_injected: int = 0,
        quarantined_workers: Optional[List[int]] = None,
        elapsed_s: float = 0.0,
        budget: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.reason = reason
        self.pixels_total = int(pixels_total)
        self.pixels_resolved = int(pixels_resolved)
        self.worst_gap = float(worst_gap)
        self.tiles_total = int(tiles_total)
        self.tiles_completed = int(tiles_completed)
        self.tiles_failed = list(tiles_failed) if tiles_failed else []
        self.retries = int(retries)
        self.faults_injected = int(faults_injected)
        self.quarantined_workers = (
            list(quarantined_workers) if quarantined_workers else []
        )
        self.elapsed_s = float(elapsed_s)
        self.budget = budget

    @property
    def resolved_fraction(self) -> float:
        """Fraction of pixels that reached their stopping rule."""
        if self.pixels_total <= 0:
            return 1.0
        return self.pixels_resolved / self.pixels_total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the ``.degraded.json`` schema)."""
        return {
            "reason": self.reason,
            "pixels_total": self.pixels_total,
            "pixels_resolved": self.pixels_resolved,
            "resolved_fraction": round(self.resolved_fraction, 6),
            "worst_gap": self.worst_gap,
            "tiles_total": self.tiles_total,
            "tiles_completed": self.tiles_completed,
            "tiles_failed": self.tiles_failed,
            "retries": self.retries,
            "faults_injected": self.faults_injected,
            "quarantined_workers": self.quarantined_workers,
            "elapsed_s": round(self.elapsed_s, 6),
            "budget": self.budget,
        }

    def __repr__(self) -> str:
        return (
            f"DegradedResult(reason={self.reason!r}, "
            f"resolved={self.pixels_resolved}/{self.pixels_total}, "
            f"worst_gap={self.worst_gap:.3g}, retries={self.retries})"
        )


class RenderOutcome:
    """A resilient render's full return value.

    Attributes
    ----------
    image:
        The best-so-far answer image: εKDV returns the interval
        midpoint ``0.5 * (LB + UB)`` per pixel (identical to the exact
        answer formula when the pixel resolved), τKDV the hot mask
        ``LB >= τ`` (conservative for unresolved pixels: a pixel not yet
        proven hot renders cold).
    lower / upper:
        Per-pixel bound envelopes with the same shape as ``image``.
        They satisfy ``lower <= F <= upper`` always — cancellation only
        stops tightening, it never invalidates them.
    resolved:
        Boolean image: which pixels reached their stopping rule.
    degraded:
        :class:`DegradedResult` when the render stopped early (or lost
        tiles), ``None`` for a complete run.
    stats / checkpoint_path:
        Optional extras: merged query-stats dict and the checkpoint the
        run wrote (for ``--resume-from``).
    """

    __slots__ = (
        "image",
        "lower",
        "upper",
        "resolved",
        "degraded",
        "stats",
        "checkpoint_path",
    )

    def __init__(
        self,
        image: FloatArray,
        lower: FloatArray,
        upper: FloatArray,
        resolved: BoolArray,
        degraded: Optional[DegradedResult] = None,
        stats: Optional[Dict[str, int]] = None,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.image = image
        self.lower = lower
        self.upper = upper
        self.resolved = resolved
        self.degraded = degraded
        self.stats = stats
        self.checkpoint_path = checkpoint_path

    @property
    def complete(self) -> bool:
        """Whether the render ran to full completion."""
        return self.degraded is None

    def __repr__(self) -> str:
        state = "complete" if self.complete else repr(self.degraded)
        return f"RenderOutcome(shape={getattr(self.image, 'shape', None)}, {state})"
