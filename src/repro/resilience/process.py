"""Cross-process cancellation plumbing for the process-pool executor.

A :class:`~repro.resilience.budget.CancellationToken` is an in-process
object — worker processes cannot see its latch. This module bridges it
over shared memory:

* the parent allocates a :class:`CancelSlots` array (one byte per
  concurrent render) alongside the pool and hands it to every worker
  through the pool initializer — multiprocessing sync/shared objects
  only cross the process boundary by inheritance, never by per-task
  pickling, which is why the slots exist for the pool's lifetime and
  renders merely *claim* an index;
* each render claims a slot, and a tiny :class:`CancelWatcher` thread
  mirrors the parent token into it: whatever trips the token — Ctrl-C,
  a wall-clock deadline, a spent kernel budget, a programmatic
  ``cancel()`` — becomes a nonzero byte within ``poll_interval``;
* workers wrap the slot in a :class:`SlotCancellationToken`, which the
  refinement engines poll exactly like any other token, so a cancelled
  tile stops at the next frontier pop and returns its best-so-far
  ``(LB, UB)`` envelopes — valid, just looser.

The worker-side reason is always :data:`~repro.resilience.budget.STOP_CANCELLED`
(one byte carries no reason string); the parent reports the *real*
reason from its own token when assembling the degraded result.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import InvalidParameterError
from repro.resilience.budget import STOP_CANCELLED, CancellationToken

if TYPE_CHECKING:
    import multiprocessing.context

__all__ = ["CancelSlots", "CancelWatcher", "SlotCancellationToken"]

#: Concurrent renders one pool supports; claims beyond this block on a
#: previous render releasing its slot (bounded, so no silent failure).
DEFAULT_SLOT_CAPACITY = 64


class CancelSlots:
    """A lock-free byte array of cancellation flags, one per render.

    Created in the parent with the pool's multiprocessing context and
    inherited by workers via the pool initializer. A zero byte means
    "keep going"; anything else means "stop". Byte stores are atomic on
    every platform CPython supports, so no lock guards the hot reads.
    """

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        capacity: int = DEFAULT_SLOT_CAPACITY,
    ) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.array = ctx.Array("b", capacity, lock=False)
        self._capacity = capacity
        self._free = list(range(capacity - 1, -1, -1))
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)

    @property
    def capacity(self) -> int:
        return self._capacity

    def claim(self, timeout: Optional[float] = None) -> int:
        """Reserve a cleared slot for one render; blocks when exhausted."""
        with self._available:
            while not self._free:
                if not self._available.wait(timeout=timeout):
                    raise InvalidParameterError(
                        f"all {self._capacity} cancellation slots are claimed; "
                        "a previous render did not release its slot"
                    )
            slot = self._free.pop()
        self.array[slot] = 0
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the pool (clears it for the next claimant)."""
        self.array[slot] = 0
        with self._available:
            self._free.append(slot)
            self._available.notify()

    def set(self, slot: int) -> None:
        """Trip a slot (visible to every attached process)."""
        self.array[slot] = 1

    def is_set(self, slot: int) -> bool:
        return self.array[slot] != 0


class SlotCancellationToken(CancellationToken):
    """Worker-side token that polls a :class:`CancelSlots` byte.

    Behaves exactly like a plain token for the engines (latching,
    ``charge`` accounting for the worker's own stats) but additionally
    trips as soon as the parent sets the slot. Budget limits stay
    parent-enforced — the parent watcher is the single authority, so
    worker and parent cannot disagree about *whether* to stop, only
    observe it a poll apart.
    """

    __slots__ = ("_slot_array", "_slot")

    def __init__(self, slot_array: object, slot: int) -> None:
        super().__init__(budget=None)
        self._slot_array = slot_array
        self._slot = int(slot)

    def stop_reason(self, memory_bytes: int = 0) -> Optional[str]:
        if not self._cancelled and self._slot_array[self._slot] != 0:
            self.cancel(STOP_CANCELLED)
        return super().stop_reason(memory_bytes)


class CancelWatcher:
    """Mirrors a parent token's latch into a shared slot.

    A daemon thread polls ``token.stop_reason()`` every
    ``poll_interval`` seconds and sets the slot once it latches; the
    render loop additionally calls :meth:`trip` for immediate
    propagation (e.g. from a ``KeyboardInterrupt`` handler) without
    waiting a poll period. Use as a context manager around the render.
    """

    def __init__(
        self,
        slots: CancelSlots,
        slot: int,
        token: CancellationToken,
        poll_interval: float = 0.02,
    ) -> None:
        self._slots = slots
        self._slot = slot
        self._token = token
        self._poll_interval = float(poll_interval)
        self._done = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> CancelWatcher:
        self._thread = threading.Thread(
            target=self._run, name="repro-cancel-watcher", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._done.set()
        if self._thread is not None:
            self._thread.join()

    def trip(self) -> None:
        """Set the slot immediately (bypasses the poll cadence)."""
        self._slots.set(self._slot)

    def _run(self) -> None:
        while not self._done.wait(self._poll_interval):
            if self._token.stop_reason() is not None:
                self.trip()
                return
        # Final check on shutdown so a trip racing the exit still lands.
        if self._token.stop_reason() is not None:
            self.trip()
