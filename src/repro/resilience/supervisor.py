"""Worker supervision: circuit breakers and pool-rebuild policy.

Two small, service-agnostic state machines that turn "a process died"
and "this dataset keeps failing" from outages into bounded, observable
recovery procedures:

* :class:`PoolSupervisor` — the rebuild policy a
  :class:`~repro.visual.executors.ProcessTileExecutor` consults when
  ``concurrent.futures`` reports a broken pool. It grants (or denies)
  each rebuild, spacing consecutive rebuilds with exponential backoff so
  a crash-looping workload cannot fork-bomb the host, and resets the
  storm counter once a replay round makes progress. The executor owns
  the mechanics (recreate the ``ProcessPoolExecutor`` against the
  already-published shared-memory tree, replay lost tiles); the
  supervisor owns only the *policy* — how many times, how fast.

* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, one per served dataset. Consecutive render failures trip it
  open; while open every request is rejected upfront
  (:class:`~repro.errors.CircuitOpenError`, HTTP 503) instead of
  burning a worker slot on a render that will fail; after
  ``reset_timeout_s`` a single probe request is let through, and its
  outcome decides between closing the circuit and re-opening it.

Both classes are thread-safe, clock-injectable (deterministic tests)
and snapshot to plain dicts for ``/stats``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import InvalidParameterError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "PoolSupervisor",
    "default_pool_supervisor",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Environment toggle for default process-pool supervision: set to
#: ``0``/``off``/``false`` to disable rebuilding broken pools (the
#: typed :class:`~repro.errors.WorkerPoolBrokenError` then surfaces on
#: the first break).
ENV_POOL_SUPERVISE = "REPRO_POOL_SUPERVISE"


class PoolSupervisor:
    """Rebuild policy for a broken process pool.

    Parameters
    ----------
    max_consecutive_rebuilds:
        How many rebuilds may happen back-to-back without any tile
        completing in between. Once exhausted, :meth:`grant` denies and
        the executor surfaces :class:`~repro.errors.WorkerPoolBrokenError`.
    backoff_s / backoff_factor / max_backoff_s:
        Exponential backoff between consecutive rebuilds: rebuild ``k``
        (1-based) waits ``min(backoff_s * backoff_factor**(k-1),
        max_backoff_s)`` seconds. Keeps a crash-looping dataset from
        re-forking workers in a tight loop.
    """

    __slots__ = (
        "max_consecutive_rebuilds",
        "backoff_s",
        "backoff_factor",
        "max_backoff_s",
        "total_rebuilds",
        "total_denied",
        "_consecutive",
        "_lock",
    )

    def __init__(
        self,
        max_consecutive_rebuilds: int = 5,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 2.0,
    ) -> None:
        if int(max_consecutive_rebuilds) < 1:
            raise InvalidParameterError(
                f"max_consecutive_rebuilds must be >= 1, got "
                f"{max_consecutive_rebuilds!r}"
            )
        if backoff_s < 0.0 or max_backoff_s < 0.0:
            raise InvalidParameterError("backoff times must be >= 0")
        if backoff_factor < 1.0:
            raise InvalidParameterError(
                f"backoff_factor must be >= 1, got {backoff_factor!r}"
            )
        self.max_consecutive_rebuilds = int(max_consecutive_rebuilds)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        self.total_rebuilds = 0
        self.total_denied = 0
        self._consecutive = 0
        self._lock = threading.Lock()

    def grant(self) -> Optional[float]:
        """Permission for one rebuild: backoff seconds, or ``None`` (deny)."""
        with self._lock:
            if self._consecutive >= self.max_consecutive_rebuilds:
                self.total_denied += 1
                return None
            self._consecutive += 1
            self.total_rebuilds += 1
            return min(
                self.backoff_s * self.backoff_factor ** (self._consecutive - 1),
                self.max_backoff_s,
            )

    def note_progress(self) -> None:
        """A replay round completed tiles — the storm counter resets."""
        with self._lock:
            self._consecutive = 0

    @property
    def consecutive_rebuilds(self) -> int:
        """Rebuilds granted since the last :meth:`note_progress`."""
        with self._lock:
            return self._consecutive

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (for ``/stats``)."""
        with self._lock:
            return {
                "total_rebuilds": self.total_rebuilds,
                "total_denied": self.total_denied,
                "consecutive_rebuilds": self._consecutive,
                "max_consecutive_rebuilds": self.max_consecutive_rebuilds,
            }

    def __repr__(self) -> str:
        return (
            f"PoolSupervisor(rebuilds={self.total_rebuilds}, "
            f"consecutive={self.consecutive_rebuilds})"
        )


def default_pool_supervisor() -> Optional[PoolSupervisor]:
    """A fresh default supervisor, or ``None`` when the env disables it.

    Consulted by :class:`~repro.visual.executors.ProcessTileExecutor`
    when no explicit supervisor (or ``None``) was passed: supervision is
    on by default — a killed worker should cost a rebuild, not the
    process — and ``REPRO_POOL_SUPERVISE=0`` turns it off globally for
    debugging (the typed error then surfaces on the first break).
    """
    raw = os.environ.get(ENV_POOL_SUPERVISE, "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return None
    return PoolSupervisor()


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls (with no intervening
        success) that trip the breaker open.
    reset_timeout_s:
        How long the breaker stays open before letting one half-open
        probe through.
    clock:
        Monotonic time source (injectable for tests).
    on_transition:
        Optional callback ``(old_state, new_state)`` fired inside the
        lock on every state change — the tile service mirrors
        transitions into its metrics registry here.
    """

    __slots__ = (
        "failure_threshold",
        "reset_timeout_s",
        "_clock",
        "_on_transition",
        "_lock",
        "_state",
        "_consecutive_failures",
        "_opened_at",
        "_probe_in_flight",
        "failures_total",
        "successes_total",
        "rejections_total",
        "transitions_total",
    )

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if int(failure_threshold) < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if not float(reset_timeout_s) >= 0.0:
            raise InvalidParameterError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s!r}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.failures_total = 0
        self.successes_total = 0
        self.rejections_total = 0
        self.transitions_total = 0

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        self.transitions_total += 1
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the timeout ran."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == BREAKER_OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self._transition(BREAKER_HALF_OPEN)
                self._probe_in_flight = False

    def allow(self) -> bool:
        """Whether a request may proceed (claims the half-open probe slot)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self.rejections_total += 1
            return False

    def record_success(self) -> None:
        """A render succeeded: close the circuit / reset the failure run."""
        with self._lock:
            self.successes_total += 1
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != BREAKER_CLOSED:
                self._transition(BREAKER_CLOSED)
                self._opened_at = None

    def record_failure(self) -> None:
        """A render failed: count it; trip open at the threshold."""
        with self._lock:
            self.failures_total += 1
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == BREAKER_HALF_OPEN or (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe (0 when not open)."""
        with self._lock:
            if self._state != BREAKER_OPEN or self._opened_at is None:
                return 0.0
            return max(
                0.0, self.reset_timeout_s - (self._clock() - self._opened_at)
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (for ``/stats``)."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "rejections_total": self.rejections_total,
                "transitions_total": self.transitions_total,
                "reset_timeout_s": self.reset_timeout_s,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r})"
