"""Command-line interface: ``python -m repro`` / ``repro-kdv``.

Subcommands
-----------
``render``
    Render an εKDV or τKDV colour map of a synthetic dataset (or a CSV
    file) to PNG. ``--trace-out trace.jsonl`` additionally records a
    structured trace of the render (see :mod:`repro.obs`) and prints the
    per-method refinement summary.
``experiment``
    Run one of the paper's experiments and print its result table.
``serve``
    Start the KDV tile server (:mod:`repro.serve`): slippy-map tiles at
    ``/tile/{dataset}/{z}/{x}/{y}.png`` with the multi-level density
    cache, plus ``/stats``.
``list``
    Show the registered kernels, methods, datasets and experiments.

All rendering routes through the unified
:class:`~repro.visual.request.RenderRequest` API (``docs/api.md`` maps
the legacy keyword surface onto it).

Invalid numeric inputs (``--eps <= 0``, non-finite ``--tau-offset``,
non-positive ``--width``/``--height``/``--n``) are rejected at parse
time with a clear message and exit code 2; domain errors raised deeper
in the library (:class:`~repro.errors.ReproError`) exit with code 1.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.core.kernels import available_kernels
from repro.errors import ReproError
from repro.experiments.runner import available_experiments, run_experiments
from repro.methods.registry import available_methods

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """Argparse type: an integer strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: a finite float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not math.isfinite(value) or value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be a positive finite number, got {value!r}")
    return value


def _finite_float(text: str) -> float:
    """Argparse type: any finite float (rejects nan/inf)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not math.isfinite(value):
        raise argparse.ArgumentTypeError(f"must be finite, got {value!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-kdv",
        description="QUAD: quadratic-bound-based kernel density visualization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="render a KDV colour map to PNG")
    source = render.add_mutually_exclusive_group()
    source.add_argument("--dataset", default="crime", help="synthetic dataset name")
    source.add_argument("--csv", help="CSV file with one point per row")
    render.add_argument(
        "--n", type=_positive_int, default=10_000, help="synthetic dataset size"
    )
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--kernel", default="gaussian", choices=available_kernels())
    render.add_argument("--method", default="quad", choices=available_methods())
    render.add_argument("--width", type=_positive_int, default=320)
    render.add_argument("--height", type=_positive_int, default=240)
    render.add_argument(
        "--eps", type=_positive_float, default=0.01, help="relative error (eKDV)"
    )
    render.add_argument(
        "--tau-offset",
        type=_finite_float,
        default=None,
        help="render a tKDV mask at tau = mu + OFFSET * sigma instead of eKDV",
    )
    render.add_argument("--out", default="kdv.png", help="output PNG path")
    render.add_argument("--colormap", default="density")
    render.add_argument(
        "--tile-size",
        type=_positive_int,
        default=None,
        help="render in square tiles of this edge (enables the tiled engine)",
    )
    render.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="render tiles on this many worker threads",
    )
    render.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=None,
        help="anytime render: stop after this many milliseconds and write "
        "the best-so-far image plus a .degraded.json sidecar",
    )
    render.add_argument(
        "--resume-from",
        default=None,
        metavar="CKPT",
        help="resume a tiled render from a checkpoint written by --checkpoint",
    )
    render.add_argument(
        "--checkpoint",
        default=None,
        metavar="CKPT",
        help="write a completed-tile checkpoint (npz) for --resume-from",
    )
    render.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults, e.g. 'worker_crash:0.05,slow_tile:0.05' "
        "(also honoured from the REPRO_FAULTS environment variable)",
    )
    render.add_argument(
        "--drop-nonfinite",
        action="store_true",
        help="with --csv: drop rows containing NaN/Inf instead of rejecting the file",
    )
    render.add_argument(
        "--trace-out",
        default=None,
        metavar="JSONL",
        help="write a structured render trace (repro.obs) to this JSONL file "
        "and print the refinement summary",
    )
    render.add_argument(
        "--trace-steps",
        action="store_true",
        help="with --trace-out: also record per-refinement-step events (voluminous)",
    )

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=available_experiments() + ["all"],
        help="experiment id, or 'all' to run every registered experiment",
    )
    experiment.add_argument("--scale", default="small")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--out-dir", default=None, help="save CSV/JSON here")
    experiment.add_argument(
        "--keep-going",
        action="store_true",
        help="with 'all': continue past a failing experiment and report it "
        "at the end instead of aborting the batch",
    )

    serve = sub.add_parser("serve", help="start the KDV tile server")
    serve.add_argument(
        "--dataset",
        action="append",
        default=None,
        metavar="SPEC",
        help="dataset to serve as 'name[:n[:seed]]' (repeatable; "
        "default: crime:10000:0)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8699)
    serve.add_argument("--method", default="quad", choices=available_methods())

    # Flag groups mirror the nested ServiceConfig groups one-to-one
    # (RenderConfig / CacheConfig / ResilienceConfig / ShardingConfig).
    serve_render = serve.add_argument_group(
        "render", "what a served tile looks like and how it executes"
    )
    serve_render.add_argument("--tile-px", type=_positive_int, default=256)
    serve_render.add_argument(
        "--eps", type=_positive_float, default=0.05, help="default εKDV tolerance"
    )
    serve_render.add_argument(
        "--tau",
        type=_finite_float,
        default=None,
        help="serve τKDV hotspot masks at this threshold instead of εKDV",
    )
    serve_render.add_argument("--colormap", default="density")
    serve_render.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=10_000.0,
        help="per-request render deadline",
    )
    serve_render.add_argument("--workers", type=_positive_int, default=4)
    serve_render.add_argument(
        "--render-workers",
        type=_positive_int,
        default=None,
        help="tile-render worker count per request (default: single-threaded)",
    )
    serve_render.add_argument(
        "--render-executor",
        choices=["thread", "process"],
        default=None,
        help="run tile renders on threads or a supervised process pool",
    )
    serve_render.add_argument(
        "--backend",
        default=None,
        help="compute backend for renders (default: REPRO_BACKEND)",
    )
    serve_render.add_argument("--max-zoom", type=_positive_int, default=18)

    serve_cache = serve.add_argument_group(
        "cache", "tile cache byte budgets and TTL"
    )
    serve_cache.add_argument(
        "--cache-mb",
        type=_positive_int,
        default=64,
        help="byte budget per cache level (PNG / density / bounds)",
    )
    serve_cache.add_argument(
        "--ttl-s", type=_positive_float, default=None, help="cache entry TTL"
    )

    serve_resilience = serve.add_argument_group(
        "resilience", "backpressure, circuit breakers and degraded serving"
    )
    serve_resilience.add_argument(
        "--queue-limit",
        type=_positive_int,
        default=32,
        help="max in-flight renders before requests get 503",
    )
    serve_resilience.add_argument(
        "--no-degraded",
        action="store_true",
        help="disable degrade-don't-fail serving (stale/partial tiles); "
        "overload and failures then surface as 503/504/500",
    )
    serve_resilience.add_argument(
        "--breaker-threshold",
        type=_positive_int,
        default=5,
        help="consecutive render failures that open a dataset's circuit breaker",
    )
    serve_resilience.add_argument(
        "--breaker-reset-s",
        type=_positive_float,
        default=30.0,
        help="seconds an open breaker waits before its half-open probe",
    )
    serve_resilience.add_argument(
        "--drain-s",
        type=_positive_float,
        default=5.0,
        help="max seconds to wait for in-flight requests on shutdown",
    )

    serve_sharding = serve.add_argument_group(
        "sharding", "spatial scale-out of registered datasets"
    )
    serve_sharding.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="spatial shards per dataset (kd-tree partition; 1 = monolithic)",
    )
    serve_sharding.add_argument(
        "--min-points-per-shard",
        type=_positive_int,
        default=64,
        help="clamp the effective shard count so no shard starts smaller",
    )

    sub.add_parser("list", help="show registered components")
    return parser


def _command_render(args: argparse.Namespace) -> int:
    import json

    from repro.data.loaders import load_csv
    from repro.data.synthetic import load_dataset
    from repro.resilience import STOP_INTERRUPT, STOP_TILE_FAILURES, Budget
    from repro.visual.kdv import KDVRenderer
    from repro.visual.request import RenderOptions, RenderRequest

    from contextlib import nullcontext

    from repro.obs.runtime import trace_to

    if args.csv:
        points = load_csv(args.csv, drop_nonfinite=args.drop_nonfinite)
    else:
        points = load_dataset(args.dataset, n=args.n, seed=args.seed)
    renderer = KDVRenderer(
        points, resolution=(args.width, args.height), kernel=args.kernel
    )
    budget = (
        Budget.from_deadline_ms(args.deadline_ms)
        if args.deadline_ms is not None
        else None
    )
    # Tiled renders route through the anytime path as well, so Ctrl-C
    # mid-render still writes the partial image and degraded sidecar
    # (complete anytime renders are bit-identical to the strict path).
    resilient = any(
        value is not None
        for value in (
            budget,
            args.resume_from,
            args.checkpoint,
            args.faults,
            args.tile_size,
            args.workers,
        )
    )
    scope = (
        trace_to(args.trace_out, steps=args.trace_steps)
        if args.trace_out
        else nullcontext()
    )
    options = RenderOptions(
        tile_size=args.tile_size,
        workers=args.workers,
        budget=budget,
        resume_from=args.resume_from,
        checkpoint=args.checkpoint,
        faults=args.faults,
        anytime=resilient,
    )
    degraded = None
    with scope:
        if args.tau_offset is None:
            request = RenderRequest.for_eps(args.eps, args.method, options=options)
            result = renderer.render(request)
            if resilient:
                image = result.image
                degraded = result.degraded
            else:
                image = result
            path = renderer.save_density_png(image, args.out, colormap=args.colormap)
        else:
            mu, sigma = renderer.density_stats()
            tau = mu + args.tau_offset * sigma
            if not math.isfinite(tau):
                print(f"error: computed tau {tau!r} is not finite", file=sys.stderr)
                return 2
            request = RenderRequest.for_tau(tau, args.method, options=options)
            result = renderer.render(request)
            if resilient:
                mask = result.image.astype(bool)
                degraded = result.degraded
            else:
                mask = result
            path = renderer.save_mask_png(mask, args.out)
    print(f"wrote {path}")
    if degraded is not None:
        sidecar = f"{args.out}.degraded.json"
        with open(sidecar, "w") as handle:
            json.dump(degraded.as_dict(), handle, indent=2)
            handle.write("\n")
        print(
            f"render degraded ({degraded.reason}): "
            f"{degraded.pixels_resolved}/{degraded.pixels_total} pixels resolved; "
            f"details in {sidecar}",
            file=sys.stderr,
        )
    if args.trace_out:
        from repro.obs.report import format_summary, summarize_jsonl

        print(f"trace written to {args.trace_out}")
        print(format_summary(summarize_jsonl(args.trace_out)))
    if degraded is not None and degraded.reason == STOP_INTERRUPT:
        return 130
    if degraded is not None and degraded.reason == STOP_TILE_FAILURES:
        return 1
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    names = available_experiments() if args.name == "all" else [args.name]
    failures: list[str] = []
    outcomes = run_experiments(
        names,
        scale=args.scale,
        seed=args.seed,
        out_dir=args.out_dir,
        keep_going=args.keep_going,
    )
    for name, result in outcomes:
        if isinstance(result, ReproError):
            failures.append(name)
            print(f"# {name}: FAILED ({result})", file=sys.stderr)
            print()
            continue
        print(f"# {result.experiment}: {result.description}")
        for key, value in result.metadata.items():
            if key == "trace":
                print("#   trace = (attached; see saved JSON)")
                continue
            print(f"#   {key} = {value}")
        print(result.to_table())
        if args.out_dir:
            print(f"# saved under {args.out_dir}")
        print()
    if failures:
        print(
            f"error: {len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _parse_dataset_spec(spec: str) -> tuple[str, int, int]:
    """``name[:n[:seed]]`` -> ``(name, n, seed)`` with defaults 10000, 0."""
    parts = spec.split(":")
    if len(parts) > 3 or not parts[0]:
        raise ReproError(f"bad dataset spec {spec!r}; expected name[:n[:seed]]")
    try:
        n = int(parts[1]) if len(parts) > 1 and parts[1] else 10_000
        seed = int(parts[2]) if len(parts) > 2 and parts[2] else 0
    except ValueError:
        raise ReproError(
            f"bad dataset spec {spec!r}; n and seed must be integers"
        ) from None
    if n <= 0:
        raise ReproError(f"bad dataset spec {spec!r}; n must be positive")
    return parts[0], n, seed


def _command_serve(args: argparse.Namespace) -> int:
    from repro.data.synthetic import load_dataset
    from repro.serve import (
        CacheConfig,
        RenderConfig,
        ResilienceConfig,
        ServiceConfig,
        ShardingConfig,
        TileService,
        run_server,
    )

    megabyte = 1024 * 1024
    config = ServiceConfig(
        render=RenderConfig(
            tile_px=args.tile_px,
            eps=args.eps,
            tau=args.tau,
            colormap=args.colormap,
            deadline_ms=args.deadline_ms,
            workers=args.workers,
            render_workers=args.render_workers,
            executor=args.render_executor,
            backend=args.backend,
            max_zoom=args.max_zoom,
        ),
        cache=CacheConfig(
            png_bytes=args.cache_mb * megabyte,
            aux_bytes=args.cache_mb * megabyte,
            ttl_s=args.ttl_s,
        ),
        resilience=ResilienceConfig(
            queue_limit=args.queue_limit,
            degraded_serving=not args.no_degraded,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset_s,
            drain_s=args.drain_s,
        ),
        sharding=ShardingConfig(
            shards=args.shards,
            min_points_per_shard=args.min_points_per_shard,
        ),
    )
    service = TileService(config=config)
    for spec in args.dataset or ["crime:10000:0"]:
        name, n, seed = _parse_dataset_spec(spec)
        points = load_dataset(name, n=n, seed=seed)
        service.registry.register(name, points, method=args.method)
        shards = getattr(service.registry.get(name), "shard_count", 1)
        print(
            f"repro serve: registered {name!r} (n={n}, seed={seed}, "
            f"shards={shards})"
        )
    run_server(service, host=args.host, port=args.port)
    return 0


def _command_list(args: argparse.Namespace) -> int:
    from repro.data.synthetic import available_datasets

    print("kernels:    ", ", ".join(available_kernels()))
    print("methods:    ", ", ".join(available_methods()))
    print("datasets:   ", ", ".join(available_datasets()))
    print("experiments:", ", ".join(available_experiments()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "render": _command_render,
        "experiment": _command_experiment,
        "serve": _command_serve,
        "list": _command_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Interrupts inside a resilient tiled render are converted to a
        # cooperative cancellation (partial image + sidecar, exit 130,
        # handled above); this catches Ctrl-C anywhere else so the CLI
        # still exits with the conventional SIGINT code.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
