"""Command-line interface: ``python -m repro`` / ``repro-kdv``.

Subcommands
-----------
``render``
    Render an εKDV or τKDV colour map of a synthetic dataset (or a CSV
    file) to PNG. ``--trace-out trace.jsonl`` additionally records a
    structured trace of the render (see :mod:`repro.obs`) and prints the
    per-method refinement summary.
``experiment``
    Run one of the paper's experiments and print its result table.
``list``
    Show the registered kernels, methods, datasets and experiments.

Invalid numeric inputs (``--eps <= 0``, non-finite ``--tau-offset``,
non-positive ``--width``/``--height``/``--n``) are rejected at parse
time with a clear message and exit code 2; domain errors raised deeper
in the library (:class:`~repro.errors.ReproError`) exit with code 1.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.core.kernels import available_kernels
from repro.errors import ReproError
from repro.experiments.runner import available_experiments, run_experiment
from repro.methods.registry import available_methods

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """Argparse type: an integer strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: a finite float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not math.isfinite(value) or value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be a positive finite number, got {value!r}")
    return value


def _finite_float(text: str) -> float:
    """Argparse type: any finite float (rejects nan/inf)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not math.isfinite(value):
        raise argparse.ArgumentTypeError(f"must be finite, got {value!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-kdv",
        description="QUAD: quadratic-bound-based kernel density visualization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="render a KDV colour map to PNG")
    source = render.add_mutually_exclusive_group()
    source.add_argument("--dataset", default="crime", help="synthetic dataset name")
    source.add_argument("--csv", help="CSV file with one point per row")
    render.add_argument(
        "--n", type=_positive_int, default=10_000, help="synthetic dataset size"
    )
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--kernel", default="gaussian", choices=available_kernels())
    render.add_argument("--method", default="quad", choices=available_methods())
    render.add_argument("--width", type=_positive_int, default=320)
    render.add_argument("--height", type=_positive_int, default=240)
    render.add_argument(
        "--eps", type=_positive_float, default=0.01, help="relative error (eKDV)"
    )
    render.add_argument(
        "--tau-offset",
        type=_finite_float,
        default=None,
        help="render a tKDV mask at tau = mu + OFFSET * sigma instead of eKDV",
    )
    render.add_argument("--out", default="kdv.png", help="output PNG path")
    render.add_argument("--colormap", default="density")
    render.add_argument(
        "--trace-out",
        default=None,
        metavar="JSONL",
        help="write a structured render trace (repro.obs) to this JSONL file "
        "and print the refinement summary",
    )
    render.add_argument(
        "--trace-steps",
        action="store_true",
        help="with --trace-out: also record per-refinement-step events (voluminous)",
    )

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=available_experiments() + ["all"],
        help="experiment id, or 'all' to run every registered experiment",
    )
    experiment.add_argument("--scale", default="small")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--out-dir", default=None, help="save CSV/JSON here")

    sub.add_parser("list", help="show registered components")
    return parser


def _command_render(args: argparse.Namespace) -> int:
    from repro.data.loaders import load_csv
    from repro.data.synthetic import load_dataset
    from repro.visual.kdv import KDVRenderer

    from contextlib import nullcontext

    from repro.obs.runtime import trace_to

    if args.csv:
        points = load_csv(args.csv)
    else:
        points = load_dataset(args.dataset, n=args.n, seed=args.seed)
    renderer = KDVRenderer(
        points, resolution=(args.width, args.height), kernel=args.kernel
    )
    scope = (
        trace_to(args.trace_out, steps=args.trace_steps)
        if args.trace_out
        else nullcontext()
    )
    with scope:
        if args.tau_offset is None:
            image = renderer.render_eps(args.eps, args.method)
            path = renderer.save_density_png(image, args.out, colormap=args.colormap)
        else:
            mu, sigma = renderer.density_stats()
            tau = mu + args.tau_offset * sigma
            if not math.isfinite(tau):
                print(f"error: computed tau {tau!r} is not finite", file=sys.stderr)
                return 2
            mask = renderer.render_tau(tau, args.method)
            path = renderer.save_mask_png(mask, args.out)
    print(f"wrote {path}")
    if args.trace_out:
        from repro.obs.report import format_summary, summarize_jsonl

        print(f"trace written to {args.trace_out}")
        print(format_summary(summarize_jsonl(args.trace_out)))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    names = available_experiments() if args.name == "all" else [args.name]
    for name in names:
        result = run_experiment(
            name, scale=args.scale, seed=args.seed, out_dir=args.out_dir
        )
        print(f"# {result.experiment}: {result.description}")
        for key, value in result.metadata.items():
            if key == "trace":
                print("#   trace = (attached; see saved JSON)")
                continue
            print(f"#   {key} = {value}")
        print(result.to_table())
        if args.out_dir:
            print(f"# saved under {args.out_dir}")
        print()
    return 0


def _command_list(args: argparse.Namespace) -> int:
    from repro.data.synthetic import available_datasets

    print("kernels:    ", ", ".join(available_kernels()))
    print("methods:    ", ", ".join(available_methods()))
    print("datasets:   ", ", ".join(available_datasets()))
    print("experiments:", ", ".join(available_experiments()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "render": _command_render,
        "experiment": _command_experiment,
        "list": _command_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
