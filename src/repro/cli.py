"""Command-line interface: ``python -m repro`` / ``repro-kdv``.

Subcommands
-----------
``render``
    Render an εKDV or τKDV colour map of a synthetic dataset (or a CSV
    file) to PNG.
``experiment``
    Run one of the paper's experiments and print its result table.
``list``
    Show the registered kernels, methods, datasets and experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.kernels import available_kernels
from repro.data.loaders import load_csv
from repro.data.synthetic import available_datasets, load_dataset
from repro.experiments.runner import available_experiments, run_experiment
from repro.methods.registry import available_methods
from repro.visual.kdv import KDVRenderer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-kdv",
        description="QUAD: quadratic-bound-based kernel density visualization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="render a KDV colour map to PNG")
    source = render.add_mutually_exclusive_group()
    source.add_argument("--dataset", default="crime", help="synthetic dataset name")
    source.add_argument("--csv", help="CSV file with one point per row")
    render.add_argument("--n", type=int, default=10_000, help="synthetic dataset size")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--kernel", default="gaussian", choices=available_kernels())
    render.add_argument("--method", default="quad", choices=available_methods())
    render.add_argument("--width", type=int, default=320)
    render.add_argument("--height", type=int, default=240)
    render.add_argument("--eps", type=float, default=0.01, help="relative error (eKDV)")
    render.add_argument(
        "--tau-offset",
        type=float,
        default=None,
        help="render a tKDV mask at tau = mu + OFFSET * sigma instead of eKDV",
    )
    render.add_argument("--out", default="kdv.png", help="output PNG path")
    render.add_argument("--colormap", default="density")

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=available_experiments() + ["all"],
        help="experiment id, or 'all' to run every registered experiment",
    )
    experiment.add_argument("--scale", default="small")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--out-dir", default=None, help="save CSV/JSON here")

    sub.add_parser("list", help="show registered components")
    return parser


def _command_render(args: argparse.Namespace) -> int:
    if args.csv:
        points = load_csv(args.csv)
    else:
        points = load_dataset(args.dataset, n=args.n, seed=args.seed)
    renderer = KDVRenderer(
        points, resolution=(args.width, args.height), kernel=args.kernel
    )
    if args.tau_offset is None:
        image = renderer.render_eps(args.eps, args.method)
        path = renderer.save_density_png(image, args.out, colormap=args.colormap)
    else:
        mu, sigma = renderer.density_stats()
        tau = mu + args.tau_offset * sigma
        mask = renderer.render_tau(tau, args.method)
        path = renderer.save_mask_png(mask, args.out)
    print(f"wrote {path}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    names = available_experiments() if args.name == "all" else [args.name]
    for name in names:
        result = run_experiment(
            name, scale=args.scale, seed=args.seed, out_dir=args.out_dir
        )
        print(f"# {result.experiment}: {result.description}")
        for key, value in result.metadata.items():
            print(f"#   {key} = {value}")
        print(result.to_table())
        if args.out_dir:
            print(f"# saved under {args.out_dir}")
        print()
    return 0


def _command_list(args: argparse.Namespace) -> int:
    print("kernels:    ", ", ".join(available_kernels()))
    print("methods:    ", ", ".join(available_methods()))
    print("datasets:   ", ", ".join(available_datasets()))
    print("experiments:", ", ".join(available_experiments()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "render": _command_render,
        "experiment": _command_experiment,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
