"""Datasets, bandwidth selection and loading utilities."""

from repro.data.bandwidth import (
    cv_bandwidth,
    scott_bandwidth,
    scott_gamma,
    silverman_bandwidth,
)
from repro.data.synthetic import (
    available_datasets,
    crime_like,
    elnino_like,
    hep_like,
    home_like,
    load_dataset,
)
from repro.data.loaders import load_csv, save_csv
from repro.data.projection import pca_project

__all__ = [
    "scott_gamma",
    "cv_bandwidth",
    "scott_bandwidth",
    "silverman_bandwidth",
    "elnino_like",
    "crime_like",
    "home_like",
    "hep_like",
    "load_dataset",
    "available_datasets",
    "load_csv",
    "save_csv",
    "pca_project",
]
