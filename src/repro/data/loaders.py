"""CSV load/save helpers so users can run the library on their own data.

The format is deliberately minimal: one point per row, coordinates as
comma-separated floats, optional single header row (auto-detected).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import DataValidationError
from repro.utils.validation import check_points, clean_points

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = ["load_csv", "save_csv"]


def _is_float(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def load_csv(
    path: str | Path,
    *,
    columns: Iterable[int] | None = None,
    delimiter: str = ",",
    drop_nonfinite: bool = False,
) -> FloatArray:
    """Load points from a CSV file.

    Parameters
    ----------
    path:
        File path.
    columns:
        Optional iterable of column indices to keep (e.g. ``(1, 2)`` for
        latitude/longitude); defaults to all columns.
    delimiter:
        Field separator.
    drop_nonfinite:
        Discard rows containing NaN/Inf coordinates (with a
        :class:`~repro.errors.DataQualityWarning`) instead of raising
        :class:`~repro.errors.DataValidationError`.

    Returns
    -------
    numpy.ndarray
        Point array of shape ``(n, d)``.
    """
    path = Path(path)
    rows: list[list[float]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for index, row in enumerate(reader):
            row = [token.strip() for token in row if token.strip() != ""]
            if not row:
                continue
            if index == 0 and not all(_is_float(token) for token in row):
                continue  # header row
            if not all(_is_float(token) for token in row):
                raise DataValidationError(
                    f"{path}: non-numeric value in data row {index + 1}: {row!r}",
                    total_rows=len(rows),
                )
            rows.append([float(token) for token in row])
    if not rows:
        raise DataValidationError(f"{path}: no data rows found")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise DataValidationError(
            f"{path}: inconsistent column counts {sorted(widths)}",
            total_rows=len(rows),
        )
    array = np.asarray(rows, dtype=np.float64)
    if columns is not None:
        columns = list(columns)
        array = array[:, columns]
    return clean_points(array, name=str(path), drop_nonfinite=drop_nonfinite)


def save_csv(
    path: str | Path,
    points: PointLike,
    *,
    header: Sequence[str] | None = None,
    delimiter: str = ",",
) -> Path:
    """Write a point array to CSV (optionally with a header row)."""
    points = check_points(points)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header is not None:
            writer.writerow(list(header))
        writer.writerows(points.tolist())
    return path
