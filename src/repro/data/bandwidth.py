"""Bandwidth selection rules.

The paper (Section 7.1) adopts **Scott's rule** [Scott 1992] to choose
the kernel parameter ``gamma`` and weight ``w``, following KARL and tKDC.
Scott's per-dimension bandwidth for ``n`` points in ``d`` dimensions is

.. math::

    h = \\sigma \\cdot n^{-1 / (d + 4)}

with ``sigma`` the average marginal standard deviation. The Gaussian
kernel of Equation 1, ``exp(-gamma * dist^2)``, corresponds to
``gamma = 1 / (2 h^2)``; the distance-based kernels of Table 4 use
``gamma = 1 / h`` so the kernel's support radius is ``h`` (triangular)
or a small multiple of it.

Silverman's rule is provided as an extension (it differs from Scott's by
a constant factor only).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.core.kernels import clamp_gamma, get_kernel
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike, PointLike

__all__ = [
    "scott_bandwidth",
    "silverman_bandwidth",
    "scott_gamma",
    "default_weight",
    "cv_bandwidth",
    "gamma_for_radius",
    "H_FLOOR",
    "H_CEIL",
]

#: Usable bandwidth range. Below ``H_FLOOR``, ``h * h`` underflows to
#: zero and the Gaussian ``gamma = 1 / (2 h^2)`` divides by zero; above
#: ``H_CEIL`` it overflows to Inf and gamma collapses to zero. Both
#: occur only for pathological data (near-identical points, or spreads
#: around 1e74 units) — real bandwidths live scores of decades inside
#: the range, so the clamp never perturbs them. The clamped gamma is
#: additionally passed through :func:`repro.core.kernels.clamp_gamma`.
H_FLOOR = 1e-74
H_CEIL = 1e74


def _average_std(points: FloatArray) -> float:
    """Average of the per-dimension sample standard deviations."""
    if points.shape[0] <= 1:
        return 1.0
    scale = float(np.abs(points).max())
    if scale > 1e100:
        # Coordinates this large overflow the variance's squared
        # deviations (numpy warns, -W error runs die). Computing in
        # scale-divided space is exact up to rounding and only engages
        # for data already scores of decades past any real coordinate
        # system, so ordinary inputs keep the bit-exact direct path.
        std = (points / scale).std(axis=0, ddof=1) * scale
    else:
        std = points.std(axis=0, ddof=1)
    mean_std = float(std.mean())
    if mean_std <= 0.0:
        # Degenerate (constant) data: fall back to a unit scale so the
        # kernel parameters stay finite.
        return 1.0
    return mean_std


def scott_bandwidth(points: PointLike) -> float:
    """Scott's rule bandwidth ``h`` for a point set."""
    points = check_points(points)
    n, d = points.shape
    return float(_average_std(points) * n ** (-1.0 / (d + 4)))


def silverman_bandwidth(points: PointLike) -> float:
    """Silverman's rule-of-thumb bandwidth (extension beyond the paper)."""
    points = check_points(points)
    n, d = points.shape
    factor = (4.0 / (d + 2)) ** (1.0 / (d + 4))
    return float(factor * _average_std(points) * n ** (-1.0 / (d + 4)))


def scott_gamma(
    points: PointLike,
    kernel: KernelLike = "gaussian",
    *,
    rule: Callable[[PointLike], float] = scott_bandwidth,
) -> float:
    """The kernel parameter ``gamma`` implied by a bandwidth rule.

    Parameters
    ----------
    points:
        The dataset the bandwidth is derived from.
    kernel:
        Kernel name or instance; squared-distance kernels (Gaussian) get
        ``1 / (2 h^2)``, distance kernels get ``1 / h``.
    rule:
        The bandwidth rule, defaulting to :func:`scott_bandwidth`.

    Degenerate bandwidths (``h`` below :data:`H_FLOOR` — e.g. a dataset
    whose coordinates differ by ~1e-170 — or above :data:`H_CEIL`) are
    clamped to the documented range before inverting, so this function
    always returns a finite positive ``gamma`` instead of dividing by
    an underflowed ``h * h``.
    """
    kernel = get_kernel(kernel)
    h = min(max(rule(points), H_FLOOR), H_CEIL)
    if kernel.uses_squared_distance:
        return clamp_gamma(1.0 / (2.0 * h * h))
    return clamp_gamma(1.0 / h)


def default_weight(n: int) -> float:
    """The uniform weight ``w = 1 / n`` making ``F_P`` a mean density."""
    if n <= 0:
        raise_from = None
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(f"n must be positive, got {n}") from raise_from
    return 1.0 / float(n)


def cv_bandwidth(
    points: PointLike,
    kernel: KernelLike = "gaussian",
    candidates: Iterable[float] | None = None,
    max_points: int = 2000,
    seed: int = 0,
) -> float:
    """Leave-one-out likelihood cross-validated bandwidth (extension).

    Scores each candidate ``h`` by the leave-one-out log likelihood

    .. math::

        \\sum_i \\log \\hat{f}_{-i}(p_i), \\qquad
        \\hat{f}_{-i}(p_i) = \\frac{Z(h)}{n - 1} \\sum_{j \\ne i} K_h(p_i, p_j)

    with ``Z(h)`` the kernel's normalising constant, and returns the
    best ``h``. The self-contribution ``K_h(p_i, p_i) = 1`` is
    subtracted analytically, so one density pass per candidate suffices.

    Parameters
    ----------
    points:
        Dataset; subsampled to ``max_points`` for tractability.
    kernel:
        Kernel name or instance (needs an analytic normaliser for the
        data's dimensionality — see
        :func:`repro.compat.kernel_normaliser`).
    candidates:
        Iterable of bandwidths to score; default: Scott's rule times
        ``(0.25, 0.5, 1, 2, 4)``.
    max_points:
        Subsample cap.
    seed:
        Subsampling seed.

    Returns
    -------
    float
        The candidate with the highest leave-one-out log likelihood.
    """
    from repro.compat import kernel_normaliser  # lint: allow-shim-import -- normaliser's historical home; no canonical alternative yet
    from repro.core.exact import exact_density
    from repro.core.kernels import get_kernel

    kernel = get_kernel(kernel)
    points = check_points(points, min_rows=3)
    if points.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        points = points[rng.choice(points.shape[0], max_points, replace=False)]
    n, d = points.shape
    if candidates is None:
        scott = scott_bandwidth(points)
        candidates = [scott * factor for factor in (0.25, 0.5, 1.0, 2.0, 4.0)]
    candidates = [float(h) for h in candidates]
    if not candidates:
        from repro.errors import InvalidParameterError

        raise InvalidParameterError("candidates must be non-empty")
    best_h = math.nan
    best_score = -math.inf
    tiny = np.finfo(np.float64).tiny
    for h in candidates:
        if kernel.uses_squared_distance:
            gamma = 1.0 / (2.0 * h * h)
        else:
            support = kernel.support_xmax
            gamma = (1.0 if math.isinf(support) else support) / h
        normaliser = kernel_normaliser(kernel, h, d)
        sums = exact_density(points, points, kernel, gamma, 1.0)
        loo = np.maximum(sums - 1.0, 0.0)  # remove the self term K(0)=1
        densities = normaliser * loo / (n - 1)
        score = float(np.log(np.maximum(densities, tiny)).sum())
        if score > best_score:
            best_score = score
            best_h = h
    return best_h


def gamma_for_radius(radius: float, kernel: KernelLike = "gaussian") -> float:
    """``gamma`` giving a kernel support (or effective) radius ``radius``.

    For compact kernels the support edge sits exactly at ``radius``; for
    the Gaussian/exponential kernels, ``radius`` is where the profile
    falls to ``exp(-1)``.
    """
    kernel = get_kernel(kernel)
    from repro.utils.validation import check_positive

    radius = min(max(check_positive(radius, "radius"), H_FLOOR), H_CEIL)
    if kernel.uses_squared_distance:
        return clamp_gamma(1.0 / (radius * radius))
    support = kernel.support_xmax
    if math.isinf(support):
        return clamp_gamma(1.0 / radius)
    return clamp_gamma(support / radius)
