"""Synthetic analogues of the paper's four evaluation datasets (Table 5).

The originals (UCI *El nino*, Atlanta *crime*, UCI *home* sensor data and
the 7M-point *hep* physics set) are external downloads; this offline
reproduction substitutes generators that match each dataset's
dimensionality and qualitative spatial structure:

========  =========  ==========================================================
name      paper n    structure reproduced here
========  =========  ==========================================================
elnino    178,080    smooth oceanographic field: broad anisotropic ridges
crime     270,688    many small urban hotspots over a faint street-grid
                     background (heavy-tailed cluster sizes)
home      919,438    two correlated sensor attributes: banana-shaped ridge
                     plus a few dense operating-mode clusters
hep       7,000,000  high-dimensional particle features: overlapping
                     mixture of elongated Gaussians (signal vs background),
                     projectable to any dimensionality
========  =========  ==========================================================

Why the substitution preserves the relevant behaviour: every compared
method's cost depends on the *spatial distribution* of points relative to
pixels (cluster density, empty regions, skew), not on the semantic
meaning of the attributes. The generators reproduce those distributional
traits at configurable scale, which is what the speedup shapes in
Figures 14-24 are sensitive to. See DESIGN.md section 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.errors import InvalidParameterError, UnknownNameError
from repro.utils.validation import clean_points

if TYPE_CHECKING:
    from repro._types import FloatArray

__all__ = [
    "elnino_like",
    "crime_like",
    "home_like",
    "hep_like",
    "load_dataset",
    "available_datasets",
    "DATASET_REGISTRY",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_n(n: int) -> int:
    n = int(n)
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    return n


def elnino_like(n: int, seed: int = 0) -> FloatArray:
    """El-nino-like 2-D data: smooth anisotropic oceanographic ridges.

    Sea-surface temperature at two depths: strongly correlated with a
    broad warm ridge and a cold tail, so densities vary smoothly — the
    friendliest case for bound-based pruning.
    """
    n = _check_n(n)
    rng = _rng(seed)
    mixture = rng.random(n)
    base = rng.normal(size=(n, 2))
    points = np.empty((n, 2), dtype=np.float64)
    # Warm ridge: elongated, rotated Gaussian.
    ridge = mixture < 0.7
    angle = 0.6
    rotation = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    points[ridge] = base[ridge] @ (np.diag([3.0, 0.7]) @ rotation.T) + [24.0, 18.0]
    # Cold pool: broad blob offset along the correlation axis.
    cold = ~ridge
    points[cold] = base[cold] @ np.diag([1.5, 1.5]) + [20.0, 13.0]
    return points


def crime_like(n: int, seed: int = 0) -> FloatArray:
    """Crime-like 2-D data: many compact hotspots plus diffuse background.

    Models the Arlington/Atlanta vehicle-theft maps of the paper's
    Figure 1: ~40 hotspot clusters with heavy-tailed sizes over a city
    bounding box, plus 15% near-uniform background incidents.
    """
    n = _check_n(n)
    rng = _rng(seed)
    num_clusters = 40
    centers = rng.uniform([33.6, -84.6], [33.9, -84.2], size=(num_clusters, 2))
    # Heavy-tailed cluster weights: a few dominant hotspots.
    weights = rng.pareto(1.5, size=num_clusters) + 0.1
    weights /= weights.sum()
    background = int(round(0.15 * n))
    clustered = n - background
    assignments = rng.choice(num_clusters, size=clustered, p=weights)
    scales = rng.uniform(0.002, 0.012, size=num_clusters)
    points = np.empty((n, 2), dtype=np.float64)
    points[:clustered] = centers[assignments] + rng.normal(
        size=(clustered, 2)
    ) * scales[assignments][:, None]
    points[clustered:] = rng.uniform([33.6, -84.6], [33.9, -84.2], size=(background, 2))
    return points


def home_like(n: int, seed: int = 0) -> FloatArray:
    """Home-sensor-like 2-D data: temperature/humidity operating modes.

    A curved (banana-shaped) ridge of normal operation plus three dense
    clusters for distinct HVAC modes; mirrors the structure that makes
    the paper's *home* dataset its densest case study (Figure 18 uses
    this dataset's hottest pixel).
    """
    n = _check_n(n)
    rng = _rng(seed)
    mixture = rng.random(n)
    points = np.empty((n, 2), dtype=np.float64)
    # Banana ridge: temperature drives humidity quadratically.
    ridge = mixture < 0.55
    count = int(ridge.sum())
    temperature = rng.normal(22.0, 3.5, size=count)
    humidity = 45.0 + 0.9 * (temperature - 22.0) - 0.25 * (temperature - 22.0) ** 2
    humidity += rng.normal(0.0, 2.0, size=count)
    points[ridge, 0] = temperature
    points[ridge, 1] = humidity
    # Operating-mode clusters.
    modes = np.array([[18.0, 55.0], [25.0, 38.0], [21.0, 47.0]])
    mode_scales = np.array([1.0, 0.6, 0.35])
    rest = ~ridge
    count = int(rest.sum())
    which = rng.choice(3, size=count, p=[0.3, 0.3, 0.4])
    points[rest] = modes[which] + rng.normal(size=(count, 2)) * mode_scales[which][:, None]
    return points


def hep_like(n: int, seed: int = 0, dims: int = 2) -> FloatArray:
    """HEP-like data: overlapping signal/background particle features.

    A mixture of elongated Gaussians in ``dims`` dimensions (default: the
    first two features, as the paper selects). Signal events form a
    compact correlated cluster; background a broad diffuse one — the
    classic two-population structure of high-energy-physics feature
    spaces.
    """
    n = _check_n(n)
    dims = int(dims)
    if dims < 1:
        raise InvalidParameterError(f"dims must be >= 1, got {dims}")
    rng = _rng(seed)
    signal = rng.random(n) < 0.4
    points = np.empty((n, dims), dtype=np.float64)
    # Signal: compact, correlated via a random low-rank loading.
    loadings = rng.normal(size=(dims, dims)) * 0.3 + np.eye(dims) * 0.5
    count = int(signal.sum())
    points[signal] = rng.normal(size=(count, dims)) @ loadings + 1.0
    # Background: broad isotropic cloud.
    count = n - count
    points[~signal] = rng.normal(size=(count, dims)) * 2.2 - 0.5
    return points


#: Registry name -> (generator, paper_size, description).
DATASET_REGISTRY: dict[str, tuple[Callable[..., Any], int, str]] = {
    "elnino": (elnino_like, 178_080, "sea surface temperature (depth=0/500)"),
    "crime": (crime_like, 270_688, "latitude/longitude"),
    "home": (home_like, 919_438, "temperature/humidity"),
    "hep": (hep_like, 7_000_000, "1st/2nd dimensions"),
}


def load_dataset(name: str, n: int = 10_000, seed: int = 0, **kwargs: Any) -> FloatArray:
    """Generate ``n`` points of the named dataset analogue.

    Parameters
    ----------
    name:
        One of ``"elnino"``, ``"crime"``, ``"home"``, ``"hep"``.
    n:
        Number of points (the paper's full sizes are impractical in pure
        Python; experiments use scaled-down presets).
    seed:
        Deterministic generator seed.
    kwargs:
        Extra generator arguments (e.g. ``dims`` for ``"hep"``).
    """
    try:
        generator, __, __ = DATASET_REGISTRY[str(name).lower()]
    except KeyError:
        known = ", ".join(sorted(DATASET_REGISTRY))
        raise UnknownNameError(f"unknown dataset {name!r}; available: {known}") from None
    # Hardened exit: registry entries may be third-party generators, and
    # a NaN that slips through here poisons every bound downstream. The
    # duplicate scan is skipped (fraction 1.0) — it would sort the whole
    # array, and continuous generators cannot produce duplicate rows.
    return clean_points(
        generator(n, seed=seed, **kwargs),
        name=f"dataset {name!r}",
        duplicate_warn_fraction=1.0,
    )


def available_datasets() -> list[str]:
    """Sorted registry names."""
    return sorted(DATASET_REGISTRY)
