"""PCA projection used by the dimensionality sweep (paper Section 7.7).

The paper follows KARL/tKDC in varying dataset dimensionality via PCA.
This is a from-scratch implementation on the covariance eigendecomposition
— no external ML dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = ["pca_project"]


def pca_project(points: PointLike, dims: int) -> FloatArray:
    """Project points onto their top ``dims`` principal components.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` with ``d >= dims``.
    dims:
        Target dimensionality (``1 <= dims <= d``).

    Returns
    -------
    numpy.ndarray
        Projected points of shape ``(n, dims)``, centred, components
        ordered by decreasing explained variance.
    """
    points = check_points(points, min_rows=2)
    dims = int(dims)
    if dims < 1 or dims > points.shape[1]:
        raise InvalidParameterError(
            f"dims must be in [1, {points.shape[1]}], got {dims}"
        )
    centred = points - points.mean(axis=0)
    covariance = (centred.T @ centred) / (points.shape[0] - 1)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1][:dims]
    return centred @ eigenvectors[:, order]
