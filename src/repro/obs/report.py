"""Trace summarisation: events -> per-method refinement tables.

Consumes the event stream produced by :class:`~repro.obs.trace.Tracer`
(a list of dicts, or a JSONL file written by
:class:`~repro.obs.sinks.JsonlSink`) and aggregates it into the numbers
the paper's Sections 4-6 argue about: how deep refinement goes per
pixel, how quickly the bound gap collapses, which stopping rule fires,
and where render wall-clock goes (tiles, workers).

``tools/trace_report.py`` is a thin CLI over this module, and
``tools/bench_report.py`` embeds :func:`summarize_events` output in
``BENCH_engine.json``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

__all__ = [
    "read_jsonl",
    "summarize_events",
    "summarize_jsonl",
    "format_summary",
]


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL trace file into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {error}") from None
    return events


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    index = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return float(sorted_values[max(0, index)])


def _query_key(event: Mapping[str, Any]) -> str:
    method = event.get("method") or event.get("bound") or "?"
    return f"{method}/{event.get('engine', '?')}/{event.get('op', '?')}"


class _QueryGroup:
    """Accumulates scalar ``query`` and batched ``batch_query`` events."""

    def __init__(self, key: str, event: Mapping[str, Any]) -> None:
        self.key = key
        self.method = event.get("method") or event.get("bound") or "?"
        self.engine = str(event.get("engine", "?"))
        self.op = str(event.get("op", "?"))
        self.pixels = 0
        self.pops = 0
        self.depths: List[float] = []  # scalar events: exact per-pixel depths
        self.depth_weighted = 0.0  # batch events: rows-weighted mean depth
        self.depth_p50_weighted = 0.0  # batch events: rows-weighted batch p50
        self.depth_p95 = 0.0
        self.depth_max = 0.0
        self.rules: Dict[str, int] = {}
        self.root_gap_weighted = 0.0
        self.final_gap_weighted = 0.0

    def add(self, event: Mapping[str, Any]) -> None:
        if event["event"] == "query":
            iterations = float(event.get("iterations", 0))
            self.pixels += 1
            self.pops += int(iterations)
            self.depths.append(iterations)
            self.depth_max = max(self.depth_max, iterations)
            self.depth_weighted += iterations
            rule = str(event.get("rule", "?"))
            self.rules[rule] = self.rules.get(rule, 0) + 1
            self.root_gap_weighted += float(event.get("root_gap", 0.0))
            self.final_gap_weighted += float(event.get("ub", 0.0)) - float(
                event.get("lb", 0.0)
            )
        else:  # batch_query
            rows = int(event.get("rows", 0))
            self.pixels += rows
            self.pops += int(event.get("pops", 0))
            self.depth_weighted += float(event.get("depth_mean", 0.0)) * rows
            self.depth_p50_weighted += float(event.get("depth_p50", 0.0)) * rows
            self.depth_p95 = max(self.depth_p95, float(event.get("depth_p95", 0.0)))
            self.depth_max = max(self.depth_max, float(event.get("depth_max", 0.0)))
            for rule, count in (event.get("rules") or {}).items():
                self.rules[rule] = self.rules.get(rule, 0) + int(count)
            self.root_gap_weighted += float(event.get("root_gap_mean", 0.0)) * rows
            self.final_gap_weighted += float(event.get("final_gap_mean", 0.0)) * rows

    def summary(self) -> Dict[str, Any]:
        pixels = max(self.pixels, 1)
        if self.depths:
            ordered = sorted(self.depths)
            p50 = _percentile(ordered, 0.50)
            p95 = max(_percentile(ordered, 0.95), self.depth_p95)
        else:
            # Batch events only: the per-pixel depths are gone, so the
            # best available p50 is the rows-weighted mean of the
            # per-batch medians (exact for a single batch). Never NaN —
            # the summary is embedded in strict-JSON artefacts.
            p50 = self.depth_p50_weighted / pixels
            p95 = self.depth_p95
        root_gap = self.root_gap_weighted / pixels
        final_gap = self.final_gap_weighted / pixels
        tiny = 2.2250738585072014e-308  # smallest normal float64
        return {
            "method": self.method,
            "engine": self.engine,
            "op": self.op,
            "pixels": self.pixels,
            "pops": self.pops,
            "depth_mean": self.depth_weighted / pixels,
            "depth_p50": p50,
            "depth_p95": p95,
            "depth_max": self.depth_max,
            "rules": dict(sorted(self.rules.items())),
            "root_gap_mean": root_gap,
            "final_gap_mean": final_gap,
            "gap_reduction": root_gap / max(final_gap, tiny),
        }


def summarize_events(events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into per-method refinement and render tables.

    Returns a JSON-ready dictionary with:

    ``queries``
        One entry per ``method/engine/op`` triple: pixel count, frontier
        pops, refinement-depth statistics (mean/p50/p95/max), stop-rule
        counts, and bound-tightness numbers (mean root gap, mean final
        gap, and their ratio — the per-pixel tightening factor).
    ``tiles``
        Tile count, latency stats, per-worker busy seconds.
    ``renders``
        The raw ``render`` events (op, pixels, workers, seconds,
        utilisation).
    """
    total = 0
    groups: Dict[str, _QueryGroup] = {}
    tile_count = 0
    tile_seconds: List[float] = []
    worker_busy: Dict[str, float] = {}
    renders: List[Dict[str, Any]] = []
    steps = 0
    for event in events:
        total += 1
        kind = event.get("event")
        if kind in ("query", "batch_query"):
            key = _query_key(event)
            group = groups.get(key)
            if group is None:
                group = groups[key] = _QueryGroup(key, event)
            group.add(event)
        elif kind == "tile":
            tile_count += 1
            seconds = float(event.get("seconds", 0.0))
            tile_seconds.append(seconds)
            worker = str(event.get("worker", 0))
            worker_busy[worker] = worker_busy.get(worker, 0.0) + seconds
        elif kind == "render":
            renders.append(dict(event))
        elif kind in ("step", "batch_step"):
            steps += 1
    ordered_tiles = sorted(tile_seconds)
    summary: Dict[str, Any] = {
        "events": total,
        "step_events": steps,
        "queries": {key: group.summary() for key, group in sorted(groups.items())},
        "tiles": {
            "count": tile_count,
            "seconds_total": sum(tile_seconds),
            "seconds_mean": (sum(tile_seconds) / tile_count) if tile_count else 0.0,
            "seconds_p95": _percentile(ordered_tiles, 0.95) if tile_count else 0.0,
            "seconds_max": max(tile_seconds) if tile_count else 0.0,
            "worker_busy": dict(sorted(worker_busy.items())),
        },
        "renders": renders,
    }
    return summary


def summarize_jsonl(path: Union[str, Path]) -> Dict[str, Any]:
    """:func:`summarize_events` over a JSONL trace file."""
    return summarize_events(read_jsonl(path))


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value and (abs(value) >= 1e4 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str]) -> str:
    rendered = [[_format_value(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(width) for col, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    lines += [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join(lines)


def format_summary(summary: Mapping[str, Any]) -> str:
    """Render a :func:`summarize_events` result as aligned text tables."""
    parts: List[str] = [
        f"trace: {summary.get('events', 0)} events "
        f"({summary.get('step_events', 0)} step-level)"
    ]
    queries = summary.get("queries") or {}
    if queries:
        rows = []
        for entry in queries.values():
            row = dict(entry)
            row["rules"] = ",".join(
                f"{rule}:{count}" for rule, count in entry.get("rules", {}).items()
            )
            rows.append(row)
        parts.append("\nrefinement depth and bound tightness per method:")
        parts.append(
            _table(
                rows,
                [
                    "method",
                    "engine",
                    "op",
                    "pixels",
                    "pops",
                    "depth_mean",
                    "depth_p95",
                    "depth_max",
                    "root_gap_mean",
                    "final_gap_mean",
                    "gap_reduction",
                    "rules",
                ],
            )
        )
    tiles = summary.get("tiles") or {}
    if tiles.get("count"):
        parts.append("\ntiles:")
        parts.append(
            _table(
                [tiles],
                ["count", "seconds_total", "seconds_mean", "seconds_p95", "seconds_max"],
            )
        )
        busy = tiles.get("worker_busy") or {}
        if busy:
            parts.append(
                "worker busy seconds: "
                + ", ".join(f"w{worker}={seconds:.3f}" for worker, seconds in busy.items())
            )
    renders = summary.get("renders") or []
    if renders:
        parts.append("\nrenders:")
        parts.append(
            _table(
                renders,
                ["op", "method", "pixels", "tiles", "workers", "seconds", "utilisation"],
            )
        )
    return "\n".join(parts)
