"""Metric primitives: counters, histograms, counter groups, registry.

The observability layer keeps two kinds of numeric state:

* **Counters / counter groups** — monotonically increasing integers.
  :class:`CounterGroup` is the fixed-field variant the engines use on
  their hot paths: fields are plain ``__slots__`` integers, so
  ``stats.iterations += 1`` stays a single slot store with zero
  indirection, while ``merge`` / ``reset`` / ``as_dict`` come from the
  shared implementation. :class:`~repro.core.engine.QueryStats` is a
  :class:`CounterGroup` subclass — a thin named view over this module's
  counter machinery.
* **Histograms** — fixed-bucket distributions (refinement depth,
  frontier size, tile latency). Buckets are chosen at construction, so
  ``observe`` is one bisect; merging requires identical buckets.

A :class:`MetricsRegistry` names and owns counters and histograms,
creates them on demand, merges registries (the per-worker aggregation
pattern used by the tiled renderer) and snapshots everything to plain
dictionaries for reports.

Everything here is safe under the CPython GIL for the library's
threading pattern (each worker owns its metrics and the owner merges
afterwards); no locks are taken on hot paths.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Tuple, TypeVar

if TYPE_CHECKING:
    from typing import ClassVar

__all__ = [
    "Counter",
    "CounterGroup",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_COUNT_BOUNDS",
    "DEFAULT_SECONDS_BOUNDS",
]

TGroup = TypeVar("TGroup", bound="CounterGroup")

#: Default buckets for count-valued histograms (refinement depth,
#: frontier size): powers of two up to 2^16.
DEFAULT_COUNT_BOUNDS: Tuple[float, ...] = tuple(float(2**k) for k in range(17))

#: Default buckets for duration-valued histograms (tile latency):
#: 100 microseconds to ~100 seconds, geometric.
DEFAULT_SECONDS_BOUNDS: Tuple[float, ...] = tuple(
    1e-4 * (10.0 ** (k / 3.0)) for k in range(19)
)


class Counter:
    """A named monotone integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = int(value)

    def add(self, amount: int = 1) -> None:
        """Increase the counter by ``amount``."""
        self.value += amount

    def merge(self, other: Counter) -> Counter:
        """Add another counter's value into this one; returns ``self``."""
        self.value += other.value
        return self

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class CounterGroup:
    """A fixed block of integer counters stored in ``__slots__``.

    Subclasses declare ``_fields`` (the counter names, in display order)
    and a matching ``__slots__``; every field is then a plain integer
    attribute, so hot loops pay only a slot store per increment while
    :meth:`reset`, :meth:`merge` and :meth:`as_dict` are shared. This is
    the concurrency-safe aggregation building block: each worker
    accumulates into a private group and the owner merges afterwards.
    """

    __slots__ = ()

    #: Counter names, in declaration order. Subclasses override.
    _fields: ClassVar[Tuple[str, ...]] = ()

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        for field in self._fields:
            setattr(self, field, 0)

    def merge(self: TGroup, other: CounterGroup) -> TGroup:
        """Add another group's counters into this one; returns ``self``.

        The other group must carry the same fields (subclass identity is
        not required, field agreement is).
        """
        if other._fields != self._fields:
            raise ValueError(
                f"cannot merge counter groups with different fields: "
                f"{self._fields!r} vs {other._fields!r}"
            )
        for field in self._fields:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary, in field order."""
        return {field: int(getattr(self, field)) for field in self._fields}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({parts})"


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are ascending bucket upper edges; an observation lands in
    the first bucket whose edge is ``>= value``, with one implicit
    overflow bucket past the last edge. Percentiles are answered from
    the buckets (the returned value is the containing bucket's upper
    edge, clamped to the observed min/max), which is exact enough for
    depth/latency reporting and keeps ``observe`` O(log buckets).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_COUNT_BOUNDS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds or any(
            b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError(f"histogram bounds must be ascending, got {self.bounds!r}")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.observe(value)

    def observe_array(self, values: Any) -> None:
        """Record a numpy array of observations in one vectorised pass."""
        import numpy as np

        array = np.asarray(values, dtype=np.float64).reshape(-1)
        if array.size == 0:
            return
        slots = np.searchsorted(np.asarray(self.bounds, dtype=np.float64), array)
        for slot, bucket_count in zip(*np.unique(slots, return_counts=True)):
            self.counts[int(slot)] += int(bucket_count)
        self.count += int(array.size)
        self.total += float(array.sum())
        low = float(array.min())
        high = float(array.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    def merge(self, other: Histogram) -> Histogram:
        """Fold another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.name!r} vs {other.name!r}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def percentile(self, q: float) -> float:
        """Bucket-resolution percentile ``q`` in ``[0, 1]``."""
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                edge = self.bounds[index] if index < len(self.bounds) else self.max
                return min(max(edge, self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def summary(self) -> Dict[str, float]:
        """Count/sum/mean/min/max plus p50/p95/p99."""
        if self.count == 0:
            return {"count": 0.0}
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Named counters and histograms, created on demand.

    The registry is the aggregation point behind
    :class:`~repro.obs.trace.Tracer`: engines and the renderer update
    metrics through their tracer, workers keep private registries, and
    :meth:`merge` folds them together exactly like
    :meth:`~repro.core.engine.QueryStats.merge` folds counter groups.
    """

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero if missing."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_COUNT_BOUNDS
    ) -> Histogram:
        """The histogram called ``name``, created if missing."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def absorb_group(self, prefix: str, group: CounterGroup) -> None:
        """Snapshot a :class:`CounterGroup` into ``<prefix>.<field>`` counters."""
        for field, value in group.as_dict().items():
            self.counter(f"{prefix}.{field}").add(value)

    def merge(self, other: MetricsRegistry) -> MetricsRegistry:
        """Fold another registry into this one; returns ``self``."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(name, histogram.bounds)
            mine.merge(histogram)
        return self

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot: counter values and histogram summaries."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (names are forgotten, not zeroed)."""
        self.counters.clear()
        self.histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"histograms={len(self.histograms)})"
        )
