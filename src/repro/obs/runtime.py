"""Tracing flag resolution — zero overhead when off.

This mirrors the flag pattern of :mod:`repro.contracts.runtime`: the
``REPRO_TRACE`` environment variable is read once at import (and on
:func:`refresh_from_env`), hot paths call :func:`current_tracer` — one
cached attribute read returning ``None`` when tracing is off — and every
instrumented branch hangs off that ``None`` check, so a disabled build
pays a single pointer comparison per query/batch and nothing per
iteration.

``REPRO_TRACE`` values (case-insensitive):

``1`` / ``true`` / ``on`` / ``yes``
    Summary tracing: per-query, per-batch, per-tile and per-render
    events plus metric aggregation.
``2`` / ``steps`` / ``detail`` / ``full``
    Everything above plus per-refinement-step events (voluminous).

``REPRO_TRACE_OUT`` optionally names a JSONL file for the default
tracer's events; otherwise they land in a bounded in-memory ring buffer
reachable via ``current_tracer().events()``.

Programmatic control: :func:`set_tracer` installs/uninstalls a tracer
explicitly, and :func:`trace_to` scopes one around a block::

    with trace_to("render.jsonl") as tracer:
        renderer.render_eps(0.01, "quad", tile_size=64)
    # events are on disk; tracer.summary() has the aggregates
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional, Union

from repro.obs.sinks import JsonlSink, TraceSink, resolve_sink
from repro.obs.trace import Tracer

__all__ = [
    "ENV_VAR",
    "OUT_ENV_VAR",
    "tracing_enabled",
    "current_tracer",
    "set_tracer",
    "refresh_from_env",
    "trace_to",
]

#: Environment variable toggling the default tracer.
ENV_VAR = "REPRO_TRACE"

#: Environment variable naming a JSONL file for the default tracer.
OUT_ENV_VAR = "REPRO_TRACE_OUT"

#: Values of :data:`ENV_VAR` enabling summary-level tracing.
_TRUTHY = frozenset({"1", "true", "on", "yes"})

#: Values of :data:`ENV_VAR` enabling per-step tracing as well.
_STEP_LEVEL = frozenset({"2", "steps", "detail", "full"})


def _env_level() -> Optional[str]:
    """``None`` (off), ``"summary"`` or ``"steps"`` from the environment."""
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if raw in _STEP_LEVEL:
        return "steps"
    if raw in _TRUTHY:
        return "summary"
    return None


class _State:
    """Cached tracer plus the env-derived level, like contracts._State."""

    __slots__ = ("tracer", "level", "override")

    def __init__(self) -> None:
        self.override: bool = False
        self.level: Optional[str] = _env_level()
        self.tracer: Optional[Tracer] = None


_state = _State()


def _default_tracer() -> Tracer:
    """Build the env-configured tracer (ring buffer or JSONL file)."""
    out = os.environ.get(OUT_ENV_VAR, "").strip()
    sink: Optional[TraceSink] = JsonlSink(out) if out else None
    return Tracer(sink, steps=_state.level == "steps")


def tracing_enabled() -> bool:
    """Whether a tracer is (or would be) active."""
    return _state.tracer is not None or _state.level is not None


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is off.

    This is the hot-path entry point: instrumented code calls it once
    per query/batch/render and skips every tracing branch on ``None``.
    The env-configured default tracer is created lazily on first use so
    importing the library never opens trace files.
    """
    tracer = _state.tracer
    if tracer is None and _state.level is not None and not _state.override:
        tracer = _state.tracer = _default_tracer()
    return tracer


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` explicitly, or ``None`` to disable tracing.

    An explicit ``None`` also masks the environment flag until
    :func:`refresh_from_env` re-reads it — tests use this to guarantee
    an untraced region regardless of the ambient ``REPRO_TRACE``.
    """
    _state.tracer = tracer
    _state.override = tracer is None


def refresh_from_env() -> bool:
    """Re-read :data:`ENV_VAR` / :data:`OUT_ENV_VAR`; drop any override."""
    _state.override = False
    _state.level = _env_level()
    _state.tracer = None
    return tracing_enabled()


@contextmanager
def trace_to(
    target: Union[TraceSink, Callable[[Mapping[str, Any]], object], str, Path, None] = None,
    *,
    steps: bool = False,
) -> Iterator[Tracer]:
    """Scope a tracer around a block; restores the previous state after.

    ``target`` is anything :func:`repro.obs.sinks.resolve_sink` accepts:
    a sink, a callable, a file path, or ``None`` for an in-memory ring
    buffer. Sinks the context manager itself constructed (from a path)
    are closed on exit; caller-provided sinks are left open.
    """
    sink = resolve_sink(target)
    owns_sink = sink is not None and not isinstance(target, TraceSink)
    tracer = Tracer(sink, steps=steps)
    previous_tracer = _state.tracer
    previous_override = _state.override
    _state.tracer = tracer
    _state.override = False
    try:
        yield tracer
    finally:
        _state.tracer = previous_tracer
        _state.override = previous_override
        if owns_sink and sink is not None:
            sink.close()
