"""Pluggable trace sinks: ring buffer, JSONL file, callback, null.

A sink receives the event dictionaries built by
:mod:`repro.obs.events`. Sinks are deliberately tiny — ``emit`` one
event, ``close`` when done — so embedding a custom consumer (a live
dashboard, a test assertion) is a three-line subclass or a plain
callback. The tiled renderer emits from worker threads, so the file
sink serialises writes with a lock; the ring buffer relies on
``deque.append`` being atomic under the GIL.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Union

__all__ = [
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "CallbackSink",
    "resolve_sink",
]

#: Default ring-buffer capacity: bounded so an accidentally long traced
#: run cannot exhaust memory (events are small dicts).
DEFAULT_RING_CAPACITY = 65536


class TraceSink:
    """Base sink interface; subclasses override :meth:`emit`."""

    def emit(self, event: Mapping[str, Any]) -> None:
        """Receive one trace event."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""

    def __enter__(self) -> TraceSink:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards every event (metrics-only tracing)."""

    def emit(self, event: Mapping[str, Any]) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events in memory.

    The default sink for ``REPRO_TRACE=1``: zero configuration, bounded
    memory, and :meth:`events` / :meth:`drain` for programmatic access.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)

    def emit(self, event: Mapping[str, Any]) -> None:
        self._buffer.append(dict(event))

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot list of the buffered events, oldest first."""
        return list(self._buffer)

    def drain(self) -> List[Dict[str, Any]]:
        """Return the buffered events and clear the buffer."""
        events = list(self._buffer)
        self._buffer.clear()
        return events

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(TraceSink):
    """Appends one JSON object per line to a file.

    The format ``tools/trace_report.py`` consumes. Writes are serialised
    with a lock because the tiled renderer emits from worker threads.
    """

    def __init__(self, path: Union[str, Path], *, append: bool = False) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = self.path.open("a" if append else "w", encoding="utf-8")

    def emit(self, event: Mapping[str, Any]) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class CallbackSink(TraceSink):
    """Forwards every event to a callable."""

    def __init__(self, callback: Callable[[Mapping[str, Any]], object]) -> None:
        self._callback = callback

    def emit(self, event: Mapping[str, Any]) -> None:
        self._callback(event)


def resolve_sink(
    target: Union[TraceSink, Callable[[Mapping[str, Any]], object], str, Path, None],
) -> Optional[TraceSink]:
    """Coerce the user-facing ``trace=`` argument into a sink.

    Accepts an existing sink (returned unchanged), a callable (wrapped
    in :class:`CallbackSink`), a path (``JsonlSink``) or ``None``.
    """
    if target is None or isinstance(target, TraceSink):
        return target
    if isinstance(target, (str, Path)):
        return JsonlSink(target)
    if callable(target):
        return CallbackSink(target)
    raise TypeError(
        f"cannot build a trace sink from {type(target).__name__!r}; "
        "pass a TraceSink, a callable, or a file path"
    )
