"""The :class:`Tracer`: event emission plus metric aggregation.

A tracer is the single object the instrumented code talks to. Engines,
the renderer and the progressive framework call its recording methods;
each call emits a structured event into the tracer's sink (see
:mod:`repro.obs.sinks`) and updates the tracer's
:class:`~repro.obs.metrics.MetricsRegistry` (refinement-depth and
frontier-size histograms, stop-rule counters, tile latency, worker
utilisation).

Tracers are shared across the tiled renderer's worker threads, so every
recording method serialises on one internal lock — tracing is not a hot
path once enabled, and when disabled no tracer exists at all (see
:mod:`repro.obs.runtime` for the zero-overhead-off contract).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.events import (
    EVENT_BATCH_QUERY,
    EVENT_BATCH_STEP,
    EVENT_FAULT,
    EVENT_QUERY,
    EVENT_RECOVERY,
    EVENT_RENDER,
    EVENT_SNAPSHOT,
    EVENT_STEP,
    EVENT_TILE,
    make_event,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BOUNDS,
    MetricsRegistry,
)
from repro.obs.sinks import RingBufferSink, TraceSink

if TYPE_CHECKING:
    from repro._types import FloatArray

__all__ = ["Tracer"]


class Tracer:
    """Collects structured trace events and aggregate metrics.

    Parameters
    ----------
    sink:
        Where events go; defaults to a bounded in-memory
        :class:`~repro.obs.sinks.RingBufferSink`.
    steps:
        When true, per-refinement-step events (``step`` /
        ``batch_step``) are emitted too — far more voluminous, for
        deep-dive debugging (``REPRO_TRACE=steps``).
    registry:
        Metric aggregation target; defaults to a private
        :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        *,
        steps: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sink: TraceSink = sink if sink is not None else RingBufferSink()
        self.steps = bool(steps)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.method: Optional[str] = None
        self._start = time.perf_counter()
        self._lock = threading.Lock()
        self._depth_hist = self.registry.histogram("engine.refinement_depth")
        self._frontier_hist = self.registry.histogram("engine.frontier_size")
        self._tile_hist = self.registry.histogram(
            "render.tile_seconds", bounds=DEFAULT_SECONDS_BOUNDS
        )

    # -- plumbing ----------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the tracer was created (monotonic)."""
        return time.perf_counter() - self._start

    def emit(self, kind: str, **fields: Any) -> None:
        """Emit one event of ``kind`` with the current method context."""
        event = make_event(kind, self.elapsed(), method=self.method, **fields)
        with self._lock:
            self.sink.emit(event)

    @contextmanager
    def method_scope(self, name: str) -> Iterator[None]:
        """Attach a method name to every event emitted inside the scope."""
        previous = self.method
        self.method = name
        try:
            yield
        finally:
            self.method = previous

    def events(self) -> List[Dict[str, Any]]:
        """Buffered events when the sink is a ring buffer, else ``[]``."""
        if isinstance(self.sink, RingBufferSink):
            return self.sink.events()
        return []

    def summary(self) -> Dict[str, Any]:
        """Snapshot of the aggregated metrics."""
        with self._lock:
            return self.registry.as_dict()

    # -- engine hooks ------------------------------------------------------

    def query(
        self,
        *,
        engine: str,
        op: str,
        bound: str,
        rule: str,
        iterations: int,
        node_evaluations: int,
        leaf_evaluations: int,
        point_evaluations: int,
        root_gap: float,
        lb: float,
        ub: float,
    ) -> None:
        """Record one scalar-engine query (one pixel)."""
        with self._lock:
            self._depth_hist.observe(iterations)
            self.registry.counter(f"rules.{rule}").add(1)
            self.registry.counter("engine.scalar_queries").add(1)
            self.sink.emit(
                make_event(
                    EVENT_QUERY,
                    self.elapsed(),
                    method=self.method,
                    engine=engine,
                    op=op,
                    bound=bound,
                    rule=rule,
                    iterations=iterations,
                    node_evaluations=node_evaluations,
                    leaf_evaluations=leaf_evaluations,
                    point_evaluations=point_evaluations,
                    root_gap=root_gap,
                    lb=lb,
                    ub=ub,
                )
            )

    def batch_query(
        self,
        *,
        engine: str,
        op: str,
        bound: str,
        rows: int,
        pops: int,
        depths: FloatArray,
        rules: Dict[str, int],
        root_gap_mean: float,
        final_gap_mean: float,
    ) -> None:
        """Record one batched-engine batch (one tile / query block)."""
        import numpy as np

        depth_array = np.asarray(depths, dtype=np.float64)
        with self._lock:
            self._depth_hist.observe_array(depth_array)
            for rule, count in rules.items():
                if count:
                    self.registry.counter(f"rules.{rule}").add(int(count))
            self.registry.counter("engine.batch_queries").add(rows)
            self.registry.counter("engine.batch_pops").add(pops)
            self.sink.emit(
                make_event(
                    EVENT_BATCH_QUERY,
                    self.elapsed(),
                    method=self.method,
                    engine=engine,
                    op=op,
                    bound=bound,
                    rows=rows,
                    pops=pops,
                    depth_mean=float(depth_array.mean()) if rows else 0.0,
                    depth_p50=float(np.percentile(depth_array, 50)) if rows else 0.0,
                    depth_p95=float(np.percentile(depth_array, 95)) if rows else 0.0,
                    depth_max=float(depth_array.max()) if rows else 0.0,
                    rules={k: int(v) for k, v in rules.items() if v},
                    root_gap_mean=root_gap_mean,
                    final_gap_mean=final_gap_mean,
                )
            )

    def frontier(self, n_active: int) -> None:
        """Record the active-row count of one batched frontier pop."""
        with self._lock:
            self._frontier_hist.observe(n_active)

    def step(
        self, *, node: int, leaf: bool, gap: float, lb: float, ub: float
    ) -> None:
        """Record one scalar refinement step (``steps`` level only)."""
        self.emit(EVENT_STEP, node=node, leaf=leaf, gap=gap, lb=lb, ub=ub)

    def batch_step(
        self, *, node: int, leaf: bool, n_active: int, gap_sum: float
    ) -> None:
        """Record one batched frontier pop (``steps`` level only)."""
        self.emit(
            EVENT_BATCH_STEP, node=node, leaf=leaf, n_active=n_active, gap_sum=gap_sum
        )

    # -- renderer hooks ----------------------------------------------------

    def tile(
        self, *, index: int, rows: int, seconds: float, worker: int, op: str
    ) -> None:
        """Record one rendered tile."""
        with self._lock:
            self._tile_hist.observe(seconds)
            self.registry.counter("render.tiles").add(1)
            self.sink.emit(
                make_event(
                    EVENT_TILE,
                    self.elapsed(),
                    method=self.method,
                    index=index,
                    rows=rows,
                    seconds=round(seconds, 6),
                    worker=worker,
                    op=op,
                )
            )

    def render(
        self,
        *,
        op: str,
        pixels: int,
        tiles: int,
        workers: int,
        seconds: float,
        worker_busy: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one completed render, with worker utilisation if tiled."""
        utilisation = None
        if worker_busy is not None and workers > 0 and seconds > 0:
            utilisation = round(sum(worker_busy) / (workers * seconds), 4)
        with self._lock:
            self.registry.counter("render.renders").add(1)
            if utilisation is not None:
                self.registry.histogram(
                    "render.worker_utilisation",
                    bounds=tuple(k / 10.0 for k in range(1, 11)),
                ).observe(utilisation)
            self.sink.emit(
                make_event(
                    EVENT_RENDER,
                    self.elapsed(),
                    method=self.method,
                    op=op,
                    pixels=pixels,
                    tiles=tiles,
                    workers=workers,
                    seconds=round(seconds, 6),
                    worker_busy=(
                        [round(b, 6) for b in worker_busy]
                        if worker_busy is not None
                        else None
                    ),
                    utilisation=utilisation,
                )
            )

    def snapshot(self, *, pixels: int, elapsed: float, label: float) -> None:
        """Record one progressive-rendering snapshot capture."""
        self.emit(EVENT_SNAPSHOT, pixels=pixels, seconds=round(elapsed, 6), label=label)

    # -- resilience hooks --------------------------------------------------

    def fault(
        self,
        *,
        kind: str,
        tile: int,
        attempt: int,
        worker: int,
        op: Optional[str] = None,
    ) -> None:
        """Record one injected fault (:mod:`repro.resilience.faults`)."""
        with self._lock:
            self.registry.counter(f"faults.{kind}").add(1)
            self.sink.emit(
                make_event(
                    EVENT_FAULT,
                    self.elapsed(),
                    method=self.method,
                    kind=kind,
                    tile=tile,
                    attempt=attempt,
                    worker=worker,
                    op=op,
                )
            )

    def recovery(
        self,
        *,
        action: str,
        tile: Optional[int] = None,
        worker: Optional[int] = None,
        attempt: Optional[int] = None,
        reason: Optional[str] = None,
    ) -> None:
        """Record one recovery action of the resilient tile runner."""
        with self._lock:
            self.registry.counter(f"recovery.{action}").add(1)
            self.sink.emit(
                make_event(
                    EVENT_RECOVERY,
                    self.elapsed(),
                    method=self.method,
                    action=action,
                    tile=tile,
                    worker=worker,
                    attempt=attempt,
                    reason=reason,
                )
            )

    def __repr__(self) -> str:
        return f"Tracer(sink={type(self.sink).__name__}, steps={self.steps})"
