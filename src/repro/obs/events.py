"""Trace event schema: kinds, required fields, and the event builder.

Events are plain dictionaries (JSON-serialisable by construction) so
every sink — ring buffer, JSONL file, callback — handles them uniformly
and ``tools/trace_report.py`` can consume a trace with no unpickling.
Each event carries:

``event``
    The kind, one of the ``EVENT_*`` constants below.
``t``
    Seconds since the owning tracer started (monotonic clock).
``method``
    The active method name (``quad``, ``karl``, ...) when a method
    scope is open, else absent.

Kind-specific fields (see ``docs/observability.md`` for the full
schema):

``query``
    One scalar-engine query: ``engine``, ``op`` (``eps``/``tau``),
    ``bound`` (provider class), ``rule`` (which stopping rule fired —
    the names of :mod:`repro.core.stopping`), ``iterations``,
    ``node_evaluations``, ``leaf_evaluations``, ``point_evaluations``,
    ``root_gap``, ``lb``, ``ub``.
``batch_query``
    One batched-engine batch: ``rows``, per-pixel refinement ``depth_*``
    summaries, ``rules`` (rule name -> pixel count), ``pops`` (frontier
    pops), gap statistics.
``step`` / ``batch_step``
    Per-refinement-step detail (only at trace level ``steps``): the
    popped node, leaf flag, bound gap, and for batches the active-row
    count.
``tile``
    One rendered tile: ``index``, ``rows``, ``seconds``, ``worker``.
``render``
    One full render: ``op``, ``pixels``, ``tiles``, ``workers``,
    ``seconds``, and per-worker busy time when tiled.
``snapshot``
    One progressive-visualization snapshot capture.
``fault``
    One injected fault (:mod:`repro.resilience.faults`): ``kind``
    (``worker_crash``/``slow_tile``/``nan_bounds``/``oom``), ``tile``,
    ``attempt``, ``worker``.
``recovery``
    One recovery action of the resilient tile runner: ``action``
    (``retry``/``give-up``/``quarantine``/``cancel``), plus ``tile``,
    ``worker``, ``attempt`` and ``reason`` where applicable.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "EVENT_QUERY",
    "EVENT_BATCH_QUERY",
    "EVENT_STEP",
    "EVENT_BATCH_STEP",
    "EVENT_TILE",
    "EVENT_RENDER",
    "EVENT_SNAPSHOT",
    "EVENT_FAULT",
    "EVENT_RECOVERY",
    "EVENT_KINDS",
    "make_event",
]

EVENT_QUERY = "query"
EVENT_BATCH_QUERY = "batch_query"
EVENT_STEP = "step"
EVENT_BATCH_STEP = "batch_step"
EVENT_TILE = "tile"
EVENT_RENDER = "render"
EVENT_SNAPSHOT = "snapshot"
EVENT_FAULT = "fault"
EVENT_RECOVERY = "recovery"

#: Every kind a conforming sink may receive.
EVENT_KINDS = frozenset(
    {
        EVENT_QUERY,
        EVENT_BATCH_QUERY,
        EVENT_STEP,
        EVENT_BATCH_STEP,
        EVENT_TILE,
        EVENT_RENDER,
        EVENT_SNAPSHOT,
        EVENT_FAULT,
        EVENT_RECOVERY,
    }
)


def make_event(kind: str, t: float, **fields: Any) -> Dict[str, Any]:
    """Build one event dict; ``None``-valued fields are dropped."""
    event: Dict[str, Any] = {"event": kind, "t": round(float(t), 6)}
    for key, value in fields.items():
        if value is not None:
            event[key] = value
    return event
