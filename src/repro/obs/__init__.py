"""``repro.obs`` — observability: tracing, metrics, profiling hooks.

A zero-overhead-when-off instrumentation layer over the refinement
engines, the tiled renderer and the progressive framework, following the
same flag-resolution pattern as :mod:`repro.contracts`:

* **Trace events** (:mod:`repro.obs.events`) — structured per-query /
  per-tile records (node pops, bound gap per refinement step, which
  ε/τ stopping rule fired, leaf vs internal evaluations) emitted through
  a pluggable sink (:mod:`repro.obs.sinks`): in-memory ring buffer,
  JSONL file, or callback.
* **Metrics** (:mod:`repro.obs.metrics`) — counters and histograms
  (refinement depth, frontier size, tile latency, worker utilisation);
  :class:`~repro.core.engine.QueryStats` is a thin
  :class:`~repro.obs.metrics.CounterGroup` view over this machinery.
* **Profiling hooks** (:mod:`repro.obs.runtime`) — ``REPRO_TRACE=1``
  (and ``REPRO_TRACE_OUT=trace.jsonl``) for ambient tracing,
  ``KDVRenderer.render_*(trace=...)`` and the CLI's ``--trace-out`` for
  scoped traces, :func:`trace_to` for programmatic scoping.
* **Reports** (:mod:`repro.obs.report`) — per-method refinement-depth
  and bound-tightness summaries; ``tools/trace_report.py`` is the CLI.

See ``docs/observability.md`` for the event schema and overhead numbers.
"""

from __future__ import annotations

from repro.obs.events import EVENT_KINDS, make_event
from repro.obs.metrics import Counter, CounterGroup, Histogram, MetricsRegistry
from repro.obs.report import format_summary, read_jsonl, summarize_events, summarize_jsonl
from repro.obs.runtime import (
    ENV_VAR,
    OUT_ENV_VAR,
    current_tracer,
    refresh_from_env,
    set_tracer,
    trace_to,
    tracing_enabled,
)
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceSink,
    resolve_sink,
)
from repro.obs.trace import Tracer

__all__ = [
    "ENV_VAR",
    "OUT_ENV_VAR",
    "EVENT_KINDS",
    "make_event",
    "Counter",
    "CounterGroup",
    "Histogram",
    "MetricsRegistry",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "CallbackSink",
    "resolve_sink",
    "Tracer",
    "tracing_enabled",
    "current_tracer",
    "set_tracer",
    "refresh_from_env",
    "trace_to",
    "format_summary",
    "read_jsonl",
    "summarize_events",
    "summarize_jsonl",
]
