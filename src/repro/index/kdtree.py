"""A kd-tree whose nodes carry the aggregates needed by bound functions.

This is the indexing framework of the paper's Section 3.2 (its Figure 3):
a balanced binary space partition built by median splits on the widest
dimension. Each node stores

* its minimum bounding rectangle (for the ``[xmin, xmax]`` distance
  interval used by every bound function), and
* the additive moment aggregates of :class:`~repro.core.aggregates.NodeAggregates`
  (for the O(d)/O(d^2) bound evaluation of KARL and QUAD).

Leaves additionally keep a contiguous copy of their points so the exact
per-leaf kernel sum is a single vectorised numpy expression.

Scikit-learn's εKDV also builds a kd-tree by default (the paper's footnote
6), so this one index serves every indexed method in the comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.aggregates import NodeAggregates
from repro.errors import InvalidParameterError
from repro.index.rectangle import Rectangle
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import FloatArray, IntArray, PointLike
    from repro.index.balltree import Ball

__all__ = ["KDTree", "KDTreeNode"]

#: Default leaf capacity; small enough for tight leaf rectangles, large
#: enough that vectorised exact evaluation amortises numpy call overhead.
DEFAULT_LEAF_SIZE = 64


class KDTreeNode:
    """One node of the kd-tree.

    Attributes
    ----------
    rect:
        The node's minimum bounding rectangle.
    agg:
        Moment aggregates of the points under the node.
    left, right:
        Child nodes, or ``None`` for a leaf.
    points:
        For leaves, the ``(m, d)`` array of member points; ``None`` for
        internal nodes.
    sq_norms:
        For leaves, the precomputed ``||p_i||^2`` of :attr:`points`.
    indices:
        For leaves, the original dataset row indices of :attr:`points`
        (lets consumers attach per-point payloads, e.g. regression
        labels); ``None`` for internal nodes.
    weights:
        For leaves of a weighted tree, the per-point weights aligned
        with :attr:`points`; ``None`` otherwise.
    depth:
        Root depth is zero.
    node_id:
        Dense preorder identifier, useful for tracing and tests.
    """

    __slots__ = (
        "rect",
        "agg",
        "left",
        "right",
        "points",
        "sq_norms",
        "indices",
        "weights",
        "depth",
        "node_id",
    )

    def __init__(
        self,
        rect: Rectangle | Ball,
        agg: NodeAggregates | None,
        depth: int,
        node_id: int,
    ) -> None:
        self.rect = rect
        self.agg = agg
        self.left: KDTreeNode | None = None
        self.right: KDTreeNode | None = None
        self.points: FloatArray | None = None
        self.sq_norms: FloatArray | None = None
        self.indices: IntArray | None = None
        self.weights: FloatArray | None = None
        self.depth = depth
        self.node_id = node_id

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return self.left is None

    @property
    def size(self) -> int:
        """Number of points under the node."""
        return self.agg.n

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"KDTreeNode(id={self.node_id}, {kind}, n={self.size}, depth={self.depth})"


class KDTree:
    """Median-split kd-tree with per-node bound aggregates.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    leaf_size:
        Maximum number of points per leaf (must be >= 1).

    Parameters (continued)
    ----------------------
    weights:
        Optional non-negative per-point weights (weighted moments and
        weighted leaf sums throughout).

    Notes
    -----
    The build runs in ``O(n log n)`` time: every level processes each
    point once for splitting and once for its (vectorised) aggregate,
    computed per node from the raw points so each node's moments stay
    centred on its own centroid at full precision.
    """

    def __init__(
        self,
        points: PointLike,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        weights: PointLike | None = None,
    ) -> None:
        points = check_points(points)
        leaf_size = int(leaf_size)
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.n_points = points.shape[0]
        self.dims = points.shape[1]
        self.leaf_size = leaf_size
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64).reshape(-1)
            if weights.shape[0] != self.n_points:
                raise InvalidParameterError(
                    f"weights length {weights.shape[0]} != points {self.n_points}"
                )
            if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
                raise InvalidParameterError("weights must be finite and >= 0")
        self.weights = weights
        self._node_count = 0
        self._leaf_count = 0
        order = np.arange(self.n_points)
        self.root = self._build(order, depth=0)

    def _next_id(self) -> int:
        node_id = self._node_count
        self._node_count += 1
        return node_id

    def _build(self, order: IntArray, depth: int) -> KDTreeNode:
        """Recursively build the subtree over ``points[order]``."""
        member_points = self.points[order]
        member_weights = None if self.weights is None else self.weights[order]
        rect = Rectangle.of_points(member_points)
        node = KDTreeNode(rect=rect, agg=None, depth=depth, node_id=self._next_id())
        extent = rect.high - rect.low
        # lint: allow-float-eq -- exact sentinel: a zero-extent rectangle
        # means identical coordinates, which no split can separate.
        if order.shape[0] <= self.leaf_size or float(extent.max()) == 0.0:
            # Leaf: duplicate-heavy nodes with zero extent also stop here,
            # since no split can separate identical coordinates.
            node.agg = NodeAggregates.from_points(member_points, member_weights)
            node.points = np.ascontiguousarray(member_points, dtype=np.float64)
            node.sq_norms = np.einsum("ij,ij->i", node.points, node.points)
            node.indices = order.copy()
            node.weights = member_weights
            self._leaf_count += 1
            return node
        axis = rect.widest_dimension()
        values = member_points[:, axis]
        half = order.shape[0] // 2
        split_order = np.argpartition(values, half)
        left_order = order[split_order[:half]]
        right_order = order[split_order[half:]]
        node.left = self._build(left_order, depth + 1)
        node.right = self._build(right_order, depth + 1)
        # Aggregates are computed from the raw points rather than merged
        # from the children: each node's moments stay centred on its own
        # centroid at full precision (see NodeAggregates on why).
        node.agg = NodeAggregates.from_points(member_points, member_weights)
        return node

    @property
    def num_nodes(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return self._node_count

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return self._leaf_count

    def nodes(self) -> Iterator[KDTreeNode]:
        """Yield every node in preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def leaves(self) -> Iterator[KDTreeNode]:
        """Yield every leaf node in preorder."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def height(self) -> int:
        """Maximum node depth."""
        return max(node.depth for node in self.nodes())

    def __repr__(self) -> str:
        return (
            f"KDTree(n={self.n_points}, dims={self.dims}, "
            f"leaf_size={self.leaf_size}, nodes={self.num_nodes})"
        )
