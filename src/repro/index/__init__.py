"""Hierarchical spatial index (kd-tree) with per-node bound aggregates."""

from repro.index.rectangle import Rectangle
from repro.index.kdtree import KDTree, KDTreeNode
from repro.index.balltree import Ball, BallTree

__all__ = ["Rectangle", "KDTree", "KDTreeNode", "Ball", "BallTree"]
