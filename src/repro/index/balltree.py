"""A ball-tree alternative to the kd-tree (index ablation).

The paper's framework needs only two things from an index node: a
*bounding region* answering min/max squared distance to a query, and the
moment aggregates. The kd-tree bounds regions by axis-aligned boxes;
this ball tree bounds them by enclosing balls, whose distance interval
is one sqrt per node:

.. math::

    d_{min} = \\max(\\lVert q - c \\rVert - r, 0), \\qquad
    d_{max} = \\lVert q - c \\rVert + r

Balls adapt better to diagonal/elongated clusters, boxes to axis-aligned
ones; ``benchmarks/bench_ablation_index.py`` measures the trade-off.
Nodes reuse :class:`~repro.index.kdtree.KDTreeNode` — the bound
providers are duck-typed over the ``rect`` attribute's
``min_sq_dist``/``max_sq_dist``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.core.aggregates import NodeAggregates
from repro.errors import InvalidParameterError
from repro.index.kdtree import DEFAULT_LEAF_SIZE, KDTreeNode
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import FloatArray, IntArray, PointLike

__all__ = ["Ball", "BallTree"]


class Ball:
    """An enclosing ball ``{p : dist(p, center) <= radius}``.

    Implements the same distance interface as
    :class:`~repro.index.rectangle.Rectangle`, so every bound provider
    works unchanged on ball-tree nodes.
    """

    __slots__ = ("center", "radius", "_center_list", "dims")

    def __init__(self, center: PointLike, radius: float) -> None:
        center = np.asarray(center, dtype=np.float64).reshape(-1).copy()
        radius = float(radius)
        if radius < 0.0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        self.center = center
        self.radius = radius
        self._center_list = center.tolist()
        self.dims = center.shape[0]

    @classmethod
    def of_points(cls, points: PointLike) -> Ball:
        """The centroid-centred enclosing ball of an ``(n, d)`` array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] < 1:
            raise InvalidParameterError("points must be a non-empty (n, d) array")
        center = points.mean(axis=0)
        radius = float(np.sqrt(((points - center) ** 2).sum(axis=1).max()))
        return cls(center, radius)

    def contains(self, point: PointLike) -> bool:
        """Whether ``point`` lies inside (or on the surface of) the ball."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        return float(((point - self.center) ** 2).sum()) <= self.radius**2 * (1 + 1e-12)

    def _center_dist(self, query: Sequence[float]) -> float:
        center = self._center_list
        total = 0.0
        for j in range(self.dims):
            delta = float(query[j]) - center[j]
            total += delta * delta
        return math.sqrt(total)

    def _center_dist_batch(self, queries: FloatArray) -> FloatArray:
        shifted = queries - self.center
        return np.sqrt(np.einsum("ij,ij->i", shifted, shifted))

    def min_sq_dist(self, query: Sequence[float]) -> float:
        """Minimum squared distance from ``query`` to the ball."""
        gap = self._center_dist(query) - self.radius
        if gap <= 0.0:
            return 0.0
        return gap * gap

    def max_sq_dist(self, query: Sequence[float]) -> float:
        """Maximum squared distance from ``query`` to the ball."""
        reach = self._center_dist(query) + self.radius
        return reach * reach

    def min_sq_dist_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised :meth:`min_sq_dist` for an ``(m, d)`` query batch."""
        gap = np.maximum(self._center_dist_batch(queries) - self.radius, 0.0)
        return gap * gap

    def max_sq_dist_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised :meth:`max_sq_dist` for an ``(m, d)`` query batch."""
        reach = self._center_dist_batch(queries) + self.radius
        return reach * reach

    def distance_interval(self, query: Sequence[float]) -> tuple[float, float]:
        """``(min_dist, max_dist)`` — plain (non-squared) distances."""
        center_dist = self._center_dist(query)
        return max(center_dist - self.radius, 0.0), center_dist + self.radius

    def __repr__(self) -> str:
        return f"Ball(center={self.center.tolist()}, radius={self.radius})"


class BallTree:
    """Median-split ball tree with the same aggregates as the kd-tree.

    Splits on the widest *extent* dimension (cheap and adequate); each
    node's bounding region is the enclosing ball of its points. The node
    objects are :class:`~repro.index.kdtree.KDTreeNode` with a
    :class:`Ball` in the ``rect`` slot.
    """

    def __init__(
        self,
        points: PointLike,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        weights: PointLike | None = None,
    ) -> None:
        points = check_points(points)
        leaf_size = int(leaf_size)
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.n_points = points.shape[0]
        self.dims = points.shape[1]
        self.leaf_size = leaf_size
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64).reshape(-1)
            if weights.shape[0] != self.n_points:
                raise InvalidParameterError(
                    f"weights length {weights.shape[0]} != points {self.n_points}"
                )
            if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
                raise InvalidParameterError("weights must be finite and >= 0")
        self.weights = weights
        self._node_count = 0
        self._leaf_count = 0
        order = np.arange(self.n_points)
        self.root = self._build(order, depth=0)

    def _next_id(self) -> int:
        node_id = self._node_count
        self._node_count += 1
        return node_id

    def _build(self, order: IntArray, depth: int) -> KDTreeNode:
        member_points = self.points[order]
        member_weights = None if self.weights is None else self.weights[order]
        ball = Ball.of_points(member_points)
        node = KDTreeNode(rect=ball, agg=None, depth=depth, node_id=self._next_id())
        extent = member_points.max(axis=0) - member_points.min(axis=0)
        # lint: allow-float-eq -- exact sentinel: zero extent means all
        # coordinates are identical, so no split can make progress.
        if order.shape[0] <= self.leaf_size or float(extent.max()) == 0.0:
            node.agg = NodeAggregates.from_points(member_points, member_weights)
            node.points = np.ascontiguousarray(member_points, dtype=np.float64)
            node.sq_norms = np.einsum("ij,ij->i", node.points, node.points)
            node.indices = order.copy()
            node.weights = member_weights
            self._leaf_count += 1
            return node
        axis = int(np.argmax(extent))
        values = member_points[:, axis]
        half = order.shape[0] // 2
        split_order = np.argpartition(values, half)
        node.left = self._build(order[split_order[:half]], depth + 1)
        node.right = self._build(order[split_order[half:]], depth + 1)
        node.agg = NodeAggregates.from_points(member_points, member_weights)
        return node

    @property
    def num_nodes(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return self._node_count

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return self._leaf_count

    def nodes(self) -> Iterator[KDTreeNode]:
        """Yield every node in preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def leaves(self) -> Iterator[KDTreeNode]:
        """Yield every leaf node in preorder."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def __repr__(self) -> str:
        return (
            f"BallTree(n={self.n_points}, dims={self.dims}, "
            f"leaf_size={self.leaf_size}, nodes={self.num_nodes})"
        )
