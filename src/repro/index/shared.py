"""Publish a fitted kd-tree into shared memory; attach it elsewhere.

The process-pool tile executor needs every worker to refine against the
*same* fitted index without pickling the node graph per task (the tree
for a few million points is tens of MB, and a per-task copy would erase
the parallelism win). This module serialises a
:class:`~repro.index.kdtree.KDTree` into a structure-of-arrays layout —
one array per node field, indexed by the dense preorder ``node_id`` —
copies the arrays into a single :class:`multiprocessing.shared_memory`
segment, and rebuilds a faithful :class:`SharedKDTree` from views on the
attaching side. One publication feeds N workers.

Fidelity guarantees (what makes cross-process results trustworthy):

* every float crosses as its exact float64 bit pattern — rectangles,
  moments and leaf points in the attached tree are bit-identical to the
  source tree, so bound evaluations agree bit-for-bit with the parent;
* node identity (``node_id``), depths and the left-before-right
  topology are preserved, so preorder walks — including the canonical
  τ re-decision path :func:`~repro.core.engine.exhausted_exact` — visit
  leaves in the same order and sum in the same order;
* leaf ``points``/``sq_norms``/``indices``/``weights`` are zero-copy
  views into the segment (the bulk of the memory); only the small
  per-node scalars are materialised as Python objects.

Lifecycle: the publishing side owns the segment — :meth:`SharedTreeHandle.close`
(also registered as a ``weakref.finalize``) unlinks it exactly once.
Attachers map the segment read-only in spirit (nothing writes) and
merely close their mapping. On Python 3.11 every attach implicitly
registers the segment with ``multiprocessing.resource_tracker``, which
would unlink it when the *first* worker exits (bpo-38119); the attach
path immediately unregisters to keep ownership with the publisher.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Any, Iterator
import weakref

import numpy as np

from repro.core.aggregates import NodeAggregates
from repro.errors import InvalidParameterError
from repro.index.kdtree import KDTree, KDTreeNode
from repro.index.rectangle import Rectangle

if TYPE_CHECKING:
    from repro._types import FloatArray

__all__ = [
    "SharedKDTree",
    "SharedTreeHandle",
    "attach_tree",
    "pack_tree",
    "publish_tree",
]

#: Array alignment inside the segment; numpy float64 ops want 8, keep a
#: comfortable 16 so future SIMD-friendly consumers stay aligned too.
_ALIGN = 16


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_tree(tree: KDTree) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Flatten a kd-tree into named arrays plus a scalar manifest.

    Arrays are indexed by the dense preorder ``node_id``; leaf payloads
    are concatenated in preorder with per-node ``(start, count)``
    cursors. The output of this function is what :func:`publish_tree`
    copies into shared memory, and what :class:`SharedKDTree` rebuilds
    from — ``attach_tree(publish_tree(t).meta)`` round-trips exactly.
    """
    if not isinstance(tree, KDTree):
        raise InvalidParameterError(
            f"only KDTree supports shared-memory publication, got {type(tree).__name__}"
        )
    n_nodes = tree.num_nodes
    dims = tree.dims
    has_weights = tree.weights is not None

    left = np.full(n_nodes, -1, dtype=np.int64)
    right = np.full(n_nodes, -1, dtype=np.int64)
    depth = np.zeros(n_nodes, dtype=np.int64)
    rect_low = np.zeros((n_nodes, dims), dtype=np.float64)
    rect_high = np.zeros((n_nodes, dims), dtype=np.float64)
    agg_n = np.zeros(n_nodes, dtype=np.int64)
    agg_tw = np.zeros(n_nodes, dtype=np.float64)
    agg_center = np.zeros((n_nodes, dims), dtype=np.float64)
    agg_a = np.zeros((n_nodes, dims), dtype=np.float64)
    agg_b = np.zeros(n_nodes, dtype=np.float64)
    agg_v = np.zeros((n_nodes, dims), dtype=np.float64)
    agg_h = np.zeros(n_nodes, dtype=np.float64)
    agg_c = np.zeros((n_nodes, dims * dims), dtype=np.float64)
    leaf_start = np.full(n_nodes, -1, dtype=np.int64)
    leaf_count = np.zeros(n_nodes, dtype=np.int64)

    leaf_points: list[np.ndarray] = []
    leaf_sq_norms: list[np.ndarray] = []
    leaf_indices: list[np.ndarray] = []
    leaf_weights: list[np.ndarray] = []
    cursor = 0
    for node in tree.nodes():
        i = node.node_id
        depth[i] = node.depth
        rect_low[i] = node.rect.low
        rect_high[i] = node.rect.high
        agg = node.agg
        agg_n[i] = agg.n
        agg_tw[i] = agg.total_weight
        agg_center[i] = agg.center
        agg_a[i] = agg.a
        agg_b[i] = agg.b
        agg_v[i] = agg.v
        agg_h[i] = agg.h
        agg_c[i] = agg.c
        if node.is_leaf:
            count = node.points.shape[0]
            leaf_start[i] = cursor
            leaf_count[i] = count
            cursor += count
            leaf_points.append(node.points)
            leaf_sq_norms.append(node.sq_norms)
            leaf_indices.append(np.asarray(node.indices, dtype=np.int64))
            if has_weights:
                leaf_weights.append(np.asarray(node.weights, dtype=np.float64))
        else:
            left[i] = node.left.node_id
            right[i] = node.right.node_id

    arrays: dict[str, np.ndarray] = {
        "left": left,
        "right": right,
        "depth": depth,
        "rect_low": rect_low,
        "rect_high": rect_high,
        "agg_n": agg_n,
        "agg_tw": agg_tw,
        "agg_center": agg_center,
        "agg_a": agg_a,
        "agg_b": agg_b,
        "agg_v": agg_v,
        "agg_h": agg_h,
        "agg_c": agg_c,
        "leaf_start": leaf_start,
        "leaf_count": leaf_count,
        "leaf_points": np.concatenate(leaf_points, axis=0)
        if leaf_points
        else np.zeros((0, dims), dtype=np.float64),
        "leaf_sq_norms": np.concatenate(leaf_sq_norms)
        if leaf_sq_norms
        else np.zeros(0, dtype=np.float64),
        "leaf_indices": np.concatenate(leaf_indices)
        if leaf_indices
        else np.zeros(0, dtype=np.int64),
    }
    if has_weights:
        arrays["leaf_weights"] = np.concatenate(leaf_weights)
    scalars: dict[str, Any] = {
        "n_points": tree.n_points,
        "dims": dims,
        "leaf_size": tree.leaf_size,
        "num_nodes": n_nodes,
        "num_leaves": tree.num_leaves,
        "has_weights": has_weights,
    }
    return arrays, scalars


class SharedTreeHandle:
    """Owner of one published tree segment (publishing-process side).

    ``meta`` is a small picklable dict that travels to worker processes
    (through pool-initializer args); :func:`attach_tree` turns it back
    into a :class:`SharedKDTree`. The handle unlinks the segment on
    :meth:`close` — exactly once, also via a ``weakref.finalize`` safety
    net, so an abandoned handle cannot leak the segment past interpreter
    exit.
    """

    def __init__(self, shm: shared_memory.SharedMemory, meta: dict[str, Any]) -> None:
        self._shm = shm
        self.meta = meta
        self._finalizer = weakref.finalize(self, _release_segment, shm)

    @property
    def name(self) -> str:
        """OS-level segment name (``meta["name"]``)."""
        return str(self.meta["name"])

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unmap and unlink the segment. Idempotent."""
        self._finalizer()

    def __enter__(self) -> SharedTreeHandle:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SharedTreeHandle(name={self.name!r}, {state})"


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    shm.close()
    try:
        shm.unlink()
    # lint: allow-silent-except -- unlink is idempotent by intent; the
    # segment being gone already IS the goal state.
    except FileNotFoundError:
        pass


def publish_tree(tree: KDTree) -> SharedTreeHandle:
    """Copy a packed tree into one shared-memory segment.

    Returns the owning :class:`SharedTreeHandle`; pass ``handle.meta``
    to worker processes and call :func:`attach_tree` there.
    """
    arrays, scalars = pack_tree(tree)
    manifest: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    for name, array in arrays.items():
        offset = _aligned(offset)
        manifest.append((name, array.dtype.str, array.shape, offset))
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (name, dtype, shape, start), array in zip(manifest, arrays.values()):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
        view[...] = array
        del view
    meta = {"name": shm.name, "manifest": manifest, "scalars": scalars}
    return SharedTreeHandle(shm, meta)


class SharedKDTree:
    """A kd-tree reconstructed from a shared-memory segment.

    Quacks like :class:`~repro.index.kdtree.KDTree` for everything the
    refinement engines touch: ``root``, ``nodes()``, ``leaves()``,
    ``height()`` and the size attributes. Node rectangles and aggregates
    are exact float-for-float copies; leaf payload arrays are read-only
    views into the segment. Obtain instances via :func:`attach_tree`.
    """

    def __init__(self, meta: dict[str, Any], shm: shared_memory.SharedMemory) -> None:
        self._shm = shm
        scalars = meta["scalars"]
        self.n_points = int(scalars["n_points"])
        self.dims = int(scalars["dims"])
        self.leaf_size = int(scalars["leaf_size"])
        self._node_count = int(scalars["num_nodes"])
        self._leaf_count = int(scalars["num_leaves"])
        has_weights = bool(scalars["has_weights"])
        views: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in meta["manifest"]:
            view = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            views[name] = view
        self.weights: FloatArray | None = views.get("leaf_weights")
        self.root = self._rebuild(views, has_weights)

    def _rebuild(self, views: dict[str, np.ndarray], has_weights: bool) -> KDTreeNode:
        left = views["left"]
        right = views["right"]
        depth = views["depth"]
        rect_low = views["rect_low"]
        rect_high = views["rect_high"]
        dims = self.dims
        nodes: list[KDTreeNode] = []
        for i in range(self._node_count):
            # Rectangle copies its inputs (tiny, d floats) — exact values.
            rect = Rectangle(rect_low[i], rect_high[i])
            agg = NodeAggregates(
                n=int(views["agg_n"][i]),
                center=views["agg_center"][i].tolist(),
                a=views["agg_a"][i].tolist(),
                b=float(views["agg_b"][i]),
                v=views["agg_v"][i].tolist(),
                h=float(views["agg_h"][i]),
                c=views["agg_c"][i].tolist(),
                dims=dims,
                total_weight=float(views["agg_tw"][i]),
            )
            node = KDTreeNode(rect=rect, agg=agg, depth=int(depth[i]), node_id=i)
            if left[i] < 0:
                start = int(views["leaf_start"][i])
                stop = start + int(views["leaf_count"][i])
                node.points = views["leaf_points"][start:stop]
                node.sq_norms = views["leaf_sq_norms"][start:stop]
                node.indices = views["leaf_indices"][start:stop]
                if has_weights:
                    node.weights = views["leaf_weights"][start:stop]
            nodes.append(node)
        for i in range(self._node_count):
            if left[i] >= 0:
                nodes[i].left = nodes[int(left[i])]
                nodes[i].right = nodes[int(right[i])]
        return nodes[0]

    @property
    def num_nodes(self) -> int:
        return self._node_count

    @property
    def num_leaves(self) -> int:
        return self._leaf_count

    def nodes(self) -> Iterator[KDTreeNode]:
        """Yield every node in preorder (matches ``KDTree.nodes``)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def leaves(self) -> Iterator[KDTreeNode]:
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def height(self) -> int:
        return max(node.depth for node in self.nodes())

    def close(self) -> None:
        """Unmap the segment (attacher side; never unlinks).

        Drops the node graph first so no numpy view pins the buffer —
        callers must likewise have released any arrays they took from
        the tree, or the underlying ``memoryview`` raises
        :class:`BufferError`.
        """
        self.root = None  # type: ignore[assignment]
        self.weights = None
        self._shm.close()

    def __repr__(self) -> str:
        return (
            f"SharedKDTree(n={self.n_points}, dims={self.dims}, "
            f"leaf_size={self.leaf_size}, nodes={self.num_nodes})"
        )


def attach_tree(meta: dict[str, Any]) -> SharedKDTree:
    """Attach the segment described by ``meta`` and rebuild the tree.

    Call in the consuming process with the ``meta`` of a
    :class:`SharedTreeHandle`. The attach suppresses the implicit
    ``multiprocessing.resource_tracker`` registration: on Python < 3.13
    every attach re-registers the segment and the tracker of the first
    exiting process would unlink it under the publisher (bpo-38119) —
    and since forked workers share one tracker, a register/unregister
    pair per worker double-unregisters the same name. Skipping the
    registration outright keeps ownership with the publishing handle
    alone. The attach path runs single-threaded (pool initializers),
    so the brief module-attribute swap cannot race.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        shm = shared_memory.SharedMemory(name=str(meta["name"]))
    finally:
        resource_tracker.register = original_register
    return SharedKDTree(meta, shm)
