"""Axis-aligned bounding rectangles and point-to-rectangle distances.

Every bound function in the paper needs the interval ``[xmin, xmax]`` of
scaled distances between a pixel ``q`` and the points inside an index
node. The node stores its minimum bounding rectangle (MBR); the interval
endpoints come from the minimum and maximum Euclidean distance between
``q`` and that rectangle (Section 4 of the paper), both computable in
``O(d)`` time.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = ["Rectangle"]


class Rectangle:
    """An axis-aligned rectangle ``[low_j, high_j]`` per dimension ``j``.

    Instances are immutable in spirit: the bound arrays are copied on
    construction and never mutated afterwards.
    """

    __slots__ = ("low", "high", "_low_list", "_high_list", "dims")

    def __init__(self, low: PointLike, high: PointLike) -> None:
        low = np.asarray(low, dtype=np.float64).reshape(-1).copy()
        high = np.asarray(high, dtype=np.float64).reshape(-1).copy()
        if low.shape != high.shape:
            raise InvalidParameterError(
                f"low and high must have the same length, got {low.shape} vs {high.shape}"
            )
        if low.shape[0] < 1:
            raise InvalidParameterError("rectangle must have at least one dimension")
        if np.any(low > high):
            raise InvalidParameterError("rectangle must satisfy low <= high per dimension")
        self.low = low
        self.high = high
        # Plain-float copies: the per-pixel refinement loop hits
        # min/max-distance millions of times and list indexing beats numpy
        # scalar extraction by roughly an order of magnitude.
        self._low_list = low.tolist()
        self._high_list = high.tolist()
        self.dims = low.shape[0]

    @classmethod
    def of_points(cls, points: PointLike) -> Rectangle:
        """The minimum bounding rectangle of an ``(n, d)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] < 1:
            raise InvalidParameterError("points must be a non-empty (n, d) array")
        return cls(points.min(axis=0), points.max(axis=0))

    def contains(self, point: PointLike) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the box."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        return bool(np.all(point >= self.low) and np.all(point <= self.high))

    def min_sq_dist(self, query: Sequence[float]) -> float:
        """Minimum squared Euclidean distance from ``query`` to the box.

        Zero when the query lies inside the rectangle. ``query`` may be
        any sequence of ``dims`` coordinates; each is coerced to a plain
        float once so the arithmetic below never degrades to numpy
        scalar operations (an order of magnitude slower per op).
        """
        low = self._low_list
        high = self._high_list
        if self.dims == 2:
            # Unrolled 2-D fast path for the per-pixel hot loop.
            total = 0.0
            value = float(query[0])
            if value < low[0]:
                delta = low[0] - value
                total = delta * delta
            elif value > high[0]:
                delta = value - high[0]
                total = delta * delta
            value = float(query[1])
            if value < low[1]:
                delta = low[1] - value
                total += delta * delta
            elif value > high[1]:
                delta = value - high[1]
                total += delta * delta
            return total
        total = 0.0
        for j in range(self.dims):
            value = float(query[j])
            if value < low[j]:
                delta = low[j] - value
            elif value > high[j]:
                delta = value - high[j]
            else:
                continue
            total += delta * delta
        return total

    def min_sq_dist_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised :meth:`min_sq_dist` for an ``(m, d)`` query batch."""
        outside = np.maximum(self.low - queries, 0.0)
        np.maximum(outside, queries - self.high, out=outside)
        return np.einsum("ij,ij->i", outside, outside)

    def max_sq_dist(self, query: Sequence[float]) -> float:
        """Maximum squared Euclidean distance from ``query`` to the box.

        Attained at the rectangle corner farthest from the query in every
        coordinate.
        """
        low = self._low_list
        high = self._high_list
        if self.dims == 2:
            # Unrolled 2-D fast path: farthest corner per axis is whichever
            # bound is farther from the query coordinate.
            value = float(query[0])
            d_low = value - low[0]
            if d_low < 0.0:
                d_low = -d_low
            d_high = value - high[0]
            if d_high < 0.0:
                d_high = -d_high
            delta = d_low if d_low > d_high else d_high
            total = delta * delta
            value = float(query[1])
            d_low = value - low[1]
            if d_low < 0.0:
                d_low = -d_low
            d_high = value - high[1]
            if d_high < 0.0:
                d_high = -d_high
            delta = d_low if d_low > d_high else d_high
            return total + delta * delta
        total = 0.0
        for j in range(self.dims):
            value = float(query[j])
            d_low = value - low[j]
            if d_low < 0.0:
                d_low = -d_low
            d_high = value - high[j]
            if d_high < 0.0:
                d_high = -d_high
            delta = d_low if d_low > d_high else d_high
            total += delta * delta
        return total

    def max_sq_dist_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised :meth:`max_sq_dist` for an ``(m, d)`` query batch."""
        farthest = np.maximum(np.abs(queries - self.low), np.abs(queries - self.high))
        return np.einsum("ij,ij->i", farthest, farthest)

    def distance_interval(self, query: Sequence[float]) -> tuple[float, float]:
        """Return ``(min_dist, max_dist)`` — plain (non-squared) distances."""
        return math.sqrt(self.min_sq_dist(query)), math.sqrt(self.max_sq_dist(query))

    def widest_dimension(self) -> int:
        """Index of the dimension with the largest extent (split heuristic)."""
        return int(np.argmax(self.high - self.low))

    def __repr__(self) -> str:
        return f"Rectangle(low={self.low.tolist()}, high={self.high.tolist()})"
