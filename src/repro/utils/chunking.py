"""Memory-bounded chunk iteration for vectorised kernel sums.

The exact evaluator materialises an ``(m, n)`` distance block per chunk of
query points; chunking keeps that block below a configurable budget so the
library stays usable on million-point datasets without swapping.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvalidParameterError

__all__ = ["DEFAULT_CHUNK_ELEMENTS", "chunk_slices"]

#: Default per-chunk element budget (~64 MB of float64 distances).
DEFAULT_CHUNK_ELEMENTS = 8_000_000


def chunk_slices(
    total: int, n_per_row: int, *, max_elements: int = DEFAULT_CHUNK_ELEMENTS
) -> Iterator[slice]:
    """Yield ``slice`` objects that partition ``range(total)``.

    Each slice spans at most ``max_elements // n_per_row`` rows (and at
    least one), so a dense block of shape ``(rows, n_per_row)`` never
    exceeds the element budget.

    Parameters
    ----------
    total:
        Number of rows to cover.
    n_per_row:
        Width of the dense block built per row.
    max_elements:
        Upper bound on ``rows * n_per_row`` per chunk.
    """
    if total < 0:
        raise InvalidParameterError(f"total must be >= 0, got {total}")
    if n_per_row <= 0:
        raise InvalidParameterError(f"n_per_row must be > 0, got {n_per_row}")
    if max_elements <= 0:
        raise InvalidParameterError(f"max_elements must be > 0, got {max_elements}")
    rows = max(1, int(max_elements) // int(n_per_row))
    start = 0
    while start < total:
        stop = min(start + rows, total)
        yield slice(start, stop)
        start = stop
