"""Small shared helpers (argument validation, chunked iteration)."""

from repro.utils.validation import (
    check_points,
    check_positive,
    check_probability_like,
    check_query,
)
from repro.utils.chunking import chunk_slices

__all__ = [
    "check_points",
    "check_positive",
    "check_probability_like",
    "check_query",
    "chunk_slices",
]
