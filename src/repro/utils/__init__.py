"""Small shared helpers (argument validation, chunked iteration, caching)."""

from repro.utils.cache import CacheStats, LRUCache, SingleFlight, default_sizeof
from repro.utils.chunking import chunk_slices
from repro.utils.validation import (
    check_points,
    check_positive,
    check_probability_like,
    check_query,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "SingleFlight",
    "default_sizeof",
    "check_points",
    "check_positive",
    "check_probability_like",
    "check_query",
    "chunk_slices",
]
