"""Argument validation helpers used across the public API.

Every helper raises :class:`~repro.errors.InvalidParameterError` with a
message naming the offending argument, so API misuse fails loudly and
early rather than producing silently wrong density values.
"""

from __future__ import annotations

import numbers
import warnings
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DataQualityWarning, DataValidationError, InvalidParameterError

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = [
    "check_positive",
    "check_probability_like",
    "check_points",
    "check_query",
    "clean_points",
    "DUPLICATE_WARN_FRACTION",
]

#: Duplicate-row fraction above which :func:`clean_points` warns: at half
#: the dataset, bandwidth selectors (Scott/Silverman divide by the
#: sample spread) start reflecting the duplication artefact more than
#: the distribution.
DUPLICATE_WARN_FRACTION = 0.5


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite real number greater than zero.

    Parameters
    ----------
    value:
        The value to validate.
    name:
        Argument name used in the error message.

    Returns
    -------
    float
        ``value`` converted to ``float``.
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise InvalidParameterError(f"{name} must be finite and > 0, got {value!r}")
    return value


def check_probability_like(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate a parameter expected to lie in ``(0, 1]`` (or ``[0, 1]``).

    Used for relative errors ``eps`` and sampling failure probabilities
    ``delta``.
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not np.isfinite(value) or not low_ok or value > 1.0:
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise InvalidParameterError(f"{name} must be in {bound}, got {value!r}")
    return value


def check_points(points: PointLike, *, name: str = "points", min_rows: int = 1) -> FloatArray:
    """Validate and normalise a point set into a 2-D float64 array.

    Accepts any array-like of shape ``(n, d)``. One-dimensional input of
    length ``n`` is treated as ``n`` points in one dimension.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` array of shape ``(n, d)``.
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise InvalidParameterError(
            f"{name} must be a 2-D array of shape (n, d), got ndim={array.ndim}"
        )
    if array.shape[0] < min_rows:
        raise InvalidParameterError(
            f"{name} must contain at least {min_rows} point(s), got {array.shape[0]}"
        )
    if array.shape[1] < 1:
        raise InvalidParameterError(f"{name} must have at least one column")
    if not np.all(np.isfinite(array)):
        raise InvalidParameterError(f"{name} must not contain NaN or infinity")
    return np.ascontiguousarray(array)


def clean_points(
    points: PointLike,
    *,
    name: str = "points",
    min_rows: int = 1,
    drop_nonfinite: bool = False,
    duplicate_warn_fraction: float = DUPLICATE_WARN_FRACTION,
) -> FloatArray:
    """:func:`check_points` with structured errors and quality warnings.

    The data-ingestion front door (:mod:`repro.data.loaders`,
    :mod:`repro.data.synthetic`) routes through this instead of
    :func:`check_points`:

    * Non-finite rows raise :class:`~repro.errors.DataValidationError`
      carrying the offending row count — or, with
      ``drop_nonfinite=True``, are removed with a
      :class:`~repro.errors.DataQualityWarning` naming how many were
      dropped.
    * When more than ``duplicate_warn_fraction`` of the rows are exact
      duplicates of another row, a
      :class:`~repro.errors.DataQualityWarning` is emitted: densities
      stay well-defined but bandwidth rules degrade towards the
      duplicated support (pass ``duplicate_warn_fraction=1.0`` to
      disable the check).

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` array of shape ``(n, d)``.
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DataValidationError(
            f"{name} must be a 2-D array of shape (n, d), got ndim={array.ndim}"
        )
    if array.shape[1] < 1:
        raise DataValidationError(f"{name} must have at least one column")
    total_rows = int(array.shape[0])
    finite_rows = np.isfinite(array).all(axis=1)
    nonfinite = total_rows - int(finite_rows.sum())
    if nonfinite:
        if not drop_nonfinite:
            raise DataValidationError(
                f"{name} contains {nonfinite} row(s) with NaN/Inf coordinates "
                f"(of {total_rows}); pass drop_nonfinite=True to discard them",
                nonfinite_rows=nonfinite,
                total_rows=total_rows,
            )
        warnings.warn(
            f"{name}: dropped {nonfinite} row(s) with NaN/Inf coordinates "
            f"(of {total_rows})",
            DataQualityWarning,
            stacklevel=2,
        )
        array = array[finite_rows]
    if array.shape[0] < min_rows:
        raise DataValidationError(
            f"{name} must contain at least {min_rows} finite point(s), "
            f"got {array.shape[0]}",
            nonfinite_rows=nonfinite,
            total_rows=total_rows,
        )
    if duplicate_warn_fraction < 1.0 and array.shape[0] > 1:
        unique_rows = np.unique(array, axis=0).shape[0]
        duplicate_fraction = 1.0 - unique_rows / array.shape[0]
        if duplicate_fraction > duplicate_warn_fraction:
            warnings.warn(
                f"{name}: {duplicate_fraction:.0%} of rows are exact "
                "duplicates; bandwidth rules (Scott/Silverman) are "
                "unreliable on duplicate-heavy data — consider "
                "deduplicating with per-point weights",
                DataQualityWarning,
                stacklevel=2,
            )
    return np.ascontiguousarray(array)


def check_query(query: PointLike, dims: int, *, name: str = "query") -> FloatArray:
    """Validate a single query point against the fitted dimensionality.

    Returns
    -------
    numpy.ndarray
        A 1-D ``float64`` array of length ``dims``.
    """
    array = np.asarray(query, dtype=np.float64).reshape(-1)
    if array.shape[0] != dims:
        raise InvalidParameterError(
            f"{name} must have {dims} coordinate(s), got {array.shape[0]}"
        )
    if not np.all(np.isfinite(array)):
        raise InvalidParameterError(f"{name} must not contain NaN or infinity")
    return array
