"""Shared cache primitives: bounded LRU with TTL and single-flight.

Before this module existed the codebase grew one hand-rolled LRU per
need (:class:`~repro.methods.zorder.ZOrderMethod`'s per-eps sample
cache, and the tile service would have added another). This is the one
implementation both use:

* :class:`LRUCache` — least-recently-used eviction bounded by entry
  count and/or a byte budget, with optional per-entry TTL, hit / miss /
  eviction / expiration counters (:class:`CacheStats`) and explicit
  invalidation (single key, predicate, or everything).
* :class:`SingleFlight` — concurrent callers of the same key share one
  execution: the first caller (the *leader*) computes, everyone else
  blocks on the leader's future. The tile service uses this to collapse
  a thundering herd of identical tile requests into one render.

Both classes are thread-safe; the cache takes one lock per operation
(cache lookups are not a per-pixel hot path anywhere in the library).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import InvalidParameterError

__all__ = ["CacheStats", "LRUCache", "SingleFlight", "default_sizeof"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def default_sizeof(value: object) -> int:
    """Best-effort byte size of a cached value.

    ``bytes``-like values report their length, numpy arrays their
    ``nbytes``, tuples/lists the sum over their items; everything else
    falls back to ``sys.getsizeof``. The point is a *consistent* charge
    for the byte budget, not allocator-exact accounting.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (tuple, list)):
        return sum(default_sizeof(item) for item in value)
    import sys

    return int(sys.getsizeof(value))


class CacheStats:
    """Counters one :class:`LRUCache` maintains (monotone, lock-guarded)."""

    __slots__ = ("hits", "misses", "inserts", "evictions", "expirations", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def as_dict(self) -> Dict[str, int]:
        """Counter snapshot as a plain dictionary."""
        return {name: int(getattr(self, name)) for name in self.__slots__}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"CacheStats({parts})"


class _Entry(Generic[V]):
    __slots__ = ("value", "size", "expires_at")

    def __init__(self, value: V, size: int, expires_at: Optional[float]) -> None:
        self.value = value
        self.size = size
        self.expires_at = expires_at


class LRUCache(Generic[K, V]):
    """A thread-safe LRU cache bounded by entries and/or bytes, with TTL.

    Parameters
    ----------
    max_entries:
        Maximum number of entries kept (``None`` = unbounded by count).
    max_bytes:
        Byte budget over the ``sizeof`` charges of the kept values
        (``None`` = unbounded by size). Inserting while over budget
        evicts least-recently-used entries first; a single value larger
        than the whole budget is not kept at all.
    ttl_s:
        Optional time-to-live in seconds; an entry older than this
        counts as a miss (and is dropped) on its next access.
    sizeof:
        Byte-charge function for values (default
        :func:`default_sizeof`); a ``put`` with an explicit
        ``size_bytes`` bypasses it.
    clock:
        Monotonic time source (injectable for TTL tests).
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
        *,
        sizeof: Callable[[object], int] = default_sizeof,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries is not None and int(max_entries) < 1:
            raise InvalidParameterError(f"max_entries must be >= 1, got {max_entries!r}")
        if max_bytes is not None and int(max_bytes) < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {max_bytes!r}")
        if ttl_s is not None and not float(ttl_s) > 0.0:
            raise InvalidParameterError(f"ttl_s must be > 0, got {ttl_s!r}")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self._sizeof = sizeof
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[K, _Entry[V]]" = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    # -- core operations ---------------------------------------------------

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """The cached value, promoting it to most-recently-used.

        An expired or absent entry counts as a miss and returns
        ``default``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return default
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                self._drop(key, entry)
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def put(self, key: K, value: V, *, size_bytes: Optional[int] = None) -> None:
        """Insert (or replace) ``key`` and evict until within budget."""
        size = int(self._sizeof(value)) if size_bytes is None else int(size_bytes)
        if size < 0:
            raise InvalidParameterError(f"size_bytes must be >= 0, got {size}")
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.size
            self._entries[key] = _Entry(value, size, expires_at)
            self._bytes += size
            self.stats.inserts += 1
            self._shrink()

    def _drop(self, key: K, entry: _Entry[V]) -> None:
        del self._entries[key]
        self._bytes -= entry.size

    def _purge_expired(self) -> None:
        """Drop every entry past its TTL (caller holds the lock).

        Keeps the introspection surface (``keys``/``__iter__``/
        ``__len__``/``as_dict``) consistent with ``get`` and
        ``__contains__``, which already treat such entries as absent.
        """
        if self.ttl_s is None:
            return
        now = self._clock()
        doomed = [
            (key, entry)
            for key, entry in self._entries.items()
            if entry.expires_at is not None and now >= entry.expires_at
        ]
        for key, entry in doomed:
            self._drop(key, entry)
            self.stats.expirations += 1

    def _shrink(self) -> None:
        """Evict least-recently-used entries until within every budget."""
        while self._entries and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            __, entry = self._entries.popitem(last=False)
            self._bytes -= entry.size
            self.stats.evictions += 1

    # -- invalidation ------------------------------------------------------

    def invalidate(self, key: K) -> bool:
        """Drop one key; returns whether it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.size
            self.stats.invalidations += 1
            return True

    def invalidate_where(self, predicate: Callable[[K], bool]) -> int:
        """Drop every key matching ``predicate``; returns the count."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                self._drop(key, self._entries[key])
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.stats.invalidations += count
            return count

    # -- introspection -----------------------------------------------------

    @property
    def current_bytes(self) -> int:
        """Sum of the byte charges of the kept entries."""
        with self._lock:
            return self._bytes

    def keys(self) -> List[K]:
        """Snapshot of the live (unexpired) keys, least-recently-used first."""
        with self._lock:
            self._purge_expired()
            return list(self._entries)

    def __iter__(self) -> Iterator[K]:
        """Iterate a snapshot of the live keys, least-recently-used first."""
        return iter(self.keys())

    def __len__(self) -> int:
        with self._lock:
            self._purge_expired()
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        """Non-promoting, non-counting membership test (honours TTL)."""
        with self._lock:
            entry = self._entries.get(key)  # type: ignore[arg-type]
            if entry is None:
                return False
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                return False
            return True

    def as_dict(self) -> Dict[str, Any]:
        """Stats plus occupancy and limits, JSON-ready."""
        with self._lock:
            self._purge_expired()
            snapshot: Dict[str, Any] = self.stats.as_dict()
            snapshot.update(
                entries=len(self._entries),
                bytes=self._bytes,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
                ttl_s=self.ttl_s,
            )
            return snapshot

    def __repr__(self) -> str:
        return (
            f"LRUCache(entries={len(self)}, bytes={self.current_bytes}, "
            f"max_entries={self.max_entries}, max_bytes={self.max_bytes})"
        )


class SingleFlight(Generic[K, V]):
    """Deduplicate concurrent computations of the same key.

    :meth:`do` returns ``(value, leader)``: the leader actually ran the
    supplier, followers received the leader's result (or its exception
    — a failed flight propagates to everyone who joined it, and the key
    is immediately retryable afterwards).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[K, "Future[V]"] = {}

    def do(self, key: K, supplier: Callable[[], V]) -> Tuple[V, bool]:
        """Run ``supplier`` once per concurrent ``key``; share the result."""
        with self._lock:
            future = self._flights.get(key)
            if future is not None:
                leader = False
            else:
                future = Future()
                self._flights[key] = future
                leader = True
        if not leader:
            return future.result(), False
        try:
            value = supplier()
        except BaseException as error:
            with self._lock:
                self._flights.pop(key, None)
            future.set_exception(error)
            raise
        with self._lock:
            self._flights.pop(key, None)
        future.set_result(value)
        return value, True

    def in_flight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._flights)

    def __repr__(self) -> str:
        return f"SingleFlight(in_flight={self.in_flight()})"
