"""Z-order curve-stratified sampling (Zheng et al., SIGMOD 2013).

The probabilistic εKDV competitor in the paper's Table 6: pre-sample the
dataset down to ``m`` points by sorting along the Z-order curve and
taking every ``n/m``-th point, re-weight each sample by ``n/m`` (the
paper's footnote 5), and run EXACT on the sample. The guarantee is
probabilistic — error ``eps`` with probability ``1 - delta`` — in
contrast to the deterministic guarantee of the bound-based camp.

The theoretical sample size is ``m = O((1/eps^2) * log(1/delta))``; the
constant is configurable because, as the paper stresses, even a reduced
dataset still pays the full EXACT cost per pixel, which is exactly why
Z-order loses to QUAD at small ``eps``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.morton import morton_codes
from repro.utils.validation import check_points, check_probability_like

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = ["sample_size_for_eps", "zorder_sample"]

#: Leading constant of the m = C/eps^2 * ln(1/delta) sample-size bound.
DEFAULT_SIZE_CONSTANT = 0.5


def sample_size_for_eps(
    n: int, eps: float, delta: float = 0.1, *, constant: float = DEFAULT_SIZE_CONSTANT
) -> int:
    """The sample size required for a ``(eps, delta)`` guarantee.

    ``min(n, ceil(constant / eps^2 * ln(1 / delta)))`` — never larger
    than the dataset itself.
    """
    eps = check_probability_like(eps, "eps")
    delta = check_probability_like(delta, "delta")
    size = int(math.ceil(constant / (eps * eps) * math.log(1.0 / delta)))
    return max(1, min(int(n), size))


def zorder_sample(points: PointLike, m: int, *, bits: int = 16) -> tuple[FloatArray, float]:
    """Stratified sample of ``m`` points along the Z-order curve.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)``.
    m:
        Sample size (``1 <= m <= n``).
    bits:
        Quantisation bits per coordinate for the Morton codes.

    Returns
    -------
    tuple
        ``(sample, weight_multiplier)`` where ``sample`` has shape
        ``(m', d)`` with ``m' <= m`` and each sampled point stands for
        ``weight_multiplier = n / m'`` original points.
    """
    points = check_points(points)
    n = points.shape[0]
    m = int(m)
    if m < 1:
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(f"m must be >= 1, got {m}")
    if m >= n:
        return points.copy(), 1.0
    order = np.argsort(morton_codes(points, bits=bits), kind="stable")
    # Evenly spaced picks along the curve: centred strides so every
    # stratum of the sorted order contributes one representative.
    picks = (np.arange(m, dtype=np.float64) + 0.5) * (n / m)
    indices = np.minimum(picks.astype(np.int64), n - 1)
    indices = np.unique(indices)
    sample = points[order[indices]]
    return sample, n / sample.shape[0]
