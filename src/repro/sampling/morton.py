"""Morton (Z-order) space-filling-curve codes.

The Z-order sampling method of Zheng et al. [SIGMOD 2013] sorts points
along the Z-order curve and takes a stratified sample along the sorted
order; nearby points share long code prefixes, so curve-stratification is
spatially stratified. Codes are computed by bit interleaving of the
quantised coordinates, vectorised over numpy integer arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import PointLike

__all__ = ["interleave_bits", "morton_codes"]

#: Bits of quantisation per coordinate (uint64 codes allow 64 // d).
DEFAULT_BITS = 16


def interleave_bits(coords: PointLike, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Interleave the low ``bits`` of each column of an integer array.

    Parameters
    ----------
    coords:
        Non-negative integer array of shape ``(n, d)``; values must fit
        in ``bits`` bits.
    bits:
        Number of bits taken from each coordinate.

    Returns
    -------
    numpy.ndarray
        ``uint64`` Morton codes of shape ``(n,)`` where bit
        ``k * d + j`` of the code is bit ``k`` of column ``j``.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise InvalidParameterError("coords must be a 2-D integer array")
    n, d = coords.shape
    if bits < 1 or bits * d > 64:
        raise InvalidParameterError(
            f"bits * dims must fit in 64 bits, got bits={bits}, dims={d}"
        )
    if np.any(coords < 0) or np.any(coords >= (1 << bits)):
        raise InvalidParameterError(f"coordinates must be in [0, 2**{bits})")
    coords = coords.astype(np.uint64)
    codes = np.zeros(n, dtype=np.uint64)
    for bit in range(bits):
        for dim in range(d):
            source_bit = (coords[:, dim] >> np.uint64(bit)) & np.uint64(1)
            codes |= source_bit << np.uint64(bit * d + dim)
    return codes


def morton_codes(points: PointLike, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Z-order codes of real-valued points, quantised to a ``2**bits`` grid.

    Coordinates are min-max scaled per dimension into ``[0, 2**bits - 1]``
    before interleaving; constant dimensions map to zero.
    """
    points = check_points(points)
    low = points.min(axis=0)
    high = points.max(axis=0)
    extent = high - low
    # lint: allow-float-eq -- exact sentinel: a degenerate axis (all equal
    # coordinates) scales to cell 0 regardless of the divisor chosen.
    extent[extent == 0.0] = 1.0
    max_cell = float((1 << bits) - 1)
    scaled = (points - low) / extent * max_cell
    quantised = np.clip(np.rint(scaled), 0, max_cell).astype(np.int64)
    return interleave_bits(quantised, bits=bits)
