"""Uniform random sampling baseline (ablation against Z-order).

Simple i.i.d. subsampling with the same ``n/m`` re-weighting; used by the
sampling ablation benchmark to show why curve-stratified sampling gives
lower variance on spatially clustered data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.validation import check_points

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = ["random_sample"]


def random_sample(points: PointLike, m: int, seed: int = 0) -> tuple[FloatArray, float]:
    """Uniform sample of ``m`` points (without replacement).

    Returns
    -------
    tuple
        ``(sample, weight_multiplier)`` as in
        :func:`repro.sampling.zorder_sample.zorder_sample`.
    """
    points = check_points(points)
    n = points.shape[0]
    m = int(m)
    if m < 1:
        raise InvalidParameterError(f"m must be >= 1, got {m}")
    if m >= n:
        return points.copy(), 1.0
    rng = np.random.default_rng(seed)
    indices = rng.choice(n, size=m, replace=False)
    return points[indices], n / m
