"""Dataset-sampling substrate (the Z-order competitor's machinery)."""

from repro.sampling.morton import morton_codes, interleave_bits
from repro.sampling.zorder_sample import zorder_sample, sample_size_for_eps
from repro.sampling.random_sample import random_sample
from repro.sampling.coreset import (
    Coreset,
    grid_coreset,
    coreset_for_delta,
    pyramid_cell_size,
    build_pyramid,
)

__all__ = [
    "morton_codes",
    "interleave_bits",
    "zorder_sample",
    "sample_size_for_eps",
    "random_sample",
    "Coreset",
    "grid_coreset",
    "coreset_for_delta",
    "pyramid_cell_size",
    "build_pyramid",
]
