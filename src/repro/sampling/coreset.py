"""Grid-based weighted coresets with a computable KDE error bound.

The deterministic half of the sampling camp (Phillips & Tai, "Improved
Coresets for Kernel Density Estimates"; Phillips, "ε-Samples of
Kernels"): snap points to a uniform grid, keep one weighted
representative per occupied cell (the cell's weighted centroid,
carrying the cell's total weight), and bound the resulting KDE error
through the kernel's Lipschitz constant in distance.

For the weighted density ``F(q) = w * sum_i w_i K(q, p_i)`` and the
coreset density ``F_c(q) = w * sum_j W_j K(q, c_j)`` with
``W_j = sum_{i in cell j} w_i`` and ``c_j`` the cell centroid,

    |F(q) - F_c(q)| <= w * L(gamma) * sum_i w_i ||p_i - c(p_i)||
                    =: delta_abs                       (for every q)

because ``|K(q, p) - K(q, p')| <= L * | d(q,p) - d(q,p') | <=
L * ||p - p'||`` by Lipschitz continuity and the triangle inequality.
``delta_abs`` is computed *exactly* from the realised displacements,
not from the worst-case cell diagonal, so the reported bound is as
tight as the construction allows.

Since every kernel profile is at most 1, the density never exceeds
``F_cap = w * sum_i w_i``; the normalised bound ``delta_z =
delta_abs / F_cap`` is the dimensionless error the serve layer folds
into a relative ``eps`` guarantee (``eps_effective = eps - delta_z``,
see docs/bounds.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Sequence

import numpy as np

from repro.core.kernels import get_kernel
from repro.errors import InvalidParameterError
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike

__all__ = [
    "Coreset",
    "grid_coreset",
    "coreset_for_delta",
    "pyramid_cell_size",
    "build_pyramid",
]

#: Grid-refinement iterations before giving up and returning the
#: identity coreset; each halves the cell size, so 60 covers any
#: float64-representable extent.
_MAX_REFINEMENTS = 60


@dataclass(frozen=True)
class Coreset:
    """A weighted point set standing in for a larger one.

    Attributes
    ----------
    points:
        Representative points, shape ``(m, d)``.
    weights:
        Per-representative multipliers ``W_j`` (each representative
        stands for ``W_j`` units of source weight); shape ``(m,)``.
        ``weights.sum()`` equals the source's total point weight, so
        the coreset density shares the exact tier's ``F_cap``.
    delta_abs:
        Deterministic bound on ``|F(q) - F_c(q)|`` valid for *every*
        query, in absolute density units (already includes the global
        ``weight`` multiplier).
    f_cap:
        Upper bound on both densities: ``weight * weights.sum()``.
    cell_size:
        Grid cell edge length used for the construction (0.0 for the
        identity coreset).
    n_source:
        Number of source points the coreset summarises.
    """

    points: "FloatArray"
    weights: "FloatArray"
    delta_abs: float
    f_cap: float
    cell_size: float
    n_source: int

    @property
    def delta_z(self) -> float:
        """Normalised error bound ``delta_abs / f_cap`` in ``[0, inf)``.

        This is the quantity folded into the relative ``eps``
        guarantee: a coreset render with ``eps_effective = eps -
        delta_z`` stays within the user's original ``eps`` of the
        exact density (docs/bounds.md).
        """
        return self.delta_abs / self.f_cap if self.f_cap > 0.0 else 0.0

    @property
    def m(self) -> int:
        """Number of representatives."""
        return int(self.points.shape[0])


def _identity_coreset(
    points: "FloatArray", weights: "FloatArray", weight: float
) -> Coreset:
    return Coreset(
        points=points.copy(),
        weights=weights.copy(),
        delta_abs=0.0,
        f_cap=float(weight * weights.sum()),
        cell_size=0.0,
        n_source=int(points.shape[0]),
    )


def grid_coreset(
    points: "FloatArray",
    kernel: "KernelLike",
    gamma: float,
    weight: float,
    *,
    cell_size: float,
    point_weights: "FloatArray | None" = None,
) -> Coreset:
    """One weighted representative per occupied grid cell.

    Parameters
    ----------
    points:
        Source points, shape ``(n, d)``.
    kernel, gamma:
        Kernel (name or instance) and bandwidth — only the kernel's
        :meth:`~repro.core.kernels.Kernel.lipschitz` constant enters
        the error bound.
    weight:
        Global per-point weight ``w`` of the density being
        approximated.
    cell_size:
        Edge length of the snapping grid, in data units.
    point_weights:
        Optional per-point multipliers ``w_i`` (default all-ones).

    Returns
    -------
    Coreset
        Representatives at the weighted centroid of each occupied
        cell, with the exact realised ``delta_abs``.
    """
    points = check_points(points)
    kernel = get_kernel(kernel)
    gamma = check_positive(gamma, "gamma")
    weight = check_positive(weight, "weight")
    cell_size = check_positive(cell_size, "cell_size")
    n = points.shape[0]
    if point_weights is None:
        point_weights = np.ones(n, dtype=np.float64)
    else:
        point_weights = np.ascontiguousarray(point_weights, dtype=np.float64)
        if point_weights.shape != (n,):
            raise InvalidParameterError(
                f"point_weights must have shape ({n},), got {point_weights.shape}"
            )
        if np.any(point_weights < 0.0):
            raise InvalidParameterError("point_weights must be non-negative")

    mins = points.min(axis=0)
    cells = np.floor((points - mins) / cell_size).astype(np.int64)
    # Flatten the d-dimensional cell index to one int64 key (mixed-radix
    # over the occupied index ranges) so np.unique runs on a 1-D array.
    spans = cells.max(axis=0) + 1
    key = np.zeros(n, dtype=np.int64)
    for dim in range(points.shape[1]):
        key = key * int(spans[dim]) + cells[:, dim]
    _, inverse = np.unique(key, return_inverse=True)
    m = int(inverse.max()) + 1 if n else 0
    if m >= n:
        return _identity_coreset(points, point_weights, weight)

    cell_weight = np.bincount(inverse, weights=point_weights, minlength=m)
    centroids = np.empty((m, points.shape[1]), dtype=np.float64)
    # Empty cells cannot occur (every index in ``inverse`` is hit), but
    # a cell whose points all have zero weight would divide 0/0 — fall
    # back to its unweighted mean so the representative stays in-cell.
    counts = np.bincount(inverse, minlength=m)
    safe_weight = np.where(cell_weight > 0.0, cell_weight, counts)
    for dim in range(points.shape[1]):
        weighted = np.bincount(
            inverse, weights=point_weights * points[:, dim], minlength=m
        )
        plain = np.bincount(inverse, weights=points[:, dim], minlength=m)
        centroids[:, dim] = (
            np.where(cell_weight > 0.0, weighted, plain) / safe_weight
        )

    displacement = np.linalg.norm(points - centroids[inverse], axis=1)
    lipschitz = kernel.lipschitz(gamma)
    delta_abs = float(weight * lipschitz * np.sum(point_weights * displacement))
    return Coreset(
        points=np.ascontiguousarray(centroids),
        weights=cell_weight,
        delta_abs=delta_abs,
        f_cap=float(weight * point_weights.sum()),
        cell_size=float(cell_size),
        n_source=n,
    )


def coreset_for_delta(
    points: "FloatArray",
    kernel: "KernelLike",
    gamma: float,
    weight: float,
    *,
    cell_size: float,
    delta_cap: float,
    point_weights: "FloatArray | None" = None,
) -> Coreset:
    """The coarsest grid coreset (starting at ``cell_size``, halving)
    whose normalised error ``delta_z`` is at most ``delta_cap``.

    Falls back to the identity coreset (``delta_abs = 0``) if halving
    stops compressing — the guarantee is never sacrificed for size.
    """
    delta_cap = check_positive(delta_cap, "delta_cap")
    size = check_positive(cell_size, "cell_size")
    for _ in range(_MAX_REFINEMENTS):
        coreset = grid_coreset(
            points, kernel, gamma, weight,
            cell_size=size, point_weights=point_weights,
        )
        if coreset.delta_z <= delta_cap:
            return coreset
        if coreset.m >= points.shape[0]:
            break
        size *= 0.5
    points = check_points(points)
    if point_weights is None:
        point_weights = np.ones(points.shape[0], dtype=np.float64)
    else:
        point_weights = np.ascontiguousarray(point_weights, dtype=np.float64)
    return _identity_coreset(points, point_weights, weight)


def pyramid_cell_size(extent: float, zoom: int, tile_px: int) -> float:
    """Sub-pixel grid cell size for a zoom level.

    At zoom ``z`` the world spans ``2^z`` tiles of ``tile_px`` pixels,
    so one pixel covers ``extent / (2^z * tile_px)`` data units; points
    snapped within one pixel are visually indistinguishable at that
    zoom, which is why the pyramid starts refinement there.
    """
    extent = check_positive(extent, "extent")
    if zoom < 0:
        raise InvalidParameterError(f"zoom must be >= 0, got {zoom}")
    if tile_px < 1:
        raise InvalidParameterError(f"tile_px must be >= 1, got {tile_px}")
    return extent / float((1 << int(zoom)) * int(tile_px))


def build_pyramid(
    points: "FloatArray",
    kernel: "KernelLike",
    gamma: float,
    weight: float,
    *,
    zooms: Sequence[int],
    tile_px: int,
    delta_cap: float,
    point_weights: "FloatArray | None" = None,
) -> Dict[int, Coreset]:
    """Per-zoom coresets for every zoom level in ``zooms``.

    Each zoom starts from the pixel-sized grid for that level
    (:func:`pyramid_cell_size` over the dataset's larger bounding-box
    span) and refines until ``delta_z <= delta_cap``, so low zooms get
    aggressive compression and the error budget stays uniform across
    the pyramid.
    """
    points = check_points(points)
    span = points.max(axis=0) - points.min(axis=0)
    extent = float(max(span.max(), np.finfo(np.float64).tiny))
    pyramid: Dict[int, Coreset] = {}
    for zoom in sorted(set(int(z) for z in zooms)):
        pyramid[zoom] = coreset_for_delta(
            points, kernel, gamma, weight,
            cell_size=pyramid_cell_size(extent, zoom, tile_px),
            delta_cap=delta_cap,
            point_weights=point_weights,
        )
    return pyramid
