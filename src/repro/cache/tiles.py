"""The tile service's multi-level density cache.

:class:`TileCache` layers three :class:`~repro.utils.cache.LRUCache`
instances, all keyed by ``(dataset_id, level, digest)`` tuples where the
digest is a canonical :class:`~repro.visual.request.RenderRequest`
fingerprint (or a :func:`partial_fingerprint` of it):

* **png** — the encoded tile bytes actually served. The digest is the
  full request fingerprint plus dataset version, colormap and tile XYZ,
  so any field that could change a served byte splits the key.
* **density** — the rendered value array *before* colour mapping. Its
  digest omits the colormap, so re-colouring a tile (day/night styles,
  τ restyling) is a cache hit that skips the whole refinement.
* **bounds** — the root-node ``(LB, UB)`` envelope of the tile's pixel
  batch. Its digest omits ε, τ, the operation *and* the colormap —
  root bounds depend only on dataset, method, kernel, bandwidth and
  tile geometry — so one evaluation is reused across every parameter
  sweep over the same viewport. A tile whose root envelope already
  decides the answer (all pixels ε-converged, or uniformly hot/cold at
  τ) is served without touching the refinement engine at all, and the
  short-circuit is bit-identical to the full render because the batch
  engine starts from exactly these root bounds and refines only
  still-active rows.

Every level is LRU with its own byte budget and optional TTL.
:meth:`TileCache.invalidate_dataset` drops all three levels for one
dataset id — the append-to-dataset hook — and all hit/miss/eviction
traffic is mirrored into a :class:`~repro.obs.metrics.MetricsRegistry`
as ``tile_cache.<level>.<event>`` counters when one is supplied.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Tuple, TypeVar

from repro.utils.cache import LRUCache

if TYPE_CHECKING:
    import time

    import numpy as np

    from repro._types import FloatArray
    from repro.obs.metrics import MetricsRegistry
    from repro.visual.request import RenderRequest

__all__ = ["TileCache", "partial_fingerprint"]

T = TypeVar("T")

#: Cache key: (dataset id, level name, request digest).
TileKey = Tuple[str, str, str]

#: Default L1 (PNG bytes) budget.
DEFAULT_PNG_BYTES = 64 * 1024 * 1024

#: Default budget for *each* of the two value-level caches.
DEFAULT_AUX_BYTES = 64 * 1024 * 1024


def partial_fingerprint(
    request: "RenderRequest",
    *,
    drop: Tuple[str, ...] = (),
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """A request fingerprint with selected payload fields removed.

    The value-level cache keys are *broader* than the full request
    fingerprint: the density level drops nothing but excludes the
    colormap from ``extra``, and the bounds level additionally drops
    ``op`` / ``eps`` / ``tau`` / ``atol`` / ``tile_size`` because root
    envelopes are parameter-independent. Dropping a field a level's
    value genuinely depends on would serve wrong tiles, so the drop
    lists live next to the code that proves independence
    (:meth:`TileCache` docstring), not with callers.
    """
    payload = request.fingerprint_payload()
    for field in drop:
        payload.pop(field, None)
    if extra:
        payload["extra"] = {str(key): extra[key] for key in sorted(extra)}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TileCache:
    """Three-level LRU cache (PNG bytes / density arrays / root bounds).

    Parameters
    ----------
    png_bytes:
        Byte budget of the encoded-tile level.
    aux_bytes:
        Byte budget of *each* value level (density and bounds).
    ttl_s:
        Optional TTL applied to every level.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; cache
        events are mirrored there as ``tile_cache.<level>.<event>``
        counters (hits, misses, inserts, evictions, expirations,
        invalidations).
    clock:
        Injectable monotonic clock, forwarded to the level caches.
    """

    LEVELS = ("png", "density", "bounds")

    def __init__(
        self,
        *,
        png_bytes: int = DEFAULT_PNG_BYTES,
        aux_bytes: int = DEFAULT_AUX_BYTES,
        ttl_s: Optional[float] = None,
        metrics: Optional["MetricsRegistry"] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        kwargs: Dict[str, Any] = {"ttl_s": ttl_s}
        if clock is not None:
            kwargs["clock"] = clock
        self._png: LRUCache[TileKey, bytes] = LRUCache(max_bytes=png_bytes, **kwargs)
        self._density: LRUCache[TileKey, "np.ndarray"] = LRUCache(
            max_bytes=aux_bytes, **kwargs
        )
        self._bounds: LRUCache[TileKey, Tuple["FloatArray", "FloatArray"]] = LRUCache(
            max_bytes=aux_bytes, **kwargs
        )
        self._levels: Dict[str, LRUCache[TileKey, Any]] = {
            "png": self._png,
            "density": self._density,
            "bounds": self._bounds,
        }
        self._metrics = metrics
        self._lock = threading.Lock()

    # -- metrics mirroring -------------------------------------------------

    def _tracked(self, level: str, operation: Callable[[], T]) -> T:
        """Run one cache operation, mirroring stat deltas into metrics.

        The lock serialises operation + delta so concurrent requests
        cannot double-count each other's events; cache operations are
        dictionary-cheap, so this is nowhere near the render hot path.
        """
        cache = self._levels[level]
        if self._metrics is None:
            return operation()
        with self._lock:
            before = cache.stats.as_dict()
            try:
                return operation()
            finally:
                after = cache.stats.as_dict()
                for field, value in after.items():
                    delta = value - before[field]
                    if delta:
                        self._metrics.counter(f"tile_cache.{level}.{field}").add(delta)

    # -- png level ---------------------------------------------------------

    def get_png(self, key: TileKey) -> Optional[bytes]:
        """Cached encoded tile bytes, or ``None``."""
        return self._tracked("png", lambda: self._png.get(key))

    def put_png(self, key: TileKey, data: bytes) -> None:
        """Cache encoded tile bytes."""
        self._tracked("png", lambda: self._png.put(key, data))

    # -- density level -----------------------------------------------------

    def get_density(self, key: TileKey) -> Optional["np.ndarray"]:
        """Cached pre-colormap value array, or ``None``."""
        return self._tracked("density", lambda: self._density.get(key))

    def put_density(self, key: TileKey, values: "np.ndarray") -> None:
        """Cache a rendered value array (density image or τ mask)."""
        self._tracked("density", lambda: self._density.put(key, values))

    # -- bounds level ------------------------------------------------------

    def get_bounds(
        self, key: TileKey
    ) -> Optional[Tuple["FloatArray", "FloatArray"]]:
        """Cached root-node ``(LB, UB)`` envelope, or ``None``."""
        return self._tracked("bounds", lambda: self._bounds.get(key))

    def put_bounds(
        self, key: TileKey, envelope: Tuple["FloatArray", "FloatArray"]
    ) -> None:
        """Cache a root-node ``(LB, UB)`` envelope."""
        self._tracked("bounds", lambda: self._bounds.put(key, envelope))

    # -- invalidation ------------------------------------------------------

    def invalidate_dataset(self, dataset_id: str) -> int:
        """Drop every level's entries for one dataset; returns the count.

        Called when a dataset is appended to: every cached artifact —
        bytes, value arrays, bound envelopes — was computed against the
        old point set, so all of it goes. (Keys also embed the dataset
        *version*, so even a racing reader that re-inserts a stale entry
        after this sweep can never serve it to a new-version request.)
        """
        dropped = 0
        for level in self.LEVELS:
            dropped += self._tracked(
                level,
                lambda level=level: self._levels[level].invalidate_where(
                    lambda key: key[0] == dataset_id
                ),
            )
        return dropped

    def clear(self) -> int:
        """Drop everything in every level; returns the entry count."""
        return sum(
            self._tracked(level, lambda level=level: self._levels[level].clear())
            for level in self.LEVELS
        )

    # -- introspection -----------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Per-level stats/occupancy snapshot, JSON-ready."""
        return {level: self._levels[level].as_dict() for level in self.LEVELS}

    def __repr__(self) -> str:
        occupancy = ", ".join(
            f"{level}={len(self._levels[level])}" for level in self.LEVELS
        )
        return f"TileCache({occupancy})"
