"""Multi-level render caches shared by the tile service."""

from repro.cache.tiles import TileCache, partial_fingerprint

__all__ = ["TileCache", "partial_fingerprint"]
