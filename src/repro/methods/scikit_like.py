"""Scikit — a faithful stand-in for Scikit-learn's ``KernelDensity``.

Scikit-learn answers εKDV with a kd-tree and node bounds derived from the
minimum/maximum distance to the node's bounding box (the paper's footnote
6 notes it uses a kd-tree by default), i.e. the same bound family as
aKDE. It supports relative *and* absolute tolerances; τKDV is not
offered. The class exists as a separate registry entry so the
experiments can report it as its own curve, as the paper does.
"""

from __future__ import annotations

from repro.methods.base import IndexedMethod

__all__ = ["ScikitLikeMethod"]


class ScikitLikeMethod(IndexedMethod):
    """Scikit-learn-style kd-tree εKDV (baseline bounds, eps-only)."""

    name = "scikit"
    provider_name = "baseline"
    supports_eps = True
    supports_tau = False
