"""The compared KDV methods (the paper's Table 6).

Each class couples the shared indexing framework with one camp's bound
functions (or, for EXACT / Z-order, no index at all):

========  ===========================================  =====  =====
name      technique                                    εKDV   τKDV
========  ===========================================  =====  =====
exact     sequential scan                              yes    yes
scikit    kd-tree, min/max-distance bounds             yes    no
zorder    Z-order curve sampling + EXACT on sample     yes*   no
akde      kd-tree, min/max-distance bounds             yes    no
tkdc      kd-tree, min/max-distance bounds + τ prune   no     yes
karl      kd-tree, linear bounds (Gaussian only)       yes    yes
quad      kd-tree, quadratic bounds (this paper)       yes    yes
========  ===========================================  =====  =====

(*) probabilistic guarantee; all others deterministic.
"""

from repro.methods.base import IndexedMethod, Method
from repro.methods.exact_method import ExactMethod
from repro.methods.akde import AKDEMethod
from repro.methods.tkdc import TKDCMethod
from repro.methods.scikit_like import ScikitLikeMethod
from repro.methods.karl import KARLMethod
from repro.methods.quad import QUADMethod
from repro.methods.zorder import ZOrderMethod
from repro.methods.registry import (
    METHOD_REGISTRY,
    available_methods,
    capability_table,
    create_method,
)

__all__ = [
    "Method",
    "IndexedMethod",
    "ExactMethod",
    "AKDEMethod",
    "TKDCMethod",
    "ScikitLikeMethod",
    "KARLMethod",
    "QUADMethod",
    "ZOrderMethod",
    "create_method",
    "available_methods",
    "capability_table",
    "METHOD_REGISTRY",
]
