"""Z-order — dataset sampling with probabilistic guarantee (Zheng et al.).

The sampling-camp εKDV competitor: pre-sample the dataset along the
Z-order curve to ``m = O(eps^-2 log delta^-1)`` points, re-weight, then
answer queries with EXACT on the sample. The guarantee is probabilistic
(``eps`` with probability ``1 - delta``), and — the paper's key point —
the per-pixel cost is still a full scan of the sample, which dominates at
small ``eps``.

The sample depends on ``eps``, so it is built lazily per requested
``eps`` and cached; building it is part of the online cost the first
time, matching how the paper accounts for it (the visualised dataset is
not known in advance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.exact import exact_density
from repro.methods.base import Method
from repro.sampling.zorder_sample import (
    DEFAULT_SIZE_CONSTANT,
    sample_size_for_eps,
    zorder_sample,
)
from repro.utils.cache import LRUCache
from repro.utils.validation import check_probability_like

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray

__all__ = ["ZOrderMethod"]

#: Distinct eps values whose samples are kept; sweeping more than this
#: evicts the least recently used sample (each can be several MB).
SAMPLE_CACHE_SIZE = 8


def _canonical_eps(eps: float) -> float:
    """Collapse float-noise eps keys (e.g. ``0.1 + 0.2`` vs ``0.3``).

    The sample size depends on ``eps`` only through
    :func:`~repro.sampling.zorder_sample.sample_size_for_eps`, which is
    insensitive to sub-ppb wiggle — but a raw-float dict key treats
    ``0.30000000000000004`` and ``0.3`` as different entries and builds
    (and keeps) two full samples. Rounding to 12 significant digits
    makes such keys collide while keeping genuinely different eps apart.
    """
    return float(f"{float(eps):.12g}")


class ZOrderMethod(Method):
    """Curve-stratified sampling + EXACT on the sample (εKDV only).

    Parameters
    ----------
    delta:
        Failure probability of the error guarantee.
    size_constant:
        Leading constant of the sample-size bound; lower is faster but
        weakens the guarantee constant.
    bits:
        Morton-code quantisation bits.
    """

    name = "zorder"
    supports_eps = True
    supports_tau = False
    deterministic_guarantee = False

    def __init__(
        self,
        delta: float = 0.1,
        size_constant: float = DEFAULT_SIZE_CONSTANT,
        bits: int = 16,
    ) -> None:
        super().__init__()
        self.delta = check_probability_like(delta, "delta")
        self.size_constant = float(size_constant)
        self.bits = int(bits)
        self._samples: LRUCache[float, Tuple[FloatArray, float]] = LRUCache(
            max_entries=SAMPLE_CACHE_SIZE
        )

    def _fit_impl(self) -> None:
        if self.point_weights is not None:
            from repro.errors import UnsupportedOperationError

            raise UnsupportedOperationError(
                "zorder pre-sampling does not support per-point input weights; "
                "weight the sample it produces instead"
            )
        self._samples = LRUCache(max_entries=SAMPLE_CACHE_SIZE)

    def sample_for(self, eps: float) -> tuple[FloatArray, float]:
        """The ``(sample, weight_multiplier)`` pair for a given ``eps``.

        Cached per canonicalised ``eps`` (12 significant digits) in a
        shared :class:`~repro.utils.cache.LRUCache` of at most
        :data:`SAMPLE_CACHE_SIZE` entries — the same cache utility the
        tile service uses, instead of a second hand-rolled LRU.
        """
        self._require_fitted()
        eps = _canonical_eps(check_probability_like(eps, "eps"))
        cached = self._samples.get(eps)
        if cached is None:
            m = sample_size_for_eps(
                self.points.shape[0], eps, self.delta, constant=self.size_constant
            )
            cached = zorder_sample(self.points, m, bits=self.bits)
            self._samples.put(eps, cached)
        return cached

    def _batch_eps_impl(self, queries: FloatArray, eps: float, atol: float) -> FloatArray:
        sample, multiplier = self.sample_for(eps)
        return exact_density(
            sample, queries, self.kernel, self.gamma, self.weight * multiplier
        )

    def _batch_tau_impl(self, queries: FloatArray, tau: float) -> BoolArray:  # pragma: no cover - guarded by base
        raise AssertionError("unreachable: zorder does not support tau")
