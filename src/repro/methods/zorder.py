"""Z-order — dataset sampling with probabilistic guarantee (Zheng et al.).

The sampling-camp εKDV competitor: pre-sample the dataset along the
Z-order curve to ``m = O(eps^-2 log delta^-1)`` points, re-weight, then
answer queries with EXACT on the sample. The guarantee is probabilistic
(``eps`` with probability ``1 - delta``), and — the paper's key point —
the per-pixel cost is still a full scan of the sample, which dominates at
small ``eps``.

The sample depends on ``eps``, so it is built lazily per requested
``eps`` and cached; building it is part of the online cost the first
time, matching how the paper accounts for it (the visualised dataset is
not known in advance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.exact import exact_density
from repro.methods.base import Method
from repro.sampling.zorder_sample import (
    DEFAULT_SIZE_CONSTANT,
    sample_size_for_eps,
    zorder_sample,
)
from repro.utils.validation import check_probability_like

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray

__all__ = ["ZOrderMethod"]


class ZOrderMethod(Method):
    """Curve-stratified sampling + EXACT on the sample (εKDV only).

    Parameters
    ----------
    delta:
        Failure probability of the error guarantee.
    size_constant:
        Leading constant of the sample-size bound; lower is faster but
        weakens the guarantee constant.
    bits:
        Morton-code quantisation bits.
    """

    name = "zorder"
    supports_eps = True
    supports_tau = False
    deterministic_guarantee = False

    def __init__(
        self,
        delta: float = 0.1,
        size_constant: float = DEFAULT_SIZE_CONSTANT,
        bits: int = 16,
    ) -> None:
        super().__init__()
        self.delta = check_probability_like(delta, "delta")
        self.size_constant = float(size_constant)
        self.bits = int(bits)
        self._samples: dict[float, tuple[FloatArray, float]] = {}

    def _fit_impl(self) -> None:
        if self.point_weights is not None:
            from repro.errors import UnsupportedOperationError

            raise UnsupportedOperationError(
                "zorder pre-sampling does not support per-point input weights; "
                "weight the sample it produces instead"
            )
        self._samples = {}

    def sample_for(self, eps: float) -> tuple[FloatArray, float]:
        """The ``(sample, weight_multiplier)`` pair for a given ``eps``."""
        self._require_fitted()
        eps = check_probability_like(eps, "eps")
        cached = self._samples.get(eps)
        if cached is None:
            m = sample_size_for_eps(
                self.points.shape[0], eps, self.delta, constant=self.size_constant
            )
            cached = zorder_sample(self.points, m, bits=self.bits)
            self._samples[eps] = cached
        return cached

    def _batch_eps_impl(self, queries: FloatArray, eps: float, atol: float) -> FloatArray:
        sample, multiplier = self.sample_for(eps)
        return exact_density(
            sample, queries, self.kernel, self.gamma, self.weight * multiplier
        )

    def _batch_tau_impl(self, queries: FloatArray, tau: float) -> BoolArray:  # pragma: no cover - guarded by base
        raise AssertionError("unreachable: zorder does not support tau")
