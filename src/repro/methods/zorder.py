"""Z-order — dataset sampling, heuristic or guarantee-carrying.

The sampling-camp εKDV competitor, in two modes:

* ``mode="sample"`` (default, Zheng et al.): pre-sample the dataset
  along the Z-order curve to ``m = O(eps^-2 log delta^-1)`` points,
  re-weight, then answer queries with EXACT on the sample. The
  guarantee is probabilistic (``eps`` with probability ``1 - delta``),
  and — the paper's key point — the per-pixel cost is still a full
  scan of the sample, which dominates at small ``eps``.
* ``mode="coreset"`` (Phillips & Tai): replace the random sample with
  a grid-based weighted coreset
  (:func:`repro.sampling.coreset.coreset_for_delta`) whose KDE error
  is *deterministically* bounded: the normalised error ``delta_z =
  delta_abs / F_cap`` is driven below the requested ``eps``, so
  ``|F_c(q) - F(q)| <= eps * F_cap`` for every query — an absolute
  guarantee (relative to the density ceiling ``F_cap``) that holds
  with certainty, unlike the sample mode's probabilistic one. Note
  it is a different contract from QUAD's relative ``(1 ± eps) F``
  bound, so ``deterministic_guarantee`` stays ``False``.

The sample/coreset depends on ``eps``, so it is built lazily per
requested ``eps`` and cached; building it is part of the online cost
the first time, matching how the paper accounts for it (the visualised
dataset is not known in advance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.exact import exact_density
from repro.methods.base import Method
from repro.sampling.coreset import Coreset, coreset_for_delta
from repro.sampling.zorder_sample import (
    DEFAULT_SIZE_CONSTANT,
    sample_size_for_eps,
    zorder_sample,
)
from repro.utils.cache import LRUCache
from repro.utils.validation import check_probability_like

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray

__all__ = ["ZOrderMethod"]

#: Distinct eps values whose samples are kept; sweeping more than this
#: evicts the least recently used sample (each can be several MB).
SAMPLE_CACHE_SIZE = 8


def _canonical_eps(eps: float) -> float:
    """Collapse float-noise eps keys (e.g. ``0.1 + 0.2`` vs ``0.3``).

    The sample size depends on ``eps`` only through
    :func:`~repro.sampling.zorder_sample.sample_size_for_eps`, which is
    insensitive to sub-ppb wiggle — but a raw-float dict key treats
    ``0.30000000000000004`` and ``0.3`` as different entries and builds
    (and keeps) two full samples. Rounding to 12 significant digits
    makes such keys collide while keeping genuinely different eps apart.
    """
    return float(f"{float(eps):.12g}")


class ZOrderMethod(Method):
    """Curve-stratified sampling + EXACT on the sample (εKDV only).

    Parameters
    ----------
    delta:
        Failure probability of the error guarantee (``mode="sample"``
        only; the coreset mode's bound is deterministic).
    size_constant:
        Leading constant of the sample-size bound; lower is faster but
        weakens the guarantee constant (``mode="sample"`` only).
    bits:
        Morton-code quantisation bits (``mode="sample"`` only).
    mode:
        ``"sample"`` (probabilistic Z-order sampling, the default) or
        ``"coreset"`` (deterministic grid-coreset bound — see the
        module docstring).
    """

    name = "zorder"
    supports_eps = True
    supports_tau = False
    deterministic_guarantee = False

    def __init__(
        self,
        delta: float = 0.1,
        size_constant: float = DEFAULT_SIZE_CONSTANT,
        bits: int = 16,
        mode: str = "sample",
    ) -> None:
        super().__init__()
        if str(mode) not in ("sample", "coreset"):
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"mode must be 'sample' or 'coreset', got {mode!r}"
            )
        self.delta = check_probability_like(delta, "delta")
        self.size_constant = float(size_constant)
        self.bits = int(bits)
        self.mode = str(mode)
        self._samples: LRUCache[float, Tuple[FloatArray, float]] = LRUCache(
            max_entries=SAMPLE_CACHE_SIZE
        )
        self._coresets: LRUCache[float, Coreset] = LRUCache(
            max_entries=SAMPLE_CACHE_SIZE
        )

    def _fit_impl(self) -> None:
        if self.point_weights is not None:
            from repro.errors import UnsupportedOperationError

            raise UnsupportedOperationError(
                "zorder pre-sampling does not support per-point input weights; "
                "weight the sample it produces instead"
            )
        self._samples = LRUCache(max_entries=SAMPLE_CACHE_SIZE)
        self._coresets = LRUCache(max_entries=SAMPLE_CACHE_SIZE)

    def sample_for(self, eps: float) -> tuple[FloatArray, float]:
        """The ``(sample, weight_multiplier)`` pair for a given ``eps``.

        Cached per canonicalised ``eps`` (12 significant digits) in a
        shared :class:`~repro.utils.cache.LRUCache` of at most
        :data:`SAMPLE_CACHE_SIZE` entries — the same cache utility the
        tile service uses, instead of a second hand-rolled LRU.
        """
        self._require_fitted()
        eps = _canonical_eps(check_probability_like(eps, "eps"))
        cached = self._samples.get(eps)
        if cached is None:
            m = sample_size_for_eps(
                self.points.shape[0], eps, self.delta, constant=self.size_constant
            )
            cached = zorder_sample(self.points, m, bits=self.bits)
            self._samples.put(eps, cached)
        return cached

    def coreset_for(self, eps: float) -> Coreset:
        """The grid coreset whose normalised error is at most ``eps``.

        ``mode="coreset"`` only. The returned
        :class:`~repro.sampling.coreset.Coreset` carries the *achieved*
        bound (``delta_z <= eps``, usually much smaller), so callers
        can report the realised guarantee. Cached per canonicalised
        ``eps`` like :meth:`sample_for`.
        """
        self._require_fitted()
        eps = _canonical_eps(check_probability_like(eps, "eps"))
        cached = self._coresets.get(eps)
        if cached is None:
            span = float((self.points.max(axis=0) - self.points.min(axis=0)).max())
            # Start one power of two below the full span and let
            # coreset_for_delta halve down to the requested bound.
            initial = max(span * 0.5, 1e-300)
            cached = coreset_for_delta(
                self.points, self.kernel, self.gamma, self.weight,
                cell_size=initial, delta_cap=eps,
            )
            self._coresets.put(eps, cached)
        return cached

    def _batch_eps_impl(self, queries: FloatArray, eps: float, atol: float) -> FloatArray:
        if self.mode == "coreset":
            coreset = self.coreset_for(eps)
            return exact_density(
                coreset.points, queries, self.kernel, self.gamma, self.weight,
                point_weights=coreset.weights,
            )
        sample, multiplier = self.sample_for(eps)
        return exact_density(
            sample, queries, self.kernel, self.gamma, self.weight * multiplier
        )

    def _batch_tau_impl(self, queries: FloatArray, tau: float) -> BoolArray:  # pragma: no cover - guarded by base
        raise AssertionError("unreachable: zorder does not support tau")
