"""KARL — linear-bound kernel aggregation (Chan et al., ICDE 2019).

The state of the art QUAD improves upon: chord/tangent linear bounds of
the exponential profile, O(d) per node. Gaussian kernel only — for the
distance-based kernels of Table 4 its aggregate ``sum dist`` does not
admit an O(d) evaluation (the paper's Section 5.1) — but it supports
both εKDV and τKDV.
"""

from __future__ import annotations

from repro.methods.base import IndexedMethod

__all__ = ["KARLMethod"]


class KARLMethod(IndexedMethod):
    """kd-tree ε/τKDV with KARL's linear bounds (Gaussian only)."""

    name = "karl"
    provider_name = "linear"
    supports_eps = True
    supports_tau = True
    supported_kernels = frozenset({"gaussian"})
