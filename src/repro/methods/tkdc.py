"""tKDC — threshold-based kernel density classification (Gan & Bailis,
SIGMOD 2017).

The τKDV specialist: the same min/max-distance bounds as aKDE, but the
refinement loop stops the moment the threshold τ separates the global
lower/upper bounds, which prunes far more aggressively than running an
εKDV query to completion. τKDV only (Table 6).
"""

from __future__ import annotations

from repro.methods.base import IndexedMethod

__all__ = ["TKDCMethod"]


class TKDCMethod(IndexedMethod):
    """kd-tree τKDV with min/max-distance bounds and threshold pruning."""

    name = "tkdc"
    provider_name = "baseline"
    supports_eps = False
    supports_tau = True
