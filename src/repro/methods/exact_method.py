"""EXACT — the sequential-scan reference method.

No index, no pruning: every query scans every point (vectorised in
chunks). It answers both operations trivially — εKDV by returning the
exact value, τKDV by comparing it to the threshold — and serves as the
ground truth for the quality experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.exact import exact_density
from repro.methods.base import Method

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray, PointLike

__all__ = ["ExactMethod"]


class ExactMethod(Method):
    """Brute-force exact evaluation (the paper's EXACT)."""

    name = "exact"
    supports_eps = True
    supports_tau = True

    def _fit_impl(self) -> None:
        pass  # no offline stage

    def density(self, queries: PointLike) -> FloatArray:
        """Exact densities for a batch of queries."""
        self._require_fitted()
        return exact_density(
            self.points,
            queries,
            self.kernel,
            self.gamma,
            self.weight,
            point_weights=self.point_weights,
        )

    def _batch_eps_impl(self, queries: FloatArray, eps: float, atol: float) -> FloatArray:
        # The exact value satisfies every eps trivially; the parameters
        # are accepted for interface compatibility.
        return self.density(queries)

    def _batch_tau_impl(self, queries: FloatArray, tau: float) -> BoolArray:
        return self.density(queries) >= float(tau)
