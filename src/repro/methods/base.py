"""Method abstraction: fit points once, answer εKDV / τKDV queries.

A :class:`Method` mirrors how the paper structures its comparison — an
offline stage (index build / pre-sampling) followed by an online stage
(per-pixel queries). Capability flags encode Table 6; asking a method
for an operation or kernel it does not support raises immediately rather
than silently falling back.

With ``REPRO_CHECK_INVARIANTS=1`` (see :mod:`repro.contracts`) every
εKDV batch of a method with :attr:`Method.deterministic_guarantee` is
additionally cross-checked against the brute-force exact density — the
end-to-end ``(1 ± eps)`` contract — at an extra O(n·m) cost per batch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.contracts.runtime import check_eps_agreement, invariants_enabled
from repro.core.batch_engine import BatchRefinementEngine
from repro.obs.runtime import current_tracer
from repro.core.engine import RefinementEngine
from repro.core.kernels import Kernel, get_kernel
from repro.errors import (
    NotFittedError,
    UnsupportedKernelError,
    UnsupportedOperationError,
)
from repro.index.kdtree import DEFAULT_LEAF_SIZE, KDTree
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray, KernelLike, PointLike
    from repro.core.engine import BoundTrace, QueryStats
    from repro.index.balltree import BallTree

__all__ = ["Method", "IndexedMethod"]


class Method(ABC):
    """A KDV solution method (offline fit + online queries).

    Class attributes
    ----------------
    name:
        Registry name.
    supports_eps / supports_tau:
        Which operations the method implements (the paper's Table 6).
    supported_kernels:
        Frozenset of kernel names, or ``None`` for all kernels.
    deterministic_guarantee:
        ``False`` only for the sampling camp (Z-order).
    """

    name: str = "abstract"
    supports_eps: bool = True
    supports_tau: bool = True
    supported_kernels: frozenset[str] | None = None
    deterministic_guarantee: bool = True

    def __init__(self) -> None:
        self.points: FloatArray | None = None
        self.kernel: Kernel | None = None
        self.gamma: float | None = None
        self.weight: float | None = None
        self.point_weights: FloatArray | None = None

    # -- lifecycle ---------------------------------------------------------

    def fit(
        self,
        points: PointLike,
        kernel: KernelLike = "gaussian",
        gamma: float = 1.0,
        weight: float = 1.0,
        point_weights: PointLike | None = None,
    ) -> Method:
        """Run the offline stage on a dataset.

        Parameters
        ----------
        points:
            Data points of shape ``(n, d)``.
        kernel:
            Kernel name or instance.
        gamma:
            Positive kernel bandwidth parameter.
        weight:
            Global per-point weight ``w``.
        point_weights:
            Optional non-negative per-point weights ``w_i`` (the
            re-weighted-sample form of the paper's footnote 5). Methods
            that cannot honour them raise
            :class:`~repro.errors.UnsupportedOperationError`.

        Returns
        -------
        Method
            ``self``, for chaining.
        """
        resolved = get_kernel(kernel)
        if self.supported_kernels is not None and resolved.name not in self.supported_kernels:
            supported = ", ".join(sorted(self.supported_kernels))
            raise UnsupportedKernelError(
                f"method {self.name!r} supports only [{supported}] kernels, "
                f"got {resolved.name!r}"
            )
        self.points = check_points(points)
        self.kernel = resolved
        self.gamma = check_positive(gamma, "gamma")
        self.weight = check_positive(weight, "weight")
        if point_weights is not None:
            self.point_weights = np.asarray(point_weights, dtype=np.float64).reshape(-1)
        else:
            self.point_weights = None
        self._fit_impl()
        return self

    @abstractmethod
    def _fit_impl(self) -> None:
        """Method-specific offline work (index build, sampling, ...)."""

    def _require_fitted(self) -> None:
        if self.points is None:
            raise NotFittedError(f"method {self.name!r} must be fitted before querying")

    def _require(self, operation: str) -> None:
        self._require_fitted()
        supported = self.supports_eps if operation == "eps" else self.supports_tau
        if not supported:
            raise UnsupportedOperationError(
                f"method {self.name!r} does not support {operation}KDV "
                "(see the paper's Table 6)"
            )

    # -- online queries ------------------------------------------------------

    def batch_eps(self, queries: PointLike, eps: float, *, atol: float = 0.0) -> FloatArray:
        """εKDV over many query points; returns densities ``(m,)``."""
        self._require("eps")
        queries = check_points(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        tracer = current_tracer()
        if tracer is not None:
            with tracer.method_scope(self.name):
                out = self._batch_eps_impl(queries, eps, atol)
        else:
            out = self._batch_eps_impl(queries, eps, atol)
        if invariants_enabled() and self.deterministic_guarantee:
            self._check_eps_agreement(queries, out, eps, atol)
        return out

    def batch_tau(self, queries: PointLike, tau: float) -> BoolArray:
        """τKDV over many query points; returns booleans ``(m,)``."""
        self._require("tau")
        queries = check_points(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        tracer = current_tracer()
        if tracer is not None:
            with tracer.method_scope(self.name):
                return self._batch_tau_impl(queries, tau)
        return self._batch_tau_impl(queries, tau)

    def query_eps(self, query: PointLike, eps: float, *, atol: float = 0.0) -> float:
        """εKDV for a single point."""
        return float(self.batch_eps(np.atleast_2d(query), eps, atol=atol)[0])

    def query_tau(self, query: PointLike, tau: float) -> bool:
        """τKDV for a single point."""
        return bool(self.batch_tau(np.atleast_2d(query), tau)[0])

    @abstractmethod
    def _batch_eps_impl(self, queries: FloatArray, eps: float, atol: float) -> FloatArray:
        """Answer validated εKDV batches."""

    @abstractmethod
    def _batch_tau_impl(self, queries: FloatArray, tau: float) -> BoolArray:
        """Answer validated τKDV batches."""

    def _check_eps_agreement(
        self, queries: FloatArray, returned: FloatArray, eps: float, atol: float
    ) -> None:
        """Cross-check a batch answer against the exact density.

        Only runs under :func:`repro.contracts.invariants_enabled` for
        methods advertising a deterministic guarantee — it costs a full
        O(n·m) brute-force scan per batch.
        """
        from repro.core.exact import exact_density

        assert self.points is not None and self.kernel is not None
        assert self.gamma is not None and self.weight is not None
        exact = np.atleast_1d(
            exact_density(
                self.points,
                queries,
                kernel=self.kernel,
                gamma=self.gamma,
                weight=self.weight,
                point_weights=self.point_weights,
            )
        )
        for index in range(queries.shape[0]):
            check_eps_agreement(
                float(returned[index]),
                float(exact[index]),
                eps,
                atol,
                method=self.name,
                query=queries[index].tolist(),
            )

    def __repr__(self) -> str:
        fitted = "fitted" if self.points is not None else "unfitted"
        return f"{type(self).__name__}({fitted})"


class IndexedMethod(Method):
    """Shared implementation of the bound-based camp.

    Subclasses set :attr:`provider_name` to pick their bound functions;
    everything else — tree build, refinement loop, statistics — is
    identical across aKDE, tKDC, KARL and QUAD, matching the paper's
    "same framework, different bounds" experimental design.
    """

    provider_name: str = "baseline"

    def __init__(
        self,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        ordering: str = "gap",
        index: str = "kd",
        engine: str = "scalar",
        backend: str | None = None,
    ) -> None:
        super().__init__()
        from repro.errors import InvalidParameterError

        if index not in ("kd", "ball"):
            raise InvalidParameterError(f"index must be 'kd' or 'ball', got {index!r}")
        if engine not in ("scalar", "batch"):
            raise InvalidParameterError(
                f"engine must be 'scalar' or 'batch', got {engine!r}"
            )
        self.leaf_size = leaf_size
        self.ordering = ordering
        self.index = index
        self.engine_mode = engine
        # Compute-backend selection for the batched engines (None defers
        # to REPRO_BACKEND / the numpy reference); the scalar engine is
        # backend-independent by design.
        self.backend = backend
        self.provider_options: dict[str, Any] = {}
        self.tree: KDTree | BallTree | None = None
        self.engine: RefinementEngine | None = None
        self.batch_engine: BatchRefinementEngine | None = None
        # Cached process-pool tile executors, keyed by (workers, backend).
        # Lazily built by process_executor(); invalidated on refit since
        # the worker processes hold a snapshot of the fitted tree.
        self._process_executors: dict[tuple[int, str | None], Any] = {}

    def _fit_impl(self) -> None:
        from repro.core.bounds import make_bound_provider

        self.close_executors()
        if self.index == "ball":
            from repro.index.balltree import BallTree

            self.tree = BallTree(
                self.points, leaf_size=self.leaf_size, weights=self.point_weights
            )
        else:
            self.tree = KDTree(
                self.points, leaf_size=self.leaf_size, weights=self.point_weights
            )
        provider = make_bound_provider(
            self.provider_name,
            self.kernel,
            self.gamma,
            self.weight,
            **self.provider_options,
        )
        self.engine = RefinementEngine(self.tree, provider, ordering=self.ordering)
        # The batched engine shares the scalar engine's stats object, so
        # ``method.stats`` is one unified work ledger regardless of which
        # refinement schedule answered a query.
        self.batch_engine = BatchRefinementEngine(
            self.tree,
            provider,
            ordering=self.ordering,
            stats=self.engine.stats,
            backend=self.backend,
        )

    @property
    def stats(self) -> QueryStats:
        """Engine counters (iterations, node/leaf evaluations)."""
        self._require_fitted()
        assert self.engine is not None
        return self.engine.stats

    def make_batch_engine(
        self,
        stats: QueryStats | None = None,
        backend: str | None = None,
    ) -> BatchRefinementEngine:
        """A fresh batched engine over this method's tree and bounds.

        Each call returns an independent engine accumulating into its
        own ``stats`` (or the one given) — the building block for
        tile-parallel rendering, where every worker refines with a
        private engine and the owner merges the per-worker stats.
        ``backend`` overrides this method's compute backend for the new
        engine (``None`` inherits it).
        """
        self._require_fitted()
        engine = self.engine
        assert engine is not None
        return BatchRefinementEngine(
            engine.tree,
            engine.provider,
            ordering=self.ordering,
            stats=stats,
            backend=self.backend if backend is None else backend,
        )

    def process_executor(self, workers: int, backend: str | None = None) -> Any:
        """The cached process-pool tile executor for this fitted method.

        Builds (and caches) a
        :class:`~repro.visual.executors.ProcessTileExecutor` whose
        worker processes attach the fitted tree from shared memory —
        one publication feeds every render until the method is refitted
        or :meth:`close_executors` runs. Keyed by ``(workers, backend)``
        so a renderer can mix configurations without thrashing pools.
        """
        self._require_fitted()
        key = (int(workers), backend if backend is not None else self.backend)
        pool = self._process_executors.get(key)
        if pool is None or pool.closed:
            from repro.visual.executors import ProcessTileExecutor

            pool = ProcessTileExecutor(self, workers=key[0], backend=key[1])
            self._process_executors[key] = pool
        return pool

    def executor_health(self) -> list[dict[str, Any]]:
        """Liveness snapshots of the cached process pools (for ``/stats``).

        One dict per cached :class:`ProcessTileExecutor` — worker count,
        break/rebuild counters, supervisor state — so the tile service
        can surface pool supervision without reaching into executor
        internals. Empty when no process pool has been built.
        """
        return [pool.health() for pool in self._process_executors.values()]

    def close_executors(self) -> None:
        """Shut down cached process pools and free their shared memory.

        Idempotent; called automatically on refit. Anyone embedding a
        long-lived method (the serve registry) must call this — or rely
        on the executors' own finalizers — before dropping the method.
        """
        executors, self._process_executors = self._process_executors, {}
        for pool in executors.values():
            pool.close()

    def _batch_eps_impl(self, queries: FloatArray, eps: float, atol: float) -> FloatArray:
        if self.engine_mode == "batch":
            batch_engine = self.batch_engine
            assert batch_engine is not None
            return batch_engine.query_eps_batch(queries, eps, atol=atol)
        engine = self.engine
        assert engine is not None
        out = np.empty(queries.shape[0], dtype=np.float64)
        for index in range(queries.shape[0]):
            out[index] = engine.query_eps(queries[index], eps, atol=atol)
        return out

    def _batch_tau_impl(self, queries: FloatArray, tau: float) -> BoolArray:
        if self.engine_mode == "batch":
            batch_engine = self.batch_engine
            assert batch_engine is not None
            return batch_engine.query_tau_batch(queries, tau)
        engine = self.engine
        assert engine is not None
        out = np.empty(queries.shape[0], dtype=bool)
        for index in range(queries.shape[0]):
            out[index] = engine.query_tau(queries[index], tau)
        return out

    def query_eps_traced(
        self, query: PointLike, eps: float, *, atol: float = 0.0
    ) -> tuple[float, BoundTrace]:
        """εKDV for one point, returning ``(value, BoundTrace)``.

        Instrumentation for the tightness case study (Figure 18).
        """
        from repro.core.engine import BoundTrace

        self._require("eps")
        assert self.engine is not None
        trace = BoundTrace()
        value = self.engine.query_eps(
            np.asarray(query, dtype=np.float64), eps, atol=atol, trace=trace
        )
        return value, trace
