"""Method abstraction: fit points once, answer εKDV / τKDV queries.

A :class:`Method` mirrors how the paper structures its comparison — an
offline stage (index build / pre-sampling) followed by an online stage
(per-pixel queries). Capability flags encode Table 6; asking a method
for an operation or kernel it does not support raises immediately rather
than silently falling back.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.engine import RefinementEngine
from repro.core.kernels import get_kernel
from repro.errors import (
    NotFittedError,
    UnsupportedKernelError,
    UnsupportedOperationError,
)
from repro.index.kdtree import DEFAULT_LEAF_SIZE, KDTree
from repro.utils.validation import check_points, check_positive

__all__ = ["Method", "IndexedMethod"]


class Method(ABC):
    """A KDV solution method (offline fit + online queries).

    Class attributes
    ----------------
    name:
        Registry name.
    supports_eps / supports_tau:
        Which operations the method implements (the paper's Table 6).
    supported_kernels:
        Frozenset of kernel names, or ``None`` for all kernels.
    deterministic_guarantee:
        ``False`` only for the sampling camp (Z-order).
    """

    name = "abstract"
    supports_eps = True
    supports_tau = True
    supported_kernels = None
    deterministic_guarantee = True

    def __init__(self):
        self.points = None
        self.kernel = None
        self.gamma = None
        self.weight = None
        self.point_weights = None

    # -- lifecycle ---------------------------------------------------------

    def fit(self, points, kernel="gaussian", gamma=1.0, weight=1.0, point_weights=None):
        """Run the offline stage on a dataset.

        Parameters
        ----------
        points:
            Data points of shape ``(n, d)``.
        kernel:
            Kernel name or instance.
        gamma:
            Positive kernel bandwidth parameter.
        weight:
            Global per-point weight ``w``.
        point_weights:
            Optional non-negative per-point weights ``w_i`` (the
            re-weighted-sample form of the paper's footnote 5). Methods
            that cannot honour them raise
            :class:`~repro.errors.UnsupportedOperationError`.

        Returns
        -------
        Method
            ``self``, for chaining.
        """
        kernel = get_kernel(kernel)
        if self.supported_kernels is not None and kernel.name not in self.supported_kernels:
            supported = ", ".join(sorted(self.supported_kernels))
            raise UnsupportedKernelError(
                f"method {self.name!r} supports only [{supported}] kernels, "
                f"got {kernel.name!r}"
            )
        self.points = check_points(points)
        self.kernel = kernel
        self.gamma = check_positive(gamma, "gamma")
        self.weight = check_positive(weight, "weight")
        if point_weights is not None:
            import numpy as np

            point_weights = np.asarray(point_weights, dtype=np.float64).reshape(-1)
        self.point_weights = point_weights
        self._fit_impl()
        return self

    @abstractmethod
    def _fit_impl(self):
        """Method-specific offline work (index build, sampling, ...)."""

    def _require_fitted(self):
        if self.points is None:
            raise NotFittedError(f"method {self.name!r} must be fitted before querying")

    def _require(self, operation):
        self._require_fitted()
        supported = self.supports_eps if operation == "eps" else self.supports_tau
        if not supported:
            raise UnsupportedOperationError(
                f"method {self.name!r} does not support {operation}KDV "
                "(see the paper's Table 6)"
            )

    # -- online queries ------------------------------------------------------

    def batch_eps(self, queries, eps, *, atol=0.0):
        """εKDV over many query points; returns densities ``(m,)``."""
        self._require("eps")
        queries = check_points(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        return self._batch_eps_impl(queries, eps, atol)

    def batch_tau(self, queries, tau):
        """τKDV over many query points; returns booleans ``(m,)``."""
        self._require("tau")
        queries = check_points(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        return self._batch_tau_impl(queries, tau)

    def query_eps(self, query, eps, *, atol=0.0):
        """εKDV for a single point."""
        return float(self.batch_eps(np.atleast_2d(query), eps, atol=atol)[0])

    def query_tau(self, query, tau):
        """τKDV for a single point."""
        return bool(self.batch_tau(np.atleast_2d(query), tau)[0])

    @abstractmethod
    def _batch_eps_impl(self, queries, eps, atol):
        """Answer validated εKDV batches."""

    @abstractmethod
    def _batch_tau_impl(self, queries, tau):
        """Answer validated τKDV batches."""

    def __repr__(self):
        fitted = "fitted" if self.points is not None else "unfitted"
        return f"{type(self).__name__}({fitted})"


class IndexedMethod(Method):
    """Shared implementation of the bound-based camp.

    Subclasses set :attr:`provider_name` to pick their bound functions;
    everything else — tree build, refinement loop, statistics — is
    identical across aKDE, tKDC, KARL and QUAD, matching the paper's
    "same framework, different bounds" experimental design.
    """

    provider_name = "baseline"

    def __init__(self, leaf_size=DEFAULT_LEAF_SIZE, ordering="gap", index="kd"):
        super().__init__()
        if index not in ("kd", "ball"):
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(f"index must be 'kd' or 'ball', got {index!r}")
        self.leaf_size = leaf_size
        self.ordering = ordering
        self.index = index
        self.provider_options = {}
        self.tree = None
        self.engine = None

    def _fit_impl(self):
        from repro.core.bounds import make_bound_provider

        if self.index == "ball":
            from repro.index.balltree import BallTree

            self.tree = BallTree(
                self.points, leaf_size=self.leaf_size, weights=self.point_weights
            )
        else:
            self.tree = KDTree(
                self.points, leaf_size=self.leaf_size, weights=self.point_weights
            )
        provider = make_bound_provider(
            self.provider_name,
            self.kernel,
            self.gamma,
            self.weight,
            **self.provider_options,
        )
        self.engine = RefinementEngine(self.tree, provider, ordering=self.ordering)

    @property
    def stats(self):
        """Engine counters (iterations, node/leaf evaluations)."""
        self._require_fitted()
        return self.engine.stats

    def _batch_eps_impl(self, queries, eps, atol):
        engine = self.engine
        out = np.empty(queries.shape[0], dtype=np.float64)
        for index in range(queries.shape[0]):
            out[index] = engine.query_eps(queries[index], eps, atol=atol)
        return out

    def _batch_tau_impl(self, queries, tau):
        engine = self.engine
        out = np.empty(queries.shape[0], dtype=bool)
        for index in range(queries.shape[0]):
            out[index] = engine.query_tau(queries[index], tau)
        return out

    def query_eps_traced(self, query, eps, *, atol=0.0):
        """εKDV for one point, returning ``(value, BoundTrace)``.

        Instrumentation for the tightness case study (Figure 18).
        """
        from repro.core.engine import BoundTrace

        self._require("eps")
        trace = BoundTrace()
        value = self.engine.query_eps(
            np.asarray(query, dtype=np.float64), eps, atol=atol, trace=trace
        )
        return value, trace
