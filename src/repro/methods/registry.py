"""Method registry and the machine-readable version of Table 6."""

from __future__ import annotations

import inspect
from typing import Any

from repro.errors import UnknownNameError
from repro.methods.akde import AKDEMethod
from repro.methods.exact_method import ExactMethod
from repro.methods.karl import KARLMethod
from repro.methods.quad import QUADMethod
from repro.methods.scikit_like import ScikitLikeMethod
from repro.methods.tkdc import TKDCMethod
from repro.methods.base import Method
from repro.methods.zorder import ZOrderMethod

__all__ = [
    "METHOD_REGISTRY",
    "canonical_method_options",
    "create_method",
    "available_methods",
    "capability_table",
]

#: Registry name -> method class (the paper's Table 6 column order).
METHOD_REGISTRY: dict[str, type[Method]] = {
    cls.name: cls
    for cls in (
        ExactMethod,
        ScikitLikeMethod,
        ZOrderMethod,
        AKDEMethod,
        TKDCMethod,
        KARLMethod,
        QUADMethod,
    )
}


def _lookup(name: str) -> type[Method]:
    try:
        return METHOD_REGISTRY[str(name).lower()]
    except KeyError:
        known = ", ".join(METHOD_REGISTRY)
        raise UnknownNameError(f"unknown method {name!r}; available: {known}") from None


def create_method(name: str, **kwargs: Any) -> Method:
    """Instantiate a method by registry name.

    Keyword arguments are forwarded to the method constructor (e.g.
    ``leaf_size`` for indexed methods, ``delta`` for Z-order). Options a
    method's constructor does not declare are silently dropped, so one
    option set can configure a heterogeneous sweep of methods — the
    pattern every experiment in Section 7 uses.
    """
    cls = _lookup(name)
    accepted = inspect.signature(cls.__init__).parameters
    applicable = {key: value for key, value in kwargs.items() if key in accepted}
    return cls(**applicable)


def canonical_method_options(
    name: str, options: dict[str, Any]
) -> tuple[tuple[str, str], ...]:
    """The constructor-applicable subset of ``options``, canonicalised.

    Applies the same keyword filter as :func:`create_method` (options
    the method's constructor does not declare are dropped), then renders
    each surviving value with ``repr`` and sorts by key — a stable,
    hashable form used by
    :meth:`~repro.visual.request.RenderRequest.fingerprint`, where an
    option that would not reach the constructor must not split the cache
    key.
    """
    cls = _lookup(name)
    accepted = inspect.signature(cls.__init__).parameters
    return tuple(
        sorted(
            (key, repr(value))
            for key, value in options.items()
            if key in accepted
        )
    )


def available_methods(
    *, operation: str | None = None, kernel: str | None = None
) -> list[str]:
    """Registry names, optionally filtered by capability.

    Parameters
    ----------
    operation:
        ``"eps"``, ``"tau"`` or ``None`` (no filter).
    kernel:
        Kernel name; filters out methods that cannot bound it.
    """
    names: list[str] = []
    for name, cls in METHOD_REGISTRY.items():
        if operation == "eps" and not cls.supports_eps:
            continue
        if operation == "tau" and not cls.supports_tau:
            continue
        if (
            kernel is not None
            and cls.supported_kernels is not None
            and str(kernel).lower() not in cls.supported_kernels
        ):
            continue
        names.append(name)
    return names


def capability_table() -> dict[str, dict[str, Any]]:
    """Table 6 as a dict: name -> {eps, tau, deterministic, kernels}."""
    table: dict[str, dict[str, Any]] = {}
    for name, cls in METHOD_REGISTRY.items():
        kernels = (
            "all" if cls.supported_kernels is None else sorted(cls.supported_kernels)
        )
        table[name] = {
            "eps": cls.supports_eps,
            "tau": cls.supports_tau,
            "deterministic": cls.deterministic_guarantee,
            "kernels": kernels,
        }
    return table
