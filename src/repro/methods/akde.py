"""aKDE — Gray & Moore's dual-bound approximate KDE (SDM 2003).

The original bound-based εKDV method: kd-tree traversal with the
min/max-distance bounds of
:class:`~repro.core.bounds.baseline.BaselineBoundProvider`. Supports
every kernel, εKDV only (Table 6).
"""

from __future__ import annotations

from repro.methods.base import IndexedMethod

__all__ = ["AKDEMethod"]


class AKDEMethod(IndexedMethod):
    """kd-tree εKDV with min/max-distance bounds."""

    name = "akde"
    provider_name = "baseline"
    supports_eps = True
    supports_tau = False
