"""QUAD — quadratic-bound KDV (this paper).

The proposed method: the shared kd-tree refinement framework with the
tightest bounds in the comparison —

* Gaussian kernel: full quadratic bounds over ``sum dist^2`` and
  ``sum dist^4`` (O(d^2) per node, Section 4);
* triangular / cosine / exponential kernels: ``a x^2 + c`` bounds over
  ``sum dist^2`` (O(d) per node, Section 5);
* Epanechnikov / quartic (extensions): exact O(d)/O(d^2) aggregation.

Supports both εKDV and τKDV.
"""

from __future__ import annotations

from repro.methods.base import IndexedMethod

__all__ = ["QUADMethod"]


class QUADMethod(IndexedMethod):
    """kd-tree ε/τKDV with QUAD's quadratic bounds.

    Parameters
    ----------
    leaf_size, ordering:
        As in :class:`~repro.methods.base.IndexedMethod`.
    tangent:
        Tangent-point choice of the Gaussian lower bound (``"mean"`` is
        the paper's ``t*``; ``"midpoint"`` is the ablation alternative).
        Ignored for the distance kernels.
    """

    name = "quad"
    provider_name = "quad"
    supports_eps = True
    supports_tau = True
    supported_kernels = frozenset(
        {"gaussian", "triangular", "cosine", "exponential", "epanechnikov", "quartic"}
    )

    def __init__(
        self, leaf_size=None, ordering="gap", tangent="mean", index="kd",
        engine="scalar", backend=None,
    ):
        from repro.index.kdtree import DEFAULT_LEAF_SIZE

        super().__init__(
            leaf_size=DEFAULT_LEAF_SIZE if leaf_size is None else leaf_size,
            ordering=ordering,
            index=index,
            engine=engine,
            backend=backend,
        )
        self.tangent = tangent

    def _fit_impl(self):
        if self.kernel.uses_squared_distance:
            self.provider_options = {"tangent": self.tangent}
        else:
            self.provider_options = {}
        super()._fit_impl()
