"""Shared type aliases and structural protocols for the public API.

Centralising these keeps annotations consistent across the package and
gives the duck-typed seams (kd-tree nodes versus ball-tree nodes, kernel
name-or-instance arguments) a machine-checked structural contract
instead of a comment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

if TYPE_CHECKING:
    from repro.core.kernels import Kernel

__all__ = [
    "ArrayLike",
    "FloatArray",
    "BoolArray",
    "IntArray",
    "BoundPair",
    "KernelLike",
    "PointLike",
    "BoundingRegion",
]

#: 2-D point sets, query batches, density vectors — everything numeric.
FloatArray = NDArray[np.float64]
#: τKDV masks and other boolean per-pixel outputs.
BoolArray = NDArray[np.bool_]
#: Index vectors (kd-tree orderings, sample picks).
IntArray = NDArray[np.int64]
#: The ``(LB, UB)`` interval every bound evaluation returns.
BoundPair = tuple[float, float]
#: Kernel arguments accept a registry name or a Kernel instance.
KernelLike = Union[str, "Kernel"]
#: A single query point in any accepted form.
PointLike = Union[Sequence[float], FloatArray]


class BoundingRegion(Protocol):
    """Structural contract of an index node's bounding region.

    :class:`repro.index.rectangle.Rectangle` and
    :class:`repro.index.balltree.Ball` both satisfy it, which is the
    duck-typed seam that lets every bound provider run unchanged on
    either index.
    """

    def min_sq_dist(self, query: Sequence[float]) -> float:
        """Minimum squared distance from ``query`` to the region."""
        ...

    def max_sq_dist(self, query: Sequence[float]) -> float:
        """Maximum squared distance from ``query`` to the region."""
        ...

    def min_sq_dist_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised ``min_sq_dist`` for an ``(m, d)`` query batch."""
        ...

    def max_sq_dist_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised ``max_sq_dist`` for an ``(m, d)`` query batch."""
        ...

    def distance_interval(self, query: Sequence[float]) -> tuple[float, float]:
        """``(min_dist, max_dist)`` plain (non-squared) distances."""
        ...
