"""Bound-accelerated kernel density classification.

**Extension beyond the paper**, reproducing the *application* behind its
tKDC competitor (Gan & Bailis, SIGMOD 2017: "scalable kernel density
classification"): assign a query to the class whose kernel density is
highest,

.. math::

    c(q) = \\arg\\max_c \\; \\sum_{p_i : y_i = c} w \\, K(q, p_i)

(with a shared bandwidth, the class-prior-weighted Bayes rule). The
bound machinery makes the argmax *exactly* decidable without exact
densities: maintain a ``[LB_c, UB_c]`` interval per class and refine —
always the class with the widest interval among the contenders — until
one class's lower bound clears every other class's upper bound. The
prediction is then provably the same as the exact rule's, typically
after scanning a small fraction of either class.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.bounds import make_bound_provider
from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_gamma
from repro.errors import InvalidParameterError, NotFittedError
from repro.index.kdtree import KDTree
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike, PointLike
    from repro.core.bounds.base import BoundProvider
    from repro.index.kdtree import KDTree as _KDTree, KDTreeNode

__all__ = ["KernelClassifier"]


class _ClassState:
    """Per-class refinement state for one query."""

    __slots__ = ("heap", "lb", "ub", "exact", "counter")

    def __init__(self) -> None:
        self.heap: list[tuple[float, int, KDTreeNode, float, float]] = []
        self.lb = 0.0
        self.ub = 0.0
        self.exact = False
        self.counter = 0


class KernelClassifier:
    """Exact-argmax kernel density classification via bound refinement.

    Parameters
    ----------
    kernel:
        Kernel name or instance.
    gamma:
        Bandwidth parameter; ``None`` selects Scott's rule on the whole
        training set (a shared bandwidth across classes).
    leaf_size:
        kd-tree leaf capacity (one tree per class).
    provider:
        Bound family (default ``"quad"``).

    Notes
    -----
    Predictions equal the brute-force rule exactly (up to genuine
    floating-point ties, resolved identically by both paths).
    """

    def __init__(
        self,
        kernel: KernelLike = "gaussian",
        gamma: float | None = None,
        leaf_size: int = 64,
        provider: str = "quad",
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.gamma = None if gamma is None else check_positive(gamma, "gamma")
        self.leaf_size = int(leaf_size)
        self.provider_name = provider
        self.classes_: np.ndarray | None = None
        self.gamma_: float | None = None
        self._trees: dict[Any, _KDTree] | None = None
        self._provider: BoundProvider | None = None
        #: Points scanned by exact leaf evaluations (work counter).
        self.points_scanned = 0

    def fit(self, points: PointLike, labels: PointLike) -> KernelClassifier:
        """Fit one index per class label."""
        points = check_points(points)
        labels = np.asarray(labels).reshape(-1)
        if labels.shape[0] != points.shape[0]:
            raise InvalidParameterError(
                f"labels length {labels.shape[0]} != points {points.shape[0]}"
            )
        self.classes_ = np.unique(labels)
        if self.classes_.shape[0] < 2:
            raise InvalidParameterError("need at least two classes")
        self.gamma_ = self.gamma if self.gamma is not None else scott_gamma(points, self.kernel)
        self._provider = make_bound_provider(self.provider_name, self.kernel, self.gamma_, 1.0)
        self._trees = {}
        for label in self.classes_:
            members = points[labels == label]
            self._trees[label] = KDTree(members, leaf_size=self.leaf_size)
        return self

    def _require_fitted(self) -> None:
        if self._trees is None:
            raise NotFittedError("KernelClassifier must be fitted before predicting")

    # -- exact reference ---------------------------------------------------

    def class_densities(self, queries: PointLike) -> FloatArray:
        """Exact per-class kernel sums; shape ``(m, n_classes)``."""
        self._require_fitted()
        from repro.core.exact import exact_density

        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        out = np.empty((queries.shape[0], self.classes_.shape[0]))
        for column, label in enumerate(self.classes_):
            out[:, column] = exact_density(
                self._trees[label].points, queries, self.kernel, self.gamma_, 1.0
            )
        return out

    def predict_exact(self, queries: PointLike) -> np.ndarray:
        """Brute-force argmax predictions (ground truth)."""
        densities = self.class_densities(queries)
        return self.classes_[np.argmax(densities, axis=1)]

    # -- bounded argmax ------------------------------------------------------

    def predict(self, queries: PointLike) -> np.ndarray:
        """Argmax-class predictions with bound-based early termination."""
        self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return self.classes_[[self._predict_one(q) for q in queries]]

    def _predict_one(self, query: FloatArray) -> int:
        provider = self._provider
        q_list = query.tolist()
        q_sq = float(query @ query)
        states = []
        for label in self.classes_:
            state = _ClassState()
            root = self._trees[label].root
            lb, ub = provider.node_bounds(root, q_list, q_sq)
            state.lb = lb
            state.ub = ub
            state.heap = [(-(ub - lb), 0, root, lb, ub)]
            states.append(state)
        while True:
            # Winner test: some class's LB clears every other class's UB.
            best_lb_index = max(range(len(states)), key=lambda i: states[i].lb)
            best_lb = states[best_lb_index].lb
            rivals_ub = max(
                state.ub for i, state in enumerate(states) if i != best_lb_index
            )
            if best_lb >= rivals_ub:
                return best_lb_index
            # Refine the contender with the widest interval that still
            # has unrefined nodes; contenders are classes whose UB is not
            # already dominated.
            candidates = [
                i
                for i, state in enumerate(states)
                if state.heap and state.ub >= best_lb
            ]
            if not candidates:
                # Everything refinable is exact: argmax of midpoints.
                return max(
                    range(len(states)), key=lambda i: 0.5 * (states[i].lb + states[i].ub)
                )
            target = max(candidates, key=lambda i: states[i].ub - states[i].lb)
            self._refine_step(states[target], provider, query, q_list, q_sq)

    def _refine_step(
        self,
        state: _ClassState,
        provider: BoundProvider,
        q_array: FloatArray,
        q_list: list[float],
        q_sq: float,
    ) -> None:
        __, __, node, node_lb, node_ub = heappop(state.heap)
        if node.is_leaf:
            exact = provider.leaf_exact(node, q_array, q_sq)
            self.points_scanned += node.agg.n
            state.lb += exact - node_lb
            state.ub += exact - node_ub
        else:
            for child in (node.left, node.right):
                child_lb, child_ub = provider.node_bounds(child, q_list, q_sq)
                state.counter += 1
                heappush(
                    state.heap,
                    (-(child_ub - child_lb), state.counter, child, child_lb, child_ub),
                )
                state.lb += child_lb
                state.ub += child_ub
            state.lb -= node_lb
            state.ub -= node_ub
        if state.ub < state.lb:
            mid = 0.5 * (state.lb + state.ub)
            state.lb = state.ub = mid

    def predict_proba(self, queries: PointLike, eps: float = 0.01) -> FloatArray:
        """Per-class density shares within ``(1 ± eps)`` per class sum."""
        self._require_fitted()
        from repro.core.engine import RefinementEngine

        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        sums = np.empty((queries.shape[0], self.classes_.shape[0]))
        for column, label in enumerate(self.classes_):
            engine = RefinementEngine(self._trees[label], self._provider)
            for row in range(queries.shape[0]):
                sums[row, column] = engine.query_eps(queries[row], eps, atol=1e-12)
        totals = sums.sum(axis=1, keepdims=True)
        # lint: allow-float-eq -- benign sentinel: a row summing to exact
        # zero has zero in every class column, so any divisor keeps it zero.
        totals[totals == 0.0] = 1.0
        return sums / totals

    def __repr__(self) -> str:
        state = "fitted" if self._trees is not None else "unfitted"
        classes = 0 if self.classes_ is None else len(self.classes_)
        return f"KernelClassifier(kernel={self.kernel.name!r}, classes={classes}, {state})"
