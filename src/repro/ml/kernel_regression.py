"""Bound-accelerated Nadaraya-Watson kernel regression.

**Extension beyond the paper** (its stated future work): the
Nadaraya-Watson estimator

.. math::

    \\hat{y}(q) = \\frac{\\sum_i y_i K(q, p_i)}{\\sum_i K(q, p_i)}

is a ratio of two kernel aggregations, and the same per-node bounds that
accelerate KDV bound both of them. For a node ``R`` with kernel-sum
bounds ``[L_R, U_R]`` and label range ``[ymin_R, ymax_R]``:

.. math::

    N_R \\in [\\,ymin_R L_R,\\; ymax_R U_R\\,] \\text{ (labels >= 0; signed
    labels pick the matching endpoint)}

The refinement loop (the same best-first queue as the KDV engine)
maintains global numerator and denominator intervals and stops once the
implied ratio interval is within the requested tolerance — giving a
*deterministic* error guarantee on the regression value, the analogue of
εKDV's guarantee.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.core.bounds import make_bound_provider
from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_gamma
from repro.errors import InvalidParameterError, NotFittedError
from repro.index.kdtree import KDTree
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import BoundPair, FloatArray, KernelLike, PointLike
    from repro.core.bounds.base import BoundProvider
    from repro.index.kdtree import KDTreeNode

__all__ = ["KernelRegressor"]

#: Smallest normal float64; weight sums below this are treated as zero
#: support instead of being used as a division denominator.
_DENOMINATOR_FLOOR = float(np.finfo(np.float64).tiny)


def _node_numerator_bounds(
    kernel_lb: float, kernel_ub: float, ymin: float, ymax: float
) -> BoundPair:
    """Bounds on ``sum_i y_i K_i`` from kernel-sum and label ranges.

    Each ``K_i`` is non-negative, so the numerator is bounded by pairing
    the extreme label with the matching kernel-sum endpoint (which
    endpoint depends on the label's sign).
    """
    lower = ymin * kernel_lb if ymin >= 0.0 else ymin * kernel_ub
    upper = ymax * kernel_ub if ymax >= 0.0 else ymax * kernel_lb
    return lower, upper


def _ratio_interval(n_lb: float, n_ub: float, d_lb: float, d_ub: float) -> BoundPair:
    """The interval of ``N / D`` over ``N in [n_lb, n_ub], D in [d_lb, d_ub]``.

    Requires ``d_lb > 0`` (the caller guarantees a positive denominator
    before dividing).
    """
    candidates = (n_lb / d_lb, n_lb / d_ub, n_ub / d_lb, n_ub / d_ub)
    return min(candidates), max(candidates)


class KernelRegressor:
    """Nadaraya-Watson regression with a deterministic error tolerance.

    Parameters
    ----------
    kernel:
        Kernel name or instance (any kernel QUAD bounds support).
    gamma:
        Bandwidth parameter; ``None`` selects Scott's rule at fit time.
    leaf_size:
        kd-tree leaf capacity.
    provider:
        Bound family (``"quad"`` by default; ``"baseline"`` or, for the
        Gaussian kernel, ``"linear"`` allow an apples-to-apples speed
        comparison with the weaker bounds).

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(-3, 3, size=(500, 1))
    >>> y = np.sin(X[:, 0]) + rng.normal(0, 0.1, 500)
    >>> model = KernelRegressor().fit(X, y)
    >>> prediction = model.predict([[0.5]], tol=0.01)
    """

    def __init__(
        self,
        kernel: KernelLike = "gaussian",
        gamma: float | None = None,
        leaf_size: int = 64,
        provider: str = "quad",
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.gamma = None if gamma is None else check_positive(gamma, "gamma")
        self.leaf_size = int(leaf_size)
        self.provider_name = provider
        self.tree: KDTree | None = None
        self.labels: FloatArray | None = None
        self.gamma_: float | None = None
        self._provider: BoundProvider | None = None
        self._label_ranges: dict[int, BoundPair] | None = None
        self._leaf_labels: dict[int, FloatArray] | None = None
        #: Points scanned by exact leaf evaluations since the last reset —
        #: the work measure showing how much of the dataset pruning skipped.
        self.points_scanned = 0

    # -- lifecycle ---------------------------------------------------------

    def fit(self, points: PointLike, labels: PointLike) -> KernelRegressor:
        """Fit on ``(n, d)`` points with ``(n,)`` real labels."""
        points = check_points(points)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if labels.shape[0] != points.shape[0]:
            raise InvalidParameterError(
                f"labels length {labels.shape[0]} != number of points {points.shape[0]}"
            )
        if not np.all(np.isfinite(labels)):
            raise InvalidParameterError("labels must be finite")
        self.gamma_ = self.gamma if self.gamma is not None else scott_gamma(points, self.kernel)
        self.tree = KDTree(points, leaf_size=self.leaf_size)
        self.labels = labels
        self._provider = make_bound_provider(
            self.provider_name, self.kernel, self.gamma_, 1.0
        )
        # Per-node label ranges (bottom-up) and per-leaf label vectors.
        self._label_ranges = {}
        self._leaf_labels = {}
        self._collect_label_stats(self.tree.root)
        return self

    def _collect_label_stats(self, node: KDTreeNode) -> BoundPair:
        if node.is_leaf:
            leaf_labels = self.labels[node.indices]
            self._leaf_labels[node.node_id] = leaf_labels
            stats = (float(leaf_labels.min()), float(leaf_labels.max()))
        else:
            left = self._collect_label_stats(node.left)
            right = self._collect_label_stats(node.right)
            stats = (min(left[0], right[0]), max(left[1], right[1]))
        self._label_ranges[node.node_id] = stats
        return stats

    def _require_fitted(self) -> None:
        if self.tree is None:
            raise NotFittedError("KernelRegressor must be fitted before predicting")

    # -- exact -----------------------------------------------------------

    def predict_exact(self, queries: PointLike) -> FloatArray:
        """Exact Nadaraya-Watson predictions (brute force, ground truth)."""
        self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        points = self.tree.points
        point_sq = np.einsum("ij,ij->i", points, points)
        out = np.empty(queries.shape[0])
        for index, q in enumerate(queries):
            sq = point_sq - 2.0 * (points @ q) + float(q @ q)
            np.maximum(sq, 0.0, out=sq)
            # lint: allow-backend-dispatch -- scalar per-query regression
            # weights, not a batched density render; backend-independent.
            weights = self.kernel.evaluate(sq, self.gamma_)
            denominator = float(weights.sum())
            # A subnormal weight mass carries no usable precision (the
            # query is effectively outside every kernel's support), so
            # treat anything below the smallest normal float64 as zero
            # rather than dividing by it.
            if denominator < _DENOMINATOR_FLOOR:
                out[index] = float(self.labels.mean())
            else:
                out[index] = float((weights * self.labels).sum()) / denominator
        return out

    # -- bounded refinement ----------------------------------------------

    def predict(
        self,
        queries: PointLike,
        tol: float = 0.01,
        max_iterations: int | None = None,
    ) -> FloatArray:
        """Predictions within ``± tol * label_scale`` of the exact value.

        ``label_scale`` is ``max(|ymin|, |ymax|)`` of the training
        labels, so ``tol`` is an absolute tolerance in label units after
        normalisation — the natural analogue of εKDV's relative bound for
        a ratio estimator (whose value can be zero).

        Parameters
        ----------
        queries:
            Query points.
        tol:
            Half-width tolerance on the prediction interval, as a
            fraction of the label scale.
        max_iterations:
            Optional refinement cap per query (``None``: refine until
            the tolerance is met, at worst fully exact).
        """
        self._require_fitted()
        tol = check_positive(tol, "tol")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        scale = float(np.max(np.abs(self.labels))) or 1.0
        out = np.empty(queries.shape[0])
        for index in range(queries.shape[0]):
            out[index] = self._predict_one(queries[index], tol * scale, max_iterations)
        return out

    def _predict_one(
        self, query: FloatArray, tolerance: float, max_iterations: int | None
    ) -> float:
        provider = self._provider
        q_list = query.tolist()
        q_sq = float(query @ query)
        root = self.tree.root
        d_lb, d_ub = provider.node_bounds(root, q_list, q_sq)
        ymin, ymax = self._label_ranges[root.node_id]
        n_lb, n_ub = _node_numerator_bounds(d_lb, d_ub, ymin, ymax)
        # Heap ordered by denominator bound gap (the dominant uncertainty).
        counter = 0
        heap = [(-(d_ub - d_lb), counter, root, d_lb, d_ub, n_lb, n_ub)]
        iterations = 0
        while heap:
            if d_lb > 0.0:
                low, high = _ratio_interval(n_lb, n_ub, d_lb, d_ub)
                if high - low <= 2.0 * tolerance:
                    return 0.5 * (low + high)
            if max_iterations is not None and iterations >= max_iterations:
                break
            iterations += 1
            __, __, node, node_dlb, node_dub, node_nlb, node_nub = heappop(heap)
            if node.is_leaf:
                self.points_scanned += node.agg.n
                # lint: allow-backend-dispatch -- single-query leaf scan
                # inside the regression refinement; backend-independent.
                weights = self.kernel.evaluate(
                    node.sq_norms - 2.0 * (node.points @ query) + q_sq, self.gamma_
                )
                exact_d = float(weights.sum())
                exact_n = float((weights * self._leaf_labels[node.node_id]).sum())
                d_lb += exact_d - node_dlb
                d_ub += exact_d - node_dub
                n_lb += exact_n - node_nlb
                n_ub += exact_n - node_nub
            else:
                for child in (node.left, node.right):
                    child_dlb, child_dub = provider.node_bounds(child, q_list, q_sq)
                    ymin, ymax = self._label_ranges[child.node_id]
                    child_nlb, child_nub = _node_numerator_bounds(
                        child_dlb, child_dub, ymin, ymax
                    )
                    counter += 1
                    heappush(
                        heap,
                        (
                            -(child_dub - child_dlb),
                            counter,
                            child,
                            child_dlb,
                            child_dub,
                            child_nlb,
                            child_nub,
                        ),
                    )
                    d_lb += child_dlb
                    d_ub += child_dub
                    n_lb += child_nlb
                    n_ub += child_nub
                d_lb -= node_dlb
                d_ub -= node_dub
                n_lb -= node_nlb
                n_ub -= node_nub
            if d_ub < d_lb:
                d_lb = d_ub = 0.5 * (d_lb + d_ub)
            if n_ub < n_lb:
                n_lb = n_ub = 0.5 * (n_lb + n_ub)
        # Fully refined (or capped): return the midpoint ratio, falling
        # back to the label mean where the denominator underflowed.
        if d_ub <= 0.0:
            return float(self.labels.mean())
        denominator = max(0.5 * (d_lb + d_ub), np.finfo(np.float64).tiny)
        return 0.5 * (n_lb + n_ub) / denominator

    def __repr__(self) -> str:
        state = "fitted" if self.tree is not None else "unfitted"
        return (
            f"KernelRegressor(kernel={self.kernel.name!r}, "
            f"provider={self.provider_name!r}, {state})"
        )
