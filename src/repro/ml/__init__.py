"""Kernel-based machine-learning extensions built on the QUAD machinery.

The paper's conclusion names these as future work: "we will further
apply QUAD to other kernel-based machine learning models, e.g., kernel
regression". This subpackage delivers the kernel-regression instance.
"""

from repro.ml.kernel_regression import KernelRegressor
from repro.ml.kernel_classifier import KernelClassifier

__all__ = ["KernelRegressor", "KernelClassifier"]
