"""QUAD: Quadratic-Bound-based Kernel Density Visualization — reproduction.

A from-scratch Python implementation of the SIGMOD 2020 paper by Chan,
Cheng and Yiu: fast approximate (εKDV) and thresholded (τKDV) kernel
density visualization via quadratic bounds on kernel aggregation
functions, together with every compared baseline (EXACT, Scikit-like,
Z-order sampling, aKDE, tKDC, KARL) and the progressive visualization
framework.

Quickstart
----------
>>> from repro import KernelDensity, KDVRenderer, load_dataset
>>> points = load_dataset("crime", n=5000)
>>> kde = KernelDensity(method="quad").fit(points)
>>> renderer = KDVRenderer(points, resolution=(64, 48))
>>> heatmap = renderer.render_eps(eps=0.01, method="quad")
"""

from repro.core.kde import KernelDensity
from repro.core.kernels import available_kernels, get_kernel
from repro.core.exact import exact_density
from repro.data.bandwidth import scott_gamma
from repro.data.synthetic import available_datasets, load_dataset
from repro.compat import QuadKernelDensity
from repro.methods.registry import available_methods, capability_table, create_method
from repro.ml.kernel_classifier import KernelClassifier
from repro.ml.kernel_regression import KernelRegressor
from repro.visual.grid import PixelGrid
from repro.visual.kdv import KDVRenderer
from repro.visual.progressive import ProgressiveRenderer
from repro.visual.request import RenderOptions, RenderRequest
from repro.visual.streaming import StreamingKDV

__version__ = "1.0.0"

__all__ = [
    "KernelDensity",
    "KernelRegressor",
    "KernelClassifier",
    "StreamingKDV",
    "QuadKernelDensity",
    "KDVRenderer",
    "ProgressiveRenderer",
    "PixelGrid",
    "RenderRequest",
    "RenderOptions",
    "exact_density",
    "scott_gamma",
    "get_kernel",
    "available_kernels",
    "create_method",
    "available_methods",
    "capability_table",
    "load_dataset",
    "available_datasets",
    "__version__",
]
