"""QUAD: Quadratic-Bound-based Kernel Density Visualization — reproduction.

A from-scratch Python implementation of the SIGMOD 2020 paper by Chan,
Cheng and Yiu: fast approximate (εKDV) and thresholded (τKDV) kernel
density visualization via quadratic bounds on kernel aggregation
functions, together with every compared baseline (EXACT, Scikit-like,
Z-order sampling, aKDE, tKDC, KARL) and the progressive visualization
framework.

Public surface
--------------
``__all__`` below is the blessed API: the one-call :func:`render`
helper, the :class:`KDVRenderer` / :class:`RenderRequest` /
:class:`RenderOptions` rendering stack, the :class:`TileService` /
:class:`ServiceConfig` serving stack (with its nested config groups
and sharded registry), and the data/method/kernel registries. Anything
not re-exported here — and any ``repro.compat`` shim — is internal and
may change without notice; the legacy ``render_eps`` / ``render_tau``
execution-keyword forms are deprecated and will be removed in repro
2.0 (see ``docs/api.md``).

Quickstart
----------
>>> from repro import RenderRequest, load_dataset, render
>>> points = load_dataset("crime", n=5000)
>>> heatmap = render(points, RenderRequest.for_eps(0.01), resolution=(64, 48))
"""

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.compat import QuadKernelDensity  # lint: allow-shim-import -- the shim's one blessed re-export
from repro.core.exact import exact_density
from repro.core.kde import KernelDensity
from repro.core.kernels import available_kernels, get_kernel
from repro.data.bandwidth import scott_gamma
from repro.data.synthetic import available_datasets, load_dataset
from repro.methods.registry import available_methods, capability_table, create_method
from repro.ml.kernel_classifier import KernelClassifier
from repro.ml.kernel_regression import KernelRegressor
from repro.serve import (
    CacheConfig,
    DatasetRegistry,
    RenderConfig,
    ResilienceConfig,
    ServiceConfig,
    ShardedDatasetRegistry,
    ShardingConfig,
    TileServer,
    TileService,
    run_server,
)
from repro.visual.grid import PixelGrid
from repro.visual.kdv import KDVRenderer
from repro.visual.progressive import ProgressiveRenderer
from repro.visual.request import RenderOptions, RenderRequest
from repro.visual.streaming import StreamingKDV

if TYPE_CHECKING:
    from repro._types import PointLike

__version__ = "1.0.0"


def render(
    points: "PointLike", request: RenderRequest, **renderer_kwargs: Any
) -> "np.ndarray":
    """Render one KDV image in a single call.

    Builds a :class:`KDVRenderer` over ``points`` (``renderer_kwargs``
    pass through: ``resolution``, ``kernel``, ``gamma``, ``grid``, ...)
    and renders ``request`` through the unified
    :meth:`KDVRenderer.render` entrypoint. For repeated renders against
    the same points, build the renderer once instead — it amortises the
    fitted index across requests.
    """
    renderer = KDVRenderer(points, **renderer_kwargs)
    return np.asarray(renderer.render(request))


__all__ = [
    # one-call rendering + the rendering stack
    "render",
    "KDVRenderer",
    "RenderRequest",
    "RenderOptions",
    "PixelGrid",
    "ProgressiveRenderer",
    "StreamingKDV",
    # density estimation + ML heads
    "KernelDensity",
    "KernelRegressor",
    "KernelClassifier",
    "QuadKernelDensity",
    "exact_density",
    "scott_gamma",
    # serving stack
    "TileService",
    "TileServer",
    "ServiceConfig",
    "RenderConfig",
    "CacheConfig",
    "ResilienceConfig",
    "ShardingConfig",
    "DatasetRegistry",
    "ShardedDatasetRegistry",
    "run_server",
    # registries
    "get_kernel",
    "available_kernels",
    "create_method",
    "available_methods",
    "capability_table",
    "load_dataset",
    "available_datasets",
    "__version__",
]
