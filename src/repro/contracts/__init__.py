"""Runtime-checkable soundness contracts (see :mod:`repro.contracts.runtime`).

Usage::

    REPRO_CHECK_INVARIANTS=1 python -m pytest     # whole suite, checked

or programmatically::

    from repro import contracts
    with contracts.checking():
        kde.density_eps(queries, eps=0.01)

Violations raise :class:`repro.errors.InvariantViolation`.
"""

from repro.contracts.decorators import soundness_check
from repro.contracts.runtime import (
    ENV_VAR,
    check_bound_pair,
    check_eps_agreement,
    check_kernel_values,
    check_leaf_containment,
    check_monotone_tightening,
    checking,
    invariants_enabled,
    refresh_from_env,
    set_invariants,
)

__all__ = [
    "ENV_VAR",
    "soundness_check",
    "invariants_enabled",
    "set_invariants",
    "refresh_from_env",
    "checking",
    "check_bound_pair",
    "check_leaf_containment",
    "check_monotone_tightening",
    "check_kernel_values",
    "check_eps_agreement",
]
