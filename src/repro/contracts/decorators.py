"""The ``@soundness_check`` decorator for bound evaluations.

Wraps any ``node_bounds``-shaped method — ``(self, node, q, q_sq) ->
(lower, upper)`` — so that, while invariant checking is enabled (see
:mod:`repro.contracts.runtime`), every returned pair is validated
against the bound-order contract before the caller sees it. With
checking disabled the wrapper is a single cached-boolean test, so it is
safe to leave applied permanently on custom providers.

The built-in providers are not wrapped at definition time: their
``node_bounds`` sits on the per-pixel hot path (millions of calls per
colour map) and even a no-op wrapper call costs a few percent there.
Instead :class:`repro.core.bounds.base.BoundProvider` exposes
:meth:`~repro.core.bounds.base.BoundProvider.checked_node_bounds` —
this decorator applied to a delegating method — and the refinement
engine routes through it whenever checking is enabled.
"""

from __future__ import annotations

from functools import wraps
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.contracts.runtime import check_bound_pair, invariants_enabled

if TYPE_CHECKING:
    from repro.index.kdtree import KDTreeNode

__all__ = ["soundness_check"]

_Self = TypeVar("_Self")

_NodeBoundsMethod = Callable[
    [_Self, "KDTreeNode", Sequence[float], float], tuple[float, float]
]


def soundness_check(fn: _NodeBoundsMethod[_Self]) -> _NodeBoundsMethod[_Self]:
    """Validate the ``(LB, UB)`` pair returned by a bound method.

    The wrapped method's return value is checked with
    :func:`repro.contracts.runtime.check_bound_pair`; a violation raises
    :class:`repro.errors.InvariantViolation` naming the provider class,
    the node and the query. No-op while checking is disabled.
    """

    @wraps(fn)
    def wrapper(
        self: _Self, node: KDTreeNode, q: Sequence[float], q_sq: float
    ) -> tuple[float, float]:
        lower, upper = fn(self, node, q, q_sq)
        if invariants_enabled():
            check_bound_pair(
                lower,
                upper,
                bound=type(self).__name__,
                node=getattr(node, "node_id", None),
                query=q,
            )
        return lower, upper

    return wrapper
