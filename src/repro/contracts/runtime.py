"""Runtime soundness contracts for the bound machinery.

Every competitive method in the paper is correct only if each per-node
bound evaluation satisfies ``LB_R(q) <= F_R(q) <= UB_R(q)``. A silently
broken bound does not crash — it makes εKDV/τKDV return wrong pixels
while tests keep passing. This module provides machine checks for those
invariants, activated by the ``REPRO_CHECK_INVARIANTS`` environment
variable (values ``1``/``true``/``on``/``yes``, case-insensitive):

* **bound-order** — every ``node_bounds`` call returns a finite pair
  with ``lower <= upper`` and ``upper >= 0``;
* **leaf-containment** — the exact leaf kernel sum lies inside the leaf
  bounds that advertised it (the direct ``LB <= F <= UB`` check);
* **monotone-tightening** — the engine's global ``[LB(q), UB(q)]``
  interval only tightens as the priority queue refines;
* **kernel-nonnegative** — kernel evaluations are finite and >= 0;
* **eps-agreement** — εKDV answers of deterministic methods agree with
  the exact density within the ``(1 ± eps)`` contract.

Checks are designed to cost nothing when disabled: hot paths read one
cached boolean (:func:`invariants_enabled`) per query and skip the
validation branches entirely. Enabling the flag re-routes the engine
through the checking variants; expect a moderate slowdown plus an O(n)
exact evaluation per εKDV query for the agreement check.

Violations raise :class:`repro.errors.InvariantViolation` naming the
invariant, the bound class, the node and the query — they are never
caught and repaired internally.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.errors import InvariantViolation

if TYPE_CHECKING:
    from repro._types import PointLike

__all__ = [
    "ENV_VAR",
    "invariants_enabled",
    "set_invariants",
    "refresh_from_env",
    "checking",
    "check_bound_pair",
    "check_leaf_containment",
    "check_monotone_tightening",
    "check_kernel_values",
    "check_eps_agreement",
]

#: Environment variable toggling runtime invariant checks.
ENV_VAR = "REPRO_CHECK_INVARIANTS"

#: Values of :data:`ENV_VAR` interpreted as "enabled".
_TRUTHY = frozenset({"1", "true", "on", "yes"})

#: Relative slack absorbing benign floating-point drift in comparisons.
#: The engine's Kahan-compensated accumulators keep genuine drift at the
#: rounding floor, so this is orders of magnitude above noise yet far
#: below any real bound violation.
_REL_TOL = 1e-9


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class _State:
    """Cached enable flag plus an explicit override for tests/tools."""

    __slots__ = ("enabled", "override")

    def __init__(self) -> None:
        self.override: bool | None = None
        self.enabled: bool = _env_enabled()


_state = _State()


def invariants_enabled() -> bool:
    """Whether runtime invariant checks are active.

    Reads a cached flag — safe to call on hot paths. The cache refreshes
    from the environment on import and via :func:`refresh_from_env`;
    :func:`set_invariants` / :func:`checking` override it explicitly.
    """
    return _state.enabled


def set_invariants(enabled: bool | None) -> None:
    """Force invariant checking on/off, or ``None`` to follow the env var."""
    _state.override = enabled
    _state.enabled = _env_enabled() if enabled is None else bool(enabled)


def refresh_from_env() -> bool:
    """Re-read :data:`ENV_VAR` (unless overridden) and return the state."""
    if _state.override is None:
        _state.enabled = _env_enabled()
    return _state.enabled


@contextmanager
def checking(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping an invariant-checking override."""
    previous_override = _state.override
    previous_enabled = _state.enabled
    set_invariants(enabled)
    try:
        yield
    finally:
        _state.override = previous_override
        _state.enabled = previous_enabled


def _describe_query(query: PointLike | None) -> object:
    if query is None:
        return None
    return [float(value) for value in query]


def check_bound_pair(
    lower: float,
    upper: float,
    *,
    bound: str,
    node: int | None = None,
    query: PointLike | None = None,
) -> None:
    """Validate one ``(LB, UB)`` bound evaluation.

    Requires both endpoints finite, ``lower <= upper`` (up to relative
    rounding slack) and ``upper >= 0`` — an upper bound below zero would
    contradict the non-negativity of the kernel sum it bounds.
    """
    if not (math.isfinite(lower) and math.isfinite(upper)):
        raise InvariantViolation(
            f"{bound}: non-finite bounds ({lower!r}, {upper!r}) "
            f"at node {node!r}, query {_describe_query(query)!r}",
            invariant="bound-order",
            bound=bound,
            node=node,
            query=_describe_query(query),
        )
    slack = _REL_TOL * max(abs(lower), abs(upper), 1.0)
    if lower > upper + slack or upper < -slack:
        raise InvariantViolation(
            f"{bound}: invalid bound interval [{lower!r}, {upper!r}] "
            f"at node {node!r}, query {_describe_query(query)!r} "
            "(requires lower <= upper and upper >= 0)",
            invariant="bound-order",
            bound=bound,
            node=node,
            query=_describe_query(query),
        )


def check_leaf_containment(
    exact: float,
    lower: float,
    upper: float,
    *,
    bound: str,
    node: int | None = None,
    query: PointLike | None = None,
) -> None:
    """Validate ``LB <= F <= UB`` on an exactly evaluated leaf.

    This is the paper's correctness condition checked directly: the
    vectorised exact kernel sum of a leaf must lie inside the bound
    interval that the provider previously advertised for that leaf.
    """
    slack = _REL_TOL * max(abs(exact), abs(lower), abs(upper), 1.0)
    if exact < lower - slack or exact > upper + slack:
        raise InvariantViolation(
            f"{bound}: exact leaf sum {exact!r} escapes its bound interval "
            f"[{lower!r}, {upper!r}] at node {node!r}, "
            f"query {_describe_query(query)!r}",
            invariant="leaf-containment",
            bound=bound,
            node=node,
            query=_describe_query(query),
        )


def check_monotone_tightening(
    previous_lower: float,
    previous_upper: float,
    lower: float,
    upper: float,
    *,
    bound: str,
    node: int | None = None,
    query: PointLike | None = None,
) -> None:
    """Validate that a refinement step only tightened the global interval.

    Replacing a node's bounds by its children's (or by the exact leaf
    sum) must never loosen ``[LB(q), UB(q)]``; a widening step means
    some child interval is not contained in its parent's.
    """
    slack = _REL_TOL * max(abs(previous_lower), abs(previous_upper), 1.0)
    if lower < previous_lower - slack or upper > previous_upper + slack:
        raise InvariantViolation(
            f"{bound}: refinement loosened the global interval "
            f"[{previous_lower!r}, {previous_upper!r}] -> "
            f"[{lower!r}, {upper!r}] at node {node!r}, "
            f"query {_describe_query(query)!r}",
            invariant="monotone-tightening",
            bound=bound,
            node=node,
            query=_describe_query(query),
        )


def check_kernel_values(values: object, *, kernel: str) -> None:
    """Validate kernel evaluations: finite and non-negative everywhere."""
    import numpy as np

    array = np.asarray(values, dtype=np.float64)
    if array.size and (not bool(np.isfinite(array).all()) or float(array.min()) < 0.0):
        offender = float(array.min()) if bool(np.isfinite(array).all()) else math.nan
        raise InvariantViolation(
            f"kernel {kernel!r} produced invalid values (min {offender!r}); "
            "profiles must be finite and >= 0",
            invariant="kernel-nonnegative",
            bound=kernel,
        )


def check_eps_agreement(
    returned: float,
    exact: float,
    eps: float,
    atol: float,
    *,
    method: str,
    query: PointLike | None = None,
) -> None:
    """Validate the εKDV contract of a deterministic method's answer.

    The returned density must lie within ``(1 ± eps)`` of the exact
    value, up to the caller's absolute floor ``atol`` plus rounding
    slack.
    """
    slack = atol + _REL_TOL * max(abs(exact), 1.0)
    if abs(returned - exact) > eps * exact + slack:
        raise InvariantViolation(
            f"method {method!r} returned {returned!r} for exact density "
            f"{exact!r}; violates the (1 ± {eps}) relative-error contract "
            f"(atol={atol}) at query {_describe_query(query)!r}",
            invariant="eps-agreement",
            bound=method,
            query=_describe_query(query),
        )
