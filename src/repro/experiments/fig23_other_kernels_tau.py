"""Figure 23 — τKDV time for the triangular and cosine kernels.

tKDC versus QUAD on crime and hep, sweeping τ over ``mu + k sigma``;
QUAD's tighter distance-kernel bounds keep its order-of-magnitude lead.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import make_renderer, strip_private, tau_row

__all__ = ["run"]

_METHODS = ("tkdc", "quad")
_KERNELS = ("triangular", "cosine")
_DATASETS = ("crime", "hep")


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = _DATASETS,
    kernels: Sequence[str] = _KERNELS,
    methods: Sequence[str] = _METHODS,
) -> ExperimentResult:
    """One row per (dataset, kernel, method, tau offset)."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for kernel in kernels:
            renderer = make_renderer(
                dataset, scale.n_points, scale.resolution, kernel=kernel, seed=seed
            )
            mu, sigma = renderer.density_stats()
            for offset in scale.tau_offsets:
                tau = max(mu + offset * sigma, 1e-300)
                label = f"mu{offset:+.1f}sigma"
                for method in methods:
                    rows.append(
                        tau_row(
                            renderer, method, tau, label, dataset=dataset, kernel=kernel
                        )
                    )
    return ExperimentResult(
        experiment="fig23",
        description="tKDV response time for triangular/cosine kernels",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "resolution": list(scale.resolution),
        },
    )
