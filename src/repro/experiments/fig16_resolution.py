"""Figure 16 — εKDV response time varying the screen resolution.

The paper fixes ε = 0.01 and renders at 320 x 240 up to 2560 x 1920;
QUAD's advantage holds at every resolution. Resolutions here are scaled
down proportionally per preset.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import (
    DATASETS,
    EPS_METHODS,
    eps_row,
    make_renderer,
    strip_private,
)

__all__ = ["run"]


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = DATASETS,
    methods: Sequence[str] = EPS_METHODS,
    eps: float = 0.01,
    engine: str = "scalar",
) -> ExperimentResult:
    """Run the resolution sweep; one row per (dataset, method, grid).

    ``engine`` selects the refinement schedule of the index-based
    methods (``"scalar"`` or ``"batch"``).
    """
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for resolution in scale.resolution_sweep:
            renderer = make_renderer(
                dataset, scale.n_points, resolution, seed=seed, engine=engine
            )
            label = f"{resolution[0]}x{resolution[1]}"
            for method in methods:
                rows.append(
                    eps_row(renderer, method, eps, dataset=dataset, resolution=label)
                )
    return ExperimentResult(
        experiment="fig16",
        description="eKDV response time varying the resolution (eps = 0.01)",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "eps": eps,
            "kernel": "gaussian",
            "engine": engine,
        },
    )
