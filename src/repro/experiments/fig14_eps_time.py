"""Figure 14 — εKDV response time versus relative error ε.

The paper sweeps ε from 0.01 to 0.05 on all four datasets at 1280 x 960
and shows QUAD at least one order of magnitude below KARL, with aKDE and
Z-order above. This module regenerates those series (time plus work
counters) at a configurable scale.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import (
    DATASETS,
    EPS_METHODS,
    eps_row,
    make_renderer,
    strip_private,
)

__all__ = ["run"]


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = DATASETS,
    methods: Sequence[str] = EPS_METHODS,
    engine: str = "scalar",
) -> ExperimentResult:
    """Run the ε sweep; one row per (dataset, method, eps).

    ``engine`` selects the refinement schedule of the index-based
    methods (``"scalar"`` or ``"batch"``).
    """
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        renderer = make_renderer(
            dataset, scale.n_points, scale.resolution, seed=seed, engine=engine
        )
        for eps in scale.eps_values:
            for method in methods:
                rows.append(eps_row(renderer, method, eps, dataset=dataset))
    return ExperimentResult(
        experiment="fig14",
        description="eKDV response time varying the relative error eps",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "resolution": list(scale.resolution),
            "kernel": "gaussian",
            "engine": engine,
        },
    )
