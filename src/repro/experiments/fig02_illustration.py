"""Figure 2 — the introductory exact / εKDV / τKDV triptych.

The paper's Figure 2 illustrates that (a) the ε = 0.01 colour map is
indistinguishable from the exact one and (b) the τKDV two-colour map
carries the hotspot information alone. This experiment renders all
three on the crime analogue, reports the quantitative agreement, and
optionally writes the PNGs.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import make_renderer, strip_private
from repro.visual.metrics import average_relative_error, threshold_confusion
from repro.visual.request import RenderRequest

__all__ = ["run"]


def run(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "crime",
    eps: float = 0.01,
    tau_offset: float = 0.1,
    image_dir: str | None = None,
) -> ExperimentResult:
    """Render the three panels; one row per panel with its quality."""
    scale = get_scale(scale)
    renderer = make_renderer(dataset, scale.n_points, scale.resolution, seed=seed)
    exact = renderer.render_exact()
    floor = 1e-6 * float(exact.max())
    eps_image = renderer.render(RenderRequest.for_eps(eps, "quad"))
    mu, sigma = renderer.density_stats()
    tau = mu + tau_offset * sigma
    mask = renderer.render(RenderRequest.for_tau(tau, "quad"))
    confusion = threshold_confusion(mask, exact >= tau)
    rows = [
        {
            "panel": "exact",
            "avg_rel_error": 0.0,
            "hot_fraction": float(np.mean(exact >= tau)),
        },
        {
            "panel": f"eps={eps}",
            "avg_rel_error": average_relative_error(eps_image, exact, floor=floor),
            "hot_fraction": float(np.mean(eps_image >= tau)),
        },
        {
            "panel": f"tau=mu+{tau_offset}sigma",
            "avg_rel_error": None,
            "hot_fraction": float(mask.mean()),
            "mask_accuracy": confusion["accuracy"],
        },
    ]
    if image_dir is not None:
        renderer.save_density_png(exact, f"{image_dir}/fig02_{dataset}_exact.png")
        renderer.save_density_png(eps_image, f"{image_dir}/fig02_{dataset}_eps.png")
        renderer.save_mask_png(mask, f"{image_dir}/fig02_{dataset}_tau.png")
    return ExperimentResult(
        experiment="fig02",
        description="illustration: exact vs eKDV vs tKDV colour maps",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "eps": eps,
            "tau_offset": tau_offset,
        },
    )
