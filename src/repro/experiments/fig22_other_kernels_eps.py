"""Figure 22 — εKDV time for the triangular and cosine kernels.

KARL's linear bounds cannot serve these kernels (Section 5.1), so the
line-up is EXACT-free: aKDE, Z-order and QUAD on the crime and hep
datasets, sweeping ε. QUAD's O(d) distance-kernel bounds keep it at
least an order of magnitude ahead of aKDE in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import eps_row, make_renderer, strip_private

__all__ = ["run"]

_METHODS = ("akde", "zorder", "quad")
_KERNELS = ("triangular", "cosine")
_DATASETS = ("crime", "hep")


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = _DATASETS,
    kernels: Sequence[str] = _KERNELS,
    methods: Sequence[str] = _METHODS,
) -> ExperimentResult:
    """One row per (dataset, kernel, method, eps)."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for kernel in kernels:
            renderer = make_renderer(
                dataset, scale.n_points, scale.resolution, kernel=kernel, seed=seed
            )
            for eps in scale.eps_values:
                for method in methods:
                    rows.append(
                        eps_row(renderer, method, eps, dataset=dataset, kernel=kernel)
                    )
    return ExperimentResult(
        experiment="fig22",
        description="eKDV response time for triangular/cosine kernels",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "resolution": list(scale.resolution),
        },
    )
