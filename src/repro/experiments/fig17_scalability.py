"""Figure 17 — response time varying the dataset size (hep dataset).

The paper samples the 7M-point hep dataset down to 1M/3M/5M/7M and runs
(a) εKDV with ε = 0.01 and (b) τKDV with τ = µ; QUAD wins by an order of
magnitude at every size. This module runs the same two sweeps over the
preset's size ladder.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import (
    EPS_METHODS,
    TAU_METHODS,
    eps_row,
    make_renderer,
    strip_private,
    tau_row,
)

__all__ = ["run"]


def run(
    scale: str = "small", seed: int = 0, dataset: str = "hep", eps: float = 0.01
) -> ExperimentResult:
    """Run both size sweeps; rows carry an ``operation`` column."""
    scale = get_scale(scale)
    rows = []
    for n in scale.size_sweep:
        renderer = make_renderer(dataset, n, scale.resolution, seed=seed)
        for method in EPS_METHODS:
            row = eps_row(renderer, method, eps, dataset=dataset, n=n, operation="eps")
            rows.append(row)
        mu, __ = renderer.density_stats()
        for method in TAU_METHODS:
            rows.append(
                tau_row(renderer, method, mu, "mu", dataset=dataset, n=n, operation="tau")
            )
    return ExperimentResult(
        experiment="fig17",
        description="response time varying the dataset size (eps = 0.01, tau = mu)",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "resolution": list(scale.resolution),
            "kernel": "gaussian",
        },
    )
