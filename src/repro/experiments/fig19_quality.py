"""Figure 19 — visualization quality of εKDV across methods.

The paper shows that Exact, aKDE, Z-order, KARL and QUAD produce visually
indistinguishable colour maps at ε = 0.01 (home dataset). We quantify
that: per-method average and maximum relative error against the exact
map, plus optional rendered PNGs for eyeballing.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import eps_row, make_renderer, strip_private
from repro.visual.metrics import average_relative_error, max_relative_error

__all__ = ["run"]

_METHODS = ("exact", "akde", "zorder", "karl", "quad")


def run(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "home",
    eps: float = 0.01,
    image_dir: str | None = None,
    methods: Sequence[str] = _METHODS,
) -> ExperimentResult:
    """Measure per-method εKDV quality; optionally save the colour maps."""
    scale = get_scale(scale)
    renderer = make_renderer(dataset, scale.n_points, scale.resolution, seed=seed)
    exact = renderer.render_exact()
    vmax = float(exact.max())
    # Pixels a million times dimmer than the hottest one are visually
    # blank; below that floor relative error is meaningless (see metrics).
    floor = 1e-6 * vmax
    rows = []
    for method in methods:
        row = eps_row(renderer, method, eps, dataset=dataset)
        image = row.pop("_image")
        row["avg_rel_error"] = average_relative_error(image, exact, floor=floor)
        row["max_rel_error"] = max_relative_error(image, exact, floor=floor)
        if image_dir is not None:
            path = f"{image_dir}/fig19_{dataset}_{method}.png"
            renderer.save_density_png(image, path)
            row["png"] = path
        rows.append(row)
    return ExperimentResult(
        experiment="fig19",
        description="eKDV quality across methods (eps = 0.01, home dataset)",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "eps": eps,
            "exact_max_density": vmax,
        },
    )
