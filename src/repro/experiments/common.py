"""Shared experiment infrastructure: scale presets, timing, result tables.

The paper runs on 0.17M-7M points at up to 2560 x 1920 pixels in C++;
this pure-Python reproduction uses scaled-down presets chosen so every
experiment finishes on a laptop while preserving the comparisons' shape.
Every experiment takes a ``scale`` argument so a patient user can re-run
closer to paper scale (``"large"``).
"""

from __future__ import annotations

import csv
import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import UnknownNameError

if TYPE_CHECKING:
    import os

    Row = dict[str, Any]

__all__ = [
    "ScalePreset",
    "SCALE_PRESETS",
    "get_scale",
    "ExperimentResult",
    "timed",
    "format_table",
    "trace_metadata",
]


class ScalePreset:
    """A bundle of experiment sizes.

    Attributes
    ----------
    name:
        Preset name.
    n_points:
        Default dataset size.
    resolution:
        Default ``(width, height)`` pixel grid.
    eps_values:
        The relative errors swept by the εKDV experiments (the paper
        sweeps 0.01-0.05).
    tau_offsets:
        Threshold offsets ``k`` of ``tau = mu + k * sigma`` (the paper's
        seven values, Section 7.2).
    size_sweep:
        Dataset sizes for the scalability experiment (Figure 17).
    resolution_sweep:
        Grids for the resolution experiment (Figure 16).
    dims_sweep:
        Dimensionalities for the KDE throughput experiment (Figure 24).
    """

    __slots__ = (
        "name",
        "n_points",
        "resolution",
        "eps_values",
        "tau_offsets",
        "size_sweep",
        "resolution_sweep",
        "dims_sweep",
    )

    def __init__(
        self,
        name: str,
        n_points: int,
        resolution: tuple[int, int],
        eps_values: Sequence[float],
        tau_offsets: Sequence[float],
        size_sweep: Sequence[int],
        resolution_sweep: Sequence[tuple[int, int]],
        dims_sweep: Sequence[int],
    ) -> None:
        self.name = name
        self.n_points = n_points
        self.resolution = resolution
        self.eps_values = list(eps_values)
        self.tau_offsets = list(tau_offsets)
        self.size_sweep = list(size_sweep)
        self.resolution_sweep = list(resolution_sweep)
        self.dims_sweep = list(dims_sweep)

    def __repr__(self) -> str:
        return f"ScalePreset({self.name!r}, n={self.n_points}, res={self.resolution})"


_FULL_EPS = (0.01, 0.02, 0.03, 0.04, 0.05)
_FULL_TAU = (-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3)

#: Presets: "smoke" keeps the full test suite fast; "small" is the
#: default for the benchmark harness; "medium"/"large" approach paper
#: shape at increasing cost.
SCALE_PRESETS: dict[str, ScalePreset] = {
    "smoke": ScalePreset(
        name="smoke",
        n_points=1_500,
        resolution=(16, 12),
        eps_values=(0.01, 0.05),
        tau_offsets=(-0.2, 0.0, 0.2),
        size_sweep=(500, 1_000, 1_500),
        resolution_sweep=((8, 6), (16, 12)),
        dims_sweep=(2, 4),
    ),
    "small": ScalePreset(
        name="small",
        n_points=8_000,
        resolution=(40, 30),
        eps_values=_FULL_EPS,
        tau_offsets=_FULL_TAU,
        size_sweep=(2_000, 4_000, 6_000, 8_000),
        resolution_sweep=((20, 15), (40, 30), (80, 60)),
        dims_sweep=(2, 4, 6),
    ),
    "medium": ScalePreset(
        name="medium",
        n_points=40_000,
        resolution=(96, 72),
        eps_values=_FULL_EPS,
        tau_offsets=_FULL_TAU,
        size_sweep=(10_000, 20_000, 30_000, 40_000),
        resolution_sweep=((24, 18), (48, 36), (96, 72), (192, 144)),
        dims_sweep=(2, 4, 6, 8, 10),
    ),
    "large": ScalePreset(
        name="large",
        n_points=150_000,
        resolution=(160, 120),
        eps_values=_FULL_EPS,
        tau_offsets=_FULL_TAU,
        size_sweep=(25_000, 75_000, 125_000, 150_000),
        resolution_sweep=((40, 30), (80, 60), (160, 120), (320, 240)),
        dims_sweep=(2, 4, 6, 8, 10),
    ),
}


def get_scale(scale: str | ScalePreset) -> ScalePreset:
    """Resolve a preset name or instance to a :class:`ScalePreset`."""
    if isinstance(scale, ScalePreset):
        return scale
    try:
        return SCALE_PRESETS[str(scale).lower()]
    except KeyError:
        known = ", ".join(sorted(SCALE_PRESETS))
        raise UnknownNameError(f"unknown scale {scale!r}; available: {known}") from None


def timed(
    callable_: Callable[..., Any], *args: Any, **kwargs: Any
) -> tuple[Any, float]:
    """Run ``callable_`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - start


def trace_metadata() -> dict[str, Any] | None:
    """Aggregates of the active tracer, or ``None`` when tracing is off.

    A JSON-ready snapshot of the tracer's metric registry (stop-rule
    counters, refinement-depth / frontier-size / tile-latency histogram
    summaries) that experiment runs attach to their
    :attr:`ExperimentResult.metadata` under ``"trace"`` — so a
    ``REPRO_TRACE=1`` experiment run documents its own engine behaviour.
    Aggregates are cumulative over the tracer's lifetime.
    """
    from repro.obs.runtime import current_tracer

    tracer = current_tracer()
    if tracer is None:
        return None
    return tracer.summary()


def format_table(rows: Sequence[Row], columns: Sequence[str] | None = None) -> str:
    """Format dict-rows as an aligned text table.

    Heterogeneous rows are supported: the default column set is the
    union of all row keys in first-seen order, with ``-`` for holes.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []  # type: ignore[assignment]
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in rendered
    ]
    return "\n".join([header, separator, *body])


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:  # lint: allow-float-eq -- display formatting only
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class ExperimentResult:
    """Rows plus metadata of one experiment run.

    Attributes
    ----------
    experiment:
        Identifier (e.g. ``"fig14"``).
    description:
        One-line statement of what the paper figure shows.
    rows:
        List of dicts, one per plotted point/series entry.
    metadata:
        Scale, seed, and any experiment-specific settings.
    """

    def __init__(
        self,
        experiment: str,
        description: str,
        rows: Sequence[Row],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.experiment = experiment
        self.description = description
        self.rows = list(rows)
        self.metadata = dict(metadata or {})

    def to_table(self, columns: Sequence[str] | None = None) -> str:
        """Aligned text table of the rows."""
        return format_table(self.rows, columns)

    def save(self, out_dir: str | os.PathLike[str]) -> tuple[Path, Path]:
        """Write ``<experiment>.csv`` and ``<experiment>.json`` under a dir."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / f"{self.experiment}.json"
        payload = {
            "experiment": self.experiment,
            "description": self.description,
            "metadata": self.metadata,
            "rows": self.rows,
        }
        json_path.write_text(json.dumps(payload, indent=2, default=str))
        csv_path = out_dir / f"{self.experiment}.csv"
        if self.rows:
            # Rows may be heterogeneous (e.g. eps rows and tau rows in the
            # same experiment); the header is the union in first-seen order.
            columns: list[str] = []
            for row in self.rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            with csv_path.open("w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=columns, restval="")
                writer.writeheader()
                writer.writerows(self.rows)
        return json_path, csv_path

    def filter(self, **matches: Any) -> list[Row]:
        """Rows whose columns equal every given value."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in matches.items())
        ]

    def __repr__(self) -> str:
        return f"ExperimentResult({self.experiment!r}, rows={len(self.rows)})"
