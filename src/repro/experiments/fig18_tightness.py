"""Figure 18 — bound values versus refinement iteration (tightness study).

The paper samples the pixel with the highest density in the *home*
dataset and plots the global lower/upper bounds of KARL and QUAD per
iteration (εKDV, ε = 0.01): QUAD's bounds close and its loop stops
significantly earlier. Rows here are the per-iteration traces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import make_renderer, strip_private

__all__ = ["run"]


def run(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "home",
    eps: float = 0.01,
    methods: Sequence[str] = ("karl", "quad"),
) -> ExperimentResult:
    """Trace the bound refinement on the hottest pixel."""
    scale = get_scale(scale)
    renderer = make_renderer(dataset, scale.n_points, scale.resolution, seed=seed)
    exact = renderer.render_exact()
    iy, ix = np.unravel_index(int(np.argmax(exact)), exact.shape)
    query = renderer.grid.pixel_center(ix, iy)
    rows = []
    stop_iterations = {}
    for method_name in methods:
        method = renderer.get_method(method_name)
        value, trace = method.query_eps_traced(query, eps)
        stop_iterations[method_name] = trace.iterations - 1
        for iteration, (lb, ub) in enumerate(zip(trace.lowers, trace.uppers)):
            rows.append(
                {
                    "method": method_name,
                    "iteration": iteration,
                    "lower_bound": lb,
                    "upper_bound": ub,
                    "gap": ub - lb,
                }
            )
    return ExperimentResult(
        experiment="fig18",
        description="bound values vs iteration on the hottest pixel (home)",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "eps": eps,
            "pixel": [int(ix), int(iy)],
            "exact_density": float(exact[iy, ix]),
            "stop_iterations": stop_iterations,
        },
    )
