"""Figure 20 — progressive visualization quality versus time budget.

The paper runs the progressive framework with EXACT, aKDE, KARL, Z-order
and QUAD for five time budgets (0.01 s to 6.25 s) and plots the average
relative error of the partial colour map against the exact map; QUAD
evaluates the most pixels per budget and so has the lowest error.

Budgets here are scaled to the preset (Python is slower per pixel, but
the *ordering* of methods at equal budget is the reproduced claim).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import DEFAULT_LEAF_SIZE, make_renderer, strip_private
from repro.visual.metrics import average_relative_error
from repro.visual.progressive import ProgressiveRenderer

__all__ = ["run"]

_METHODS = ("exact", "akde", "zorder", "karl", "quad")
#: Geometric budget ladder mirroring the paper's 0.01..6.25 s series.
_DEFAULT_BUDGETS = (0.01, 0.05, 0.25, 1.25)


def run(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "home",
    eps: float = 0.01,
    budgets: Sequence[float] = _DEFAULT_BUDGETS,
    methods: Sequence[str] = _METHODS,
) -> ExperimentResult:
    """One row per (method, time budget) with the achieved quality."""
    scale = get_scale(scale)
    renderer = make_renderer(dataset, scale.n_points, scale.resolution, seed=seed)
    exact = renderer.render_exact()
    floor = 1e-6 * float(exact.max())
    rows = []
    for method in methods:
        progressive = ProgressiveRenderer(
            renderer.points,
            kernel=renderer.kernel,
            gamma=renderer.gamma,
            weight=renderer.weight,
            method=method,
            eps=eps,
            grid=renderer.grid,
            leaf_size=DEFAULT_LEAF_SIZE,
        )
        result = progressive.run(
            time_budget=max(budgets), snapshot_times=list(budgets)
        )
        for snapshot in result.snapshots:
            rows.append(
                {
                    "method": method,
                    "budget_seconds": snapshot.label,
                    "pixels_evaluated": snapshot.pixels_evaluated,
                    "avg_rel_error": average_relative_error(snapshot.image, exact, floor=floor),
                    "dataset": dataset,
                }
            )
    return ExperimentResult(
        experiment="fig20",
        description="progressive visualization: avg relative error vs time budget",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "eps": eps,
            "budgets": list(budgets),
            "resolution": list(scale.resolution),
        },
    )
