"""Ablation studies of QUAD's design choices (beyond the paper's figures).

DESIGN.md calls out four design decisions the paper fixes without
measurement; each gets its own experiment here:

* ``tangent`` — the lower-bound tangent point ``t* = mean(x_i)``
  (Equation 3) versus the naive interval midpoint;
* ``ordering`` — best-first (bound-gap priority, the paper's Table 3)
  versus FIFO (breadth-first) node refinement;
* ``leaf`` — kd-tree leaf capacity;
* ``tightness`` — average per-node bound-gap ratios between the three
  bound families (quantifying Sections 4.2-4.3's "tighter than" claims).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bounds import make_bound_provider
from repro.data.bandwidth import scott_gamma
from repro.data.synthetic import load_dataset
from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import eps_row, make_renderer, strip_private
from repro.index.kdtree import KDTree
from repro.methods.quad import QUADMethod
from repro.visual.kdv import KDVRenderer

__all__ = ["run_tangent", "run_ordering", "run_leaf_size", "run_tightness"]


def run_tangent(
    scale: str = "small", seed: int = 0, dataset: str = "home", eps: float = 0.01
) -> ExperimentResult:
    """Mean versus midpoint tangent for the Gaussian lower bound."""
    scale = get_scale(scale)
    points = load_dataset(dataset, n=scale.n_points, seed=seed)
    rows = []
    for tangent in ("mean", "midpoint"):
        renderer = KDVRenderer(points, resolution=scale.resolution)
        method = QUADMethod(tangent=tangent)
        rows.append(eps_row(renderer, method, eps, tangent=tangent, dataset=dataset))
    return ExperimentResult(
        experiment="ablation_tangent",
        description="QUAD Gaussian lower bound: tangent at mean vs midpoint",
        rows=strip_private(rows),
        metadata={"scale": scale.name, "seed": seed, "dataset": dataset, "eps": eps},
    )


def run_ordering(
    scale: str = "small", seed: int = 0, dataset: str = "home", eps: float = 0.01
) -> ExperimentResult:
    """Best-first (gap) versus FIFO refinement order."""
    scale = get_scale(scale)
    points = load_dataset(dataset, n=scale.n_points, seed=seed)
    rows = []
    for ordering in ("gap", "fifo"):
        renderer = KDVRenderer(points, resolution=scale.resolution, ordering=ordering)
        rows.append(eps_row(renderer, "quad", eps, ordering=ordering, dataset=dataset))
    return ExperimentResult(
        experiment="ablation_ordering",
        description="refinement order: bound-gap priority vs FIFO",
        rows=strip_private(rows),
        metadata={"scale": scale.name, "seed": seed, "dataset": dataset, "eps": eps},
    )


def run_leaf_size(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "crime",
    eps: float = 0.01,
    leaf_sizes: Sequence[int] = (16, 64, 256, 1024),
) -> ExperimentResult:
    """kd-tree leaf capacity sweep."""
    scale = get_scale(scale)
    rows = []
    for leaf_size in leaf_sizes:
        renderer = make_renderer(
            dataset, scale.n_points, scale.resolution, seed=seed, leaf_size=leaf_size
        )
        rows.append(eps_row(renderer, "quad", eps, leaf_size=leaf_size, dataset=dataset))
    return ExperimentResult(
        experiment="ablation_leaf",
        description="kd-tree leaf capacity vs eKDV time",
        rows=strip_private(rows),
        metadata={"scale": scale.name, "seed": seed, "dataset": dataset, "eps": eps},
    )


def run_tightness(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "home",
    kernel: str = "gaussian",
    samples: int = 30,
) -> ExperimentResult:
    """Per-node bound-gap ratios: quad vs linear vs baseline.

    Quantifies the theorem-level claims: gap(QUAD) <= gap(KARL) <=
    gap(baseline) per node, reporting mean/median gap ratios over random
    query-node pairs.
    """
    scale = get_scale(scale)
    points = load_dataset(dataset, n=scale.n_points, seed=seed)
    gamma = scott_gamma(points, kernel)
    tree = KDTree(points, leaf_size=256)
    provider_names = (
        ("baseline", "linear", "quad") if kernel == "gaussian" else ("baseline", "quad")
    )
    providers = {
        name: make_bound_provider(name, kernel, gamma, 1.0) for name in provider_names
    }
    rng = np.random.default_rng(seed)
    gaps = {name: [] for name in providers}
    for __ in range(samples):
        query = points[rng.integers(points.shape[0])]
        q_list = query.tolist()
        q_sq = float(query @ query)
        for node in tree.nodes():
            for name, provider in providers.items():
                lb, ub = provider.node_bounds(node, q_list, q_sq)
                gaps[name].append(ub - lb)
    arrays = {name: np.asarray(values) for name, values in gaps.items()}
    baseline = arrays["baseline"]
    keep = baseline > 1e-18
    rows = []
    for name, values in arrays.items():
        ratio = values[keep] / baseline[keep]
        rows.append(
            {
                "provider": name,
                "mean_gap_ratio_vs_baseline": float(ratio.mean()),
                "median_gap_ratio_vs_baseline": float(np.median(ratio)),
                "kernel": kernel,
                "dataset": dataset,
            }
        )
    return ExperimentResult(
        experiment="ablation_tightness",
        description="per-node bound gap ratios across bound families",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "kernel": kernel,
            "samples": samples,
        },
    )
