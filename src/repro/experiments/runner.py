"""Experiment registry and orchestration."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence, Tuple, Union

from repro.errors import ReproError, UnknownNameError
from repro.experiments import ablations
from repro.experiments.common import trace_metadata
from repro.experiments import (
    fig02_illustration,
    fig14_eps_time,
    fig15_tau_time,
    fig16_resolution,
    fig17_scalability,
    fig18_tightness,
    fig19_quality,
    fig20_progressive_error,
    fig21_progressive_snapshots,
    fig22_other_kernels_eps,
    fig23_other_kernels_tau,
    fig24_dimensionality,
    fig27_exponential,
)

if TYPE_CHECKING:
    import os

    from repro.experiments.common import ExperimentResult

__all__ = [
    "EXPERIMENT_REGISTRY",
    "available_experiments",
    "run_experiment",
    "run_experiments",
]

#: Experiment id -> callable(scale=..., seed=..., **kwargs) -> ExperimentResult.
EXPERIMENT_REGISTRY: dict[str, Callable[..., Any]] = {
    "fig02": fig02_illustration.run,
    "fig14": fig14_eps_time.run,
    "fig15": fig15_tau_time.run,
    "fig16": fig16_resolution.run,
    "fig17": fig17_scalability.run,
    "fig18": fig18_tightness.run,
    "fig19": fig19_quality.run,
    "fig20": fig20_progressive_error.run,
    "fig21": fig21_progressive_snapshots.run,
    "fig22": fig22_other_kernels_eps.run,
    "fig23": fig23_other_kernels_tau.run,
    "fig24": fig24_dimensionality.run,
    "fig27": fig27_exponential.run,
    "ablation_tangent": ablations.run_tangent,
    "ablation_ordering": ablations.run_ordering,
    "ablation_leaf": ablations.run_leaf_size,
    "ablation_tightness": ablations.run_tightness,
}


def available_experiments() -> list[str]:
    """Sorted experiment identifiers."""
    return sorted(EXPERIMENT_REGISTRY)


def run_experiment(
    name: str,
    scale: str = "small",
    seed: int = 0,
    out_dir: str | os.PathLike[str] | None = None,
    **kwargs: Any,
) -> ExperimentResult:
    """Run one experiment by id, optionally saving its result files."""
    try:
        runner = EXPERIMENT_REGISTRY[str(name).lower()]
    except KeyError:
        known = ", ".join(available_experiments())
        raise UnknownNameError(f"unknown experiment {name!r}; available: {known}") from None
    result = runner(scale=scale, seed=seed, **kwargs)
    trace = trace_metadata()
    if trace is not None:
        result.metadata.setdefault("trace", trace)
    if out_dir is not None:
        result.save(out_dir)
    return result


def run_experiments(
    names: Sequence[str],
    scale: str = "small",
    seed: int = 0,
    out_dir: str | os.PathLike[str] | None = None,
    *,
    keep_going: bool = False,
    **kwargs: Any,
) -> Iterator[Tuple[str, Union[ExperimentResult, ReproError]]]:
    """Run a batch of experiments, optionally surviving failures.

    Yields ``(name, outcome)`` pairs in order, where ``outcome`` is the
    :class:`ExperimentResult` on success. With ``keep_going=True`` a
    failing experiment yields its :class:`~repro.errors.ReproError`
    instead and the batch continues (the CLI's ``--keep-going``);
    without it the error propagates immediately, aborting the batch.
    ``KeyboardInterrupt`` always propagates — cancelling the batch is
    the user's call, not a failure to recover from.
    """
    for name in names:
        try:
            result = run_experiment(
                name, scale=scale, seed=seed, out_dir=out_dir, **kwargs
            )
        except ReproError as error:
            if not keep_going:
                raise
            yield name, error
            continue
        yield name, result
