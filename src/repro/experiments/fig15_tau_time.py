"""Figure 15 — τKDV response time varying the threshold τ.

The paper selects seven thresholds ``mu + k sigma`` (k in ±0.3) of the
per-pixel density distribution and compares tKDC, KARL and QUAD; QUAD is
at least an order of magnitude faster regardless of τ.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import (
    DATASETS,
    TAU_METHODS,
    make_renderer,
    strip_private,
    tau_row,
)

__all__ = ["run"]


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = DATASETS,
    methods: Sequence[str] = TAU_METHODS,
    engine: str = "scalar",
) -> ExperimentResult:
    """Run the τ sweep; one row per (dataset, method, tau offset).

    ``engine`` selects the refinement schedule of the index-based
    methods (``"scalar"`` or ``"batch"``).
    """
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        renderer = make_renderer(
            dataset, scale.n_points, scale.resolution, seed=seed, engine=engine
        )
        mu, sigma = renderer.density_stats()
        for offset in scale.tau_offsets:
            tau = max(mu + offset * sigma, 1e-300)
            label = f"mu{offset:+.1f}sigma"
            for method in methods:
                rows.append(tau_row(renderer, method, tau, label, dataset=dataset))
    return ExperimentResult(
        experiment="fig15",
        description="tKDV response time varying the threshold tau",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "resolution": list(scale.resolution),
            "kernel": "gaussian",
            "engine": engine,
        },
    )
