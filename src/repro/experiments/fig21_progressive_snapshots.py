"""Figure 21 — QUAD-based progressive snapshots at increasing budgets.

The paper shows five colour maps of the home dataset rendered by QUAD
under the progressive framework at t = 0.02/0.05/0.2/0.5/2 s: by 0.5 s
the map is already "reasonable". This module captures the same snapshot
series, reports how closely each approximates the final map, and can
save the PNGs.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import DEFAULT_LEAF_SIZE, make_renderer, strip_private
from repro.visual.colormap import get_colormap
from repro.visual.image import write_png
from repro.visual.metrics import average_relative_error
from repro.visual.progressive import ProgressiveRenderer

__all__ = ["run"]

_DEFAULT_TIMES = (0.02, 0.05, 0.2, 0.5, 2.0)


def run(
    scale: str = "small",
    seed: int = 0,
    dataset: str = "home",
    eps: float = 0.01,
    times: Sequence[float] = _DEFAULT_TIMES,
    image_dir: str | None = None,
) -> ExperimentResult:
    """One row per snapshot time with quality against the exact map."""
    scale = get_scale(scale)
    renderer = make_renderer(dataset, scale.n_points, scale.resolution, seed=seed)
    exact = renderer.render_exact()
    floor = 1e-6 * float(exact.max())
    progressive = ProgressiveRenderer(
        renderer.points,
        kernel=renderer.kernel,
        gamma=renderer.gamma,
        weight=renderer.weight,
        method="quad",
        eps=eps,
        grid=renderer.grid,
        leaf_size=DEFAULT_LEAF_SIZE,
    )
    result = progressive.run(time_budget=max(times), snapshot_times=list(times))
    rows = []
    colormap = get_colormap("density")
    for snapshot in result.snapshots:
        row = {
            "time_seconds": snapshot.label,
            "pixels_evaluated": snapshot.pixels_evaluated,
            "coverage": snapshot.pixels_evaluated / renderer.grid.num_pixels,
            "avg_rel_error": average_relative_error(snapshot.image, exact, floor=floor),
            "dataset": dataset,
        }
        if image_dir is not None:
            path = f"{image_dir}/fig21_{dataset}_t{snapshot.label}.png"
            write_png(path, colormap.apply(snapshot.image, log_scale=True))
            row["png"] = path
        rows.append(row)
    return ExperimentResult(
        experiment="fig21",
        description="QUAD progressive snapshots at increasing time budgets",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "dataset": dataset,
            "eps": eps,
            "times": list(times),
        },
    )
