"""Workload builders shared by the figure experiments.

Every efficiency experiment measures the *online* stage the way the
paper does: the index/sample build is offline (the renderer caches
fitted methods), and each measured row is one full colour-map render.
Rows carry both wall-clock seconds and the hardware-neutral work
counters (kernel point evaluations and bound evaluations), because pure
Python wall-clock compresses constant-factor differences that the
paper's C++ makes visible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.data.synthetic import load_dataset
from repro.experiments.common import timed
from repro.visual.kdv import KDVRenderer
from repro.visual.request import RenderRequest

if TYPE_CHECKING:
    from repro.methods.base import Method

    Row = dict[str, Any]

__all__ = [
    "make_renderer",
    "eps_row",
    "tau_row",
    "EPS_METHODS",
    "TAU_METHODS",
    "DATASETS",
    "DEFAULT_LEAF_SIZE",
]

#: The εKDV competitor line-up of Figures 14, 16, 17a and 22.
EPS_METHODS = ("akde", "karl", "quad", "zorder")
#: The τKDV competitor line-up of Figures 15, 17b, 23 and 27.
TAU_METHODS = ("tkdc", "karl", "quad")
#: The paper's four datasets (Table 5), as synthetic analogues.
DATASETS = ("elnino", "crime", "home", "hep")
#: Leaf capacity used by the experiments (ablated separately).
DEFAULT_LEAF_SIZE = 256


def make_renderer(
    dataset: str,
    n: int,
    resolution: tuple[int, int],
    kernel: str = "gaussian",
    seed: int = 0,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    engine: str = "scalar",
) -> KDVRenderer:
    """A :class:`KDVRenderer` over a synthetic dataset analogue.

    ``engine`` selects the refinement schedule of index-based methods:
    ``"scalar"`` (the paper's per-pixel loop) or ``"batch"`` (the
    batched frontier engine); sampling methods ignore it.
    """
    points = load_dataset(dataset, n=n, seed=seed)
    return KDVRenderer(
        points,
        resolution=resolution,
        kernel=kernel,
        leaf_size=leaf_size,
        engine=engine,
    )


def _work_columns(method: Method) -> Row:
    """Engine counters of an indexed method, or sampling cost for Z-order."""
    stats = getattr(method, "stats", None)
    if stats is not None:
        return {
            "iterations": stats.iterations,
            "node_evaluations": stats.node_evaluations,
            "point_evaluations": stats.point_evaluations,
        }
    return {"iterations": None, "node_evaluations": None, "point_evaluations": None}


def eps_row(
    renderer: KDVRenderer, method_name: str | Method, eps: float, **extra: Any
) -> Row:
    """Render one εKDV colour map and return the measurement row.

    ``method_name`` may also be a pre-built
    :class:`~repro.methods.base.Method` instance (the ablations use
    customised QUAD variants).
    """
    method = renderer.get_method(method_name)
    stats = getattr(method, "stats", None)
    if stats is not None:
        stats.reset()
    image, seconds = timed(renderer.render, RenderRequest.for_eps(eps, method))
    row = {
        "method": method.name,
        "eps": eps,
        "seconds": round(seconds, 6),
    }
    row.update(_work_columns(method))
    if method.name == "zorder":
        sample, __ = method.sample_for(eps)
        row["point_evaluations"] = sample.shape[0] * renderer.grid.num_pixels
    row.update(extra)
    row["_image"] = image
    return row


def tau_row(
    renderer: KDVRenderer,
    method_name: str | Method,
    tau: float,
    tau_label: float,
    **extra: Any,
) -> Row:
    """Render one τKDV mask and return the measurement row."""
    method = renderer.get_method(method_name)
    stats = getattr(method, "stats", None)
    if stats is not None:
        stats.reset()
    mask, seconds = timed(renderer.render, RenderRequest.for_tau(tau, method))
    row = {
        "method": method.name,
        "tau": tau_label,
        "seconds": round(seconds, 6),
    }
    row.update(_work_columns(method))
    row.update(extra)
    row["_mask"] = mask
    return row


def strip_private(rows: Sequence[Row]) -> list[Row]:
    """Drop the in-memory image/mask columns before tabulating/saving."""
    cleaned = []
    for row in rows:
        cleaned.append({k: v for k, v in row.items() if not k.startswith("_")})
    return cleaned
