"""Experiment harness reproducing every table and figure of Section 7.

Each ``figNN_*`` module exposes ``run(scale=..., seed=...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows are the
series the corresponding paper figure plots. ``repro.experiments.runner``
holds the registry; the CLI (``python -m repro``) drives it.
"""

from repro.experiments.common import (
    SCALE_PRESETS,
    ExperimentResult,
    ScalePreset,
    get_scale,
)
from repro.experiments.runner import (
    EXPERIMENT_REGISTRY,
    available_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ScalePreset",
    "SCALE_PRESETS",
    "get_scale",
    "EXPERIMENT_REGISTRY",
    "available_experiments",
    "run_experiment",
]
