"""Figure 27 (appendix 9.7) — exponential kernel, εKDV and τKDV.

The paper's appendix repeats the other-kernel efficiency experiments for
the exponential kernel on crime and hep: aKDE/Z-order/QUAD for ε, and
tKDC/QUAD for τ (tKDC times out entirely on hep in the paper).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, get_scale
from repro.experiments.workload import eps_row, make_renderer, strip_private, tau_row

__all__ = ["run"]

_EPS_METHODS = ("akde", "zorder", "quad")
_TAU_METHODS = ("tkdc", "quad")
_DATASETS = ("crime", "hep")


def run(
    scale: str = "small", seed: int = 0, datasets: Sequence[str] = _DATASETS
) -> ExperimentResult:
    """Both sweeps with kernel = exponential; ``operation`` column set."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        renderer = make_renderer(
            dataset, scale.n_points, scale.resolution, kernel="exponential", seed=seed
        )
        for eps in scale.eps_values:
            for method in _EPS_METHODS:
                rows.append(
                    eps_row(renderer, method, eps, dataset=dataset, operation="eps")
                )
        mu, sigma = renderer.density_stats()
        for offset in scale.tau_offsets:
            tau = max(mu + offset * sigma, 1e-300)
            label = f"mu{offset:+.1f}sigma"
            for method in _TAU_METHODS:
                rows.append(
                    tau_row(renderer, method, tau, label, dataset=dataset, operation="tau")
                )
    return ExperimentResult(
        experiment="fig27",
        description="exponential kernel: eKDV and tKDV response times",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "resolution": list(scale.resolution),
            "kernel": "exponential",
        },
    )
