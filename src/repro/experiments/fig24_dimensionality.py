"""Figure 24 — KDE throughput (queries/sec) versus dimensionality.

Section 7.7 leaves the visualization setting: the paper projects the
home and hep datasets onto 2-10 PCA dimensions and measures εKDV query
throughput for SCAN (= EXACT), aKDE, KARL and QUAD with the Gaussian
kernel (ε = 0.01). Bound-based throughput decays with dimensionality
(the curse the paper discusses), but QUAD stays ahead up to d = 10.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.projection import pca_project
from repro.data.synthetic import hep_like, home_like
from repro.experiments.common import ExperimentResult, get_scale, timed
from repro.experiments.workload import strip_private
from repro.methods.registry import create_method
from repro.core.kde import KernelDensity

__all__ = ["run"]

_METHODS = ("exact", "akde", "karl", "quad")
#: Source generators: both produce arbitrary dimensionality to project.
_SOURCES = {"home": home_like, "hep": hep_like}


def _source_points(dataset, n, dims, seed):
    """Points of the requested dimensionality (synthesised, then PCA'd)."""
    if dataset == "hep":
        raw = hep_like(n, seed=seed, dims=max(dims, 2))
    else:
        # The original sensor dataset has many channels; synthesise extra
        # channels as noisy linear mixtures of the two base attributes so
        # the PCA projection has real correlated structure to find.
        rng = np.random.default_rng(seed)
        base = home_like(n, seed=seed)
        extra = max(dims - 2, 0)
        if extra:
            mixtures = base @ rng.normal(size=(2, extra)) * 0.3
            mixtures += rng.normal(size=(n, extra))
            raw = np.column_stack([base, mixtures])
        else:
            raw = base
    return pca_project(raw, dims)


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = ("home", "hep"),
    eps: float = 0.01,
    queries: int | None = None,
    methods: Sequence[str] = _METHODS,
) -> ExperimentResult:
    """One row per (dataset, dims, method) with throughput in queries/s."""
    scale = get_scale(scale)
    if queries is None:
        queries = max(20, scale.resolution[0] * scale.resolution[1] // 10)
    rows = []
    rng = np.random.default_rng(seed)
    for dataset in datasets:
        for dims in scale.dims_sweep:
            points = _source_points(dataset, scale.n_points, dims, seed)
            sample = points[rng.choice(points.shape[0], size=queries, replace=False)]
            jitter = points.std(axis=0) * 0.05
            query_points = sample + rng.normal(size=sample.shape) * jitter
            for method in methods:
                kde = KernelDensity(kernel="gaussian", method=create_method(method))
                kde.fit(points)
                __, seconds = timed(kde.density_eps, query_points, eps)
                rows.append(
                    {
                        "dataset": dataset,
                        "dims": dims,
                        "method": method,
                        "queries": queries,
                        "seconds": round(seconds, 6),
                        "throughput_qps": round(queries / seconds, 3) if seconds else None,
                    }
                )
    return ExperimentResult(
        experiment="fig24",
        description="KDE throughput (queries/sec) varying the dimensionality",
        rows=strip_private(rows),
        metadata={
            "scale": scale.name,
            "seed": seed,
            "n": scale.n_points,
            "eps": eps,
            "queries": queries,
        },
    )
