"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch every library failure with a single ``except`` clause while
still distinguishing specific failure modes when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain.

    Raised, for example, for a non-positive bandwidth parameter ``gamma``,
    a relative error ``eps <= 0``, or an empty point set.
    """


class UnsupportedKernelError(ReproError, ValueError):
    """A method was asked to use a kernel it cannot bound.

    The paper's Table 6 and Section 5.1 spell out which method supports
    which kernel; for instance KARL's linear bounds require the Gaussian
    kernel's squared-distance aggregate and cannot serve the triangular,
    cosine or exponential kernels in :math:`O(d)` time.
    """


class UnsupportedOperationError(ReproError, ValueError):
    """A method was asked for an operation it does not implement.

    For example, tKDC answers threshold (tau) queries only, and Scikit's
    kd-tree traversal answers approximate (eps) queries only.
    """


class NotFittedError(ReproError, RuntimeError):
    """An estimator method was used before :meth:`fit` was called."""


class UnknownNameError(ReproError, KeyError):
    """A registry lookup (kernel, method, dataset, experiment) failed."""
