"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch every library failure with a single ``except`` clause while
still distinguishing specific failure modes when needed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "DataValidationError",
    "UnsupportedKernelError",
    "UnsupportedOperationError",
    "NotFittedError",
    "UnknownNameError",
    "InvariantViolation",
    "CheckpointError",
    "DataQualityWarning",
    "DatasetNotFoundError",
    "ServiceOverloadedError",
    "CircuitOpenError",
    "WorkerPoolBrokenError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain.

    Raised, for example, for a non-positive bandwidth parameter ``gamma``,
    a relative error ``eps <= 0``, or an empty point set.
    """


class DataValidationError(InvalidParameterError):
    """An input dataset failed validation (non-finite or empty rows).

    Subclasses :class:`InvalidParameterError` so existing callers that
    catch the broader class keep working, while carrying structured
    detail about *what* was wrong so services can report it without
    parsing the message.

    Attributes
    ----------
    nonfinite_rows:
        Number of rows containing NaN/Inf coordinates (0 if the
        failure was something else).
    duplicate_fraction:
        Fraction of rows that are exact duplicates of another row, when
        computed (else ``None``).
    total_rows:
        Row count of the offending dataset.
    """

    def __init__(
        self,
        message: str,
        *,
        nonfinite_rows: int = 0,
        duplicate_fraction: float | None = None,
        total_rows: int = 0,
    ) -> None:
        super().__init__(message)
        self.nonfinite_rows = nonfinite_rows
        self.duplicate_fraction = duplicate_fraction
        self.total_rows = total_rows


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file could not be used (corrupt or mismatched).

    Raised on resume when the checkpoint's signature — dataset shape,
    kernel, bandwidth, grid, operation parameters — does not match the
    render being resumed, or when the file itself is unreadable.
    Resuming from a mismatched checkpoint would silently splice pixels
    from a *different* render into the image, so this is never
    downgraded to a warning.
    """


class DataQualityWarning(UserWarning):
    """A dataset is usable but statistically suspect.

    Emitted (via :func:`warnings.warn`) for duplicate-heavy datasets,
    where kernel density estimates remain well-defined but bandwidth
    selectors behave poorly, and when non-finite rows are dropped on
    request rather than rejected.
    """


class UnsupportedKernelError(ReproError, ValueError):
    """A method was asked to use a kernel it cannot bound.

    The paper's Table 6 and Section 5.1 spell out which method supports
    which kernel; for instance KARL's linear bounds require the Gaussian
    kernel's squared-distance aggregate and cannot serve the triangular,
    cosine or exponential kernels in :math:`O(d)` time.
    """


class UnsupportedOperationError(ReproError, ValueError):
    """A method was asked for an operation it does not implement.

    For example, tKDC answers threshold (tau) queries only, and Scikit's
    kd-tree traversal answers approximate (eps) queries only.
    """


class NotFittedError(ReproError, RuntimeError):
    """An estimator method was used before :meth:`fit` was called."""


class UnknownNameError(ReproError, KeyError):
    """A registry lookup (kernel, method, dataset, experiment) failed."""


class DatasetNotFoundError(UnknownNameError):
    """The tile service was asked for a dataset id it does not hold.

    Subclasses :class:`UnknownNameError` so registry-style callers keep
    working; the HTTP layer maps it to a 404.
    """


class ServiceOverloadedError(ReproError, RuntimeError):
    """The tile service's bounded render queue is full (backpressure).

    The HTTP layer maps it to a 503 with ``Retry-After``; callers should
    back off rather than retry immediately.
    """


class CircuitOpenError(ServiceOverloadedError):
    """A dataset's circuit breaker is open: rendering is suspended.

    Raised by the tile service after a dataset accumulates consecutive
    render failures, so one pathological dataset cannot monopolise the
    worker pool. Subclasses :class:`ServiceOverloadedError` because the
    remedy is identical — back off and retry later (HTTP 503 with
    ``Retry-After``); the breaker half-opens on its own after the reset
    timeout and probes with a single request.
    """


class WorkerPoolBrokenError(ReproError, RuntimeError):
    """The process worker pool lost a worker mid-render (OOM, SIGKILL).

    ``concurrent.futures`` poisons the whole ``ProcessPoolExecutor``
    when any worker dies abruptly; this wraps that condition in a typed,
    retryable error instead of leaking the raw ``BrokenProcessPool``
    traceback. The supervised executor rebuilds the pool and replays the
    lost tiles transparently — this error surfaces only when supervision
    is disabled or its rebuild budget is exhausted. The HTTP layer maps
    it to a 503 (the *next* render gets a fresh pool), never a 500.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A tile render exceeded its per-request deadline budget.

    By default the degraded (partial-envelope) image is *not* returned —
    and never cached — because the service contract is that every served
    tile is a complete render. The HTTP layer maps it to a 504. Under
    the service's degrade-don't-fail policy the attached
    ``partial_values`` (best-so-far envelope midpoints / conservative
    τ mask, when the anytime path produced them) may be served instead,
    explicitly marked as degraded and never cached as fresh.

    Attributes
    ----------
    partial_values:
        Best-so-far tile value array from the anytime render that
        tripped the deadline, or ``None`` when no partial exists
        (non-indexed methods have no anytime path).
    pixels_resolved / pixels_total:
        How much of the tile had reached its stopping rule.
    """

    def __init__(
        self,
        message: str,
        *,
        partial_values: object | None = None,
        pixels_resolved: int = 0,
        pixels_total: int = 0,
    ) -> None:
        super().__init__(message)
        self.partial_values = partial_values
        self.pixels_resolved = int(pixels_resolved)
        self.pixels_total = int(pixels_total)


class InvariantViolation(ReproError, AssertionError):
    """A runtime soundness contract of the bound machinery failed.

    Raised only when invariant checking is enabled (the
    ``REPRO_CHECK_INVARIANTS`` environment toggle, see
    :mod:`repro.contracts`). A violation means a bound evaluation broke
    the correctness condition ``LB_R(q) <= F_R(q) <= UB_R(q)`` — the
    silent failure mode that makes εKDV/τKDV return wrong pixels while
    tests still pass — so it is never caught and repaired internally.

    Attributes
    ----------
    invariant:
        Short identifier of the violated contract (e.g.
        ``"bound-order"``, ``"leaf-containment"``,
        ``"monotone-tightening"``, ``"kernel-nonnegative"``,
        ``"eps-agreement"``).
    bound:
        Name of the offending bound provider / kernel / method class.
    node:
        Index-node identifier involved, if any.
    query:
        Query coordinates involved, if any.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "unspecified",
        bound: str | None = None,
        node: int | None = None,
        query: object | None = None,
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.bound = bound
        self.node = node
        self.query = query
