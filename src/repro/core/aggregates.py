"""Per-node aggregate statistics powering the O(d)/O(d^2) bound evaluation.

The key identity behind KARL's linear bounds (the paper's Section 3.3) is

.. math::

    \\sum_{p_i} dist(q, p_i)^2 = |P| \\, \\lVert q \\rVert^2 - 2 q \\cdot a_P + b_P

with ``a_P = sum(p_i)`` and ``b_P = sum(||p_i||^2)`` precomputed per node.
QUAD's Gaussian bounds additionally need the fourth moment (Lemma 3):

.. math::

    \\sum_{p_i} dist(q, p_i)^4 = |P| \\lVert q \\rVert^4
        - 4 \\lVert q \\rVert^2 (q \\cdot a_P) - 4 (q \\cdot v_P)
        + 2 \\lVert q \\rVert^2 b_P + h_P + 4 q^T C_P q

with ``v_P = sum(||p_i||^2 p_i)``, ``h_P = sum(||p_i||^4)`` and the
``d x d`` moment matrix ``C_P = sum(p_i p_i^T)``.

Numerical stability — a correctness-critical implementation detail the
paper leaves implicit: evaluated in *absolute* coordinates, the fourth
moment identity cancels catastrophically whenever the coordinate
magnitude dwarfs the point spread (latitude/longitude data is the
canonical offender: ``|P| ||q||^4 ~ 1e9`` against a true sum of
``~1e-6`` leaves zero significant digits, which silently breaks the
bound correctness guarantee). All moments here are therefore stored
**relative to the node's centroid**; the identities are
translation-invariant, the centred first moment is ~0, and every term
stays at the scale of the true distances. The evaluation methods shift
the query by the stored centroid on the fly.

The evaluation methods take the query as a plain Python list; the
refinement engine calls them millions of times per colour map, and
plain-float arithmetic is roughly an order of magnitude faster than
numpy scalar extraction at ``d <= 3``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro._types import FloatArray, PointLike

__all__ = ["NodeAggregates"]


class NodeAggregates:
    """Centroid-centred (optionally weighted) moment statistics.

    With per-point weights ``w_i >= 0`` every moment is the weighted sum
    (uniform weight 1 when none are given) — the form needed to support
    re-weighted samples, the paper's footnote 5. The bound formulas all
    generalise by substituting the total weight ``W = sum(w_i)`` for the
    point count, which :attr:`total_weight` carries.

    Attributes
    ----------
    n:
        Number of points ``|P|``.
    total_weight:
        ``sum(w_i)`` (equals ``n`` for unweighted data).
    center:
        The (weighted) centroid the moments are relative to.
    a:
        Centred first moment ``sum(w_i (p_i - c))`` (≈ 0 up to rounding,
        kept in the identities for exactness); list of ``d`` floats.
    b:
        Scalar ``sum(w_i ||p_i - c||^2)``.
    v:
        Third-moment vector ``sum(w_i ||p_i - c||^2 (p_i - c))``.
    h:
        Scalar ``sum(w_i ||p_i - c||^4)``.
    c:
        Row-major flattened ``d x d`` matrix
        ``sum(w_i (p_i - c)(p_i - c)^T)``.
    dims:
        Dimensionality ``d``.
    """

    __slots__ = (
        "n",
        "total_weight",
        "center",
        "a",
        "b",
        "v",
        "h",
        "c",
        "dims",
        "_arrays",
    )

    def __init__(
        self,
        n: int,
        center: Sequence[float],
        a: Sequence[float],
        b: float,
        v: Sequence[float],
        h: float,
        c: Sequence[float],
        dims: int,
        total_weight: float | None = None,
    ) -> None:
        self.n = int(n)
        self.total_weight = float(n if total_weight is None else total_weight)
        self.center = list(center)
        self.a = list(a)
        self.b = float(b)
        self.v = list(v)
        self.h = float(h)
        self.c = list(c)
        self.dims = int(dims)
        # Lazy numpy copies of the moments, built on the first batched
        # evaluation (the scalar fast paths keep using the plain lists).
        self._arrays: tuple[FloatArray, FloatArray, FloatArray, FloatArray] | None = None

    @classmethod
    def from_points(
        cls, points: PointLike, weights: PointLike | None = None
    ) -> NodeAggregates:
        """Centroid-centred aggregates of an ``(n, d)`` array.

        Parameters
        ----------
        points:
            Point array.
        weights:
            Optional non-negative per-point weights ``(n,)``; ``None``
            means uniform weight 1.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] < 1:
            raise InvalidParameterError("points must be a non-empty (n, d) array")
        if weights is None:
            total_weight = float(points.shape[0])
            center = points.mean(axis=0)
            centred = points - center
            sq_norms = np.einsum("ij,ij->i", centred, centred)
            a = centred.sum(axis=0)
            b = float(sq_norms.sum())
            v = (centred * sq_norms[:, None]).sum(axis=0)
            h = float(np.dot(sq_norms, sq_norms))
            c = centred.T @ centred
        else:
            weights = np.asarray(weights, dtype=np.float64).reshape(-1)
            if weights.shape[0] != points.shape[0]:
                raise InvalidParameterError(
                    f"weights length {weights.shape[0]} != points {points.shape[0]}"
                )
            if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
                raise InvalidParameterError("weights must be finite and >= 0")
            total_weight = float(weights.sum())
            if total_weight <= 0.0:
                raise InvalidParameterError("weights must not all be zero")
            center = (points * weights[:, None]).sum(axis=0) / total_weight
            centred = points - center
            sq_norms = np.einsum("ij,ij->i", centred, centred)
            a = (centred * weights[:, None]).sum(axis=0)
            b = float(np.dot(weights, sq_norms))
            v = (centred * (weights * sq_norms)[:, None]).sum(axis=0)
            h = float(np.dot(weights, sq_norms * sq_norms))
            c = (centred * weights[:, None]).T @ centred
        return cls(
            n=points.shape[0],
            center=center.tolist(),
            a=a.tolist(),
            b=b,
            v=v.tolist(),
            h=h,
            c=c.reshape(-1).tolist(),
            dims=points.shape[1],
            total_weight=total_weight,
        )

    def recentered(self, new_center: Sequence[float]) -> NodeAggregates:
        """The same moments expressed relative to ``new_center``.

        Uses the exact translation formulas for each moment (with shift
        ``s = c_old - c_new``, so centred points gain ``+ s``); needed to
        merge sibling aggregates whose centroids differ.
        """
        new_center = [float(value) for value in new_center]
        if len(new_center) != self.dims:
            raise InvalidParameterError("new_center has wrong dimensionality")
        s = [old - new for old, new in zip(self.center, new_center)]
        s_sq = sum(value * value for value in s)
        dims = self.dims
        # Every "count" in the translation formulas is sum of w_i.
        n = self.total_weight
        a = self.a
        v = self.v
        c = self.c
        s_dot_a = sum(s[j] * a[j] for j in range(dims))
        s_dot_v = sum(s[j] * v[j] for j in range(dims))
        # C s (matrix-vector) and s^T C s.
        c_s = [0.0] * dims
        index = 0
        for i in range(dims):
            row = 0.0
            for j in range(dims):
                row += c[index] * s[j]
                index += 1
            c_s[i] = row
        s_c_s = sum(s[i] * c_s[i] for i in range(dims))
        new_a = [a[j] + n * s[j] for j in range(dims)]
        new_b = self.b + 2.0 * s_dot_a + n * s_sq
        new_v = [
            v[j]
            + self.b * s[j]
            + 2.0 * c_s[j]
            + 2.0 * s_dot_a * s[j]
            + s_sq * a[j]
            + n * s_sq * s[j]
            for j in range(dims)
        ]
        new_h = (
            self.h
            + 4.0 * s_c_s
            + n * s_sq * s_sq
            + 4.0 * s_dot_v
            + 2.0 * s_sq * self.b
            + 4.0 * s_sq * s_dot_a
        )
        new_c = list(c)
        index = 0
        for i in range(dims):
            for j in range(dims):
                new_c[index] += s[i] * a[j] + a[i] * s[j] + n * s[i] * s[j]
                index += 1
        return NodeAggregates(
            n=self.n, center=new_center, a=new_a, b=new_b, v=new_v, h=new_h,
            c=new_c, dims=dims, total_weight=self.total_weight,
        )

    @classmethod
    def merged(cls, left: NodeAggregates, right: NodeAggregates) -> NodeAggregates:
        """Aggregates of the union of two disjoint point sets.

        The merged centroid is the size-weighted mean of the children's;
        both children are re-centred onto it before summing.
        """
        if left.dims != right.dims:
            raise InvalidParameterError("cannot merge aggregates of different dims")
        total = left.n + right.n
        weight_total = left.total_weight + right.total_weight
        center = [
            (left.total_weight * cl + right.total_weight * cr) / weight_total
            for cl, cr in zip(left.center, right.center)
        ]
        left = left.recentered(center)
        right = right.recentered(center)
        return cls(
            n=total,
            total_weight=weight_total,
            center=center,
            a=[x + y for x, y in zip(left.a, right.a)],
            b=left.b + right.b,
            v=[x + y for x, y in zip(left.v, right.v)],
            h=left.h + right.h,
            c=[x + y for x, y in zip(left.c, right.c)],
            dims=left.dims,
        )

    def sum_sq_dists(self, q: Sequence[float]) -> float:
        """``sum_i w_i dist(q, p_i)^2`` in O(d) time (w_i = 1 unweighted).

        Parameters
        ----------
        q:
            Query coordinates as a list of ``d`` floats (absolute; the
            centroid shift happens internally).
        """
        a = self.a
        center = self.center
        if self.dims == 2:
            # Unrolled 2-D fast path: KDV queries are overwhelmingly 2-D
            # and this method sits on the per-pixel hot loop. Coordinates
            # are coerced to plain floats once so numpy scalars handed in
            # by the engine never degrade the arithmetic below.
            q0 = float(q[0]) - center[0]
            q1 = float(q[1]) - center[1]
            value = (
                self.total_weight * (q0 * q0 + q1 * q1)
                - 2.0 * (q0 * a[0] + q1 * a[1])
                + self.b
            )
            return value if value > 0.0 else 0.0
        q_sq = 0.0
        dot_qa = 0.0
        for j in range(self.dims):
            qj = float(q[j]) - center[j]
            q_sq += qj * qj
            dot_qa += qj * a[j]
        value = self.total_weight * q_sq - 2.0 * dot_qa + self.b
        # The true value is non-negative; rounding can leave a tiny
        # negative residue when every point coincides with q.
        return value if value > 0.0 else 0.0

    def _moment_arrays(self) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray]:
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self.center, dtype=np.float64),
                np.asarray(self.a, dtype=np.float64),
                np.asarray(self.v, dtype=np.float64),
                np.asarray(self.c, dtype=np.float64).reshape(self.dims, self.dims),
            )
            self._arrays = arrays
        return arrays

    def sum_sq_dists_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised :meth:`sum_sq_dists` for an ``(m, d)`` query batch."""
        center, a, __, __ = self._moment_arrays()
        shifted = queries - center
        q_sq = np.einsum("ij,ij->i", shifted, shifted)
        value = self.total_weight * q_sq - 2.0 * (shifted @ a) + self.b
        return np.maximum(value, 0.0, out=value)

    def sum_quartic_dists_batch(self, queries: FloatArray) -> FloatArray:
        """Vectorised :meth:`sum_quartic_dists` for an ``(m, d)`` batch."""
        center, a, v, c = self._moment_arrays()
        shifted = queries - center
        q_sq = np.einsum("ij,ij->i", shifted, shifted)
        quad_form = np.einsum("ij,jk,ik->i", shifted, c, shifted)
        value = (
            self.total_weight * q_sq * q_sq
            - 4.0 * q_sq * (shifted @ a)
            - 4.0 * (shifted @ v)
            + 2.0 * q_sq * self.b
            + self.h
            + 4.0 * quad_form
        )
        return np.maximum(value, 0.0, out=value)

    def sum_quartic_dists(self, q: Sequence[float]) -> float:
        """``sum_i w_i dist(q, p_i)^4`` in O(d^2) time (Lemma 3)."""
        dims = self.dims
        a = self.a
        v = self.v
        c = self.c
        center = self.center
        if dims == 2:
            # Unrolled 2-D fast path (see sum_sq_dists).
            q0 = float(q[0]) - center[0]
            q1 = float(q[1]) - center[1]
            q_sq = q0 * q0 + q1 * q1
            value = (
                self.total_weight * q_sq * q_sq
                - 4.0 * q_sq * (q0 * a[0] + q1 * a[1])
                - 4.0 * (q0 * v[0] + q1 * v[1])
                + 2.0 * q_sq * self.b
                + self.h
                + 4.0 * (q0 * q0 * c[0] + 2.0 * q0 * q1 * c[1] + q1 * q1 * c[3])
            )
            return value if value > 0.0 else 0.0
        shifted = [0.0] * dims
        q_sq = 0.0
        dot_qa = 0.0
        dot_qv = 0.0
        for j in range(dims):
            qj = float(q[j]) - center[j]
            shifted[j] = qj
            q_sq += qj * qj
            dot_qa += qj * a[j]
            dot_qv += qj * v[j]
        quad_form = 0.0
        index = 0
        for i in range(dims):
            row = 0.0
            for j in range(dims):
                row += c[index] * shifted[j]
                index += 1
            quad_form += shifted[i] * row
        value = (
            self.total_weight * q_sq * q_sq
            - 4.0 * q_sq * dot_qa
            - 4.0 * dot_qv
            + 2.0 * q_sq * self.b
            + self.h
            + 4.0 * quad_form
        )
        return value if value > 0.0 else 0.0

    def __repr__(self) -> str:
        return f"NodeAggregates(n={self.n}, dims={self.dims})"
