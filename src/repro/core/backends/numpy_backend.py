"""Reference backend: pure delegation to the provider's numpy methods.

This backend is deliberately a zero-logic pass-through. Every call lands
on exactly the provider method the engines called before the backend
abstraction existed, so the default configuration is **bit-identical**
to the historical behaviour — the property the parity tests in
``tests/test_properties.py`` pin. Any numerical change must therefore
happen in the providers themselves, never here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.backends.base import ComputeBackend

if TYPE_CHECKING:
    from repro._types import FloatArray
    from repro.core.bounds.base import BoundProvider
    from repro.index.kdtree import KDTreeNode

__all__ = ["NumpyBackend"]


class NumpyBackend(ComputeBackend):
    """Vectorised numpy evaluation — always available, GIL-bound."""

    name = "numpy"
    releases_gil = False

    @classmethod
    def available(cls) -> bool:
        return True

    def node_bounds_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> tuple[FloatArray, FloatArray]:
        # lint: allow-backend-dispatch -- this *is* the dispatch target.
        return provider.node_bounds_batch(node, queries, queries_sq)

    def leaf_exact_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> FloatArray:
        # lint: allow-backend-dispatch -- this *is* the dispatch target.
        return provider.leaf_exact_batch(node, queries, queries_sq)

    def checked_node_bounds_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> tuple[FloatArray, FloatArray]:
        # Delegate to the provider's own checked variant (not the base
        # class re-validation) so error messages keep naming the provider
        # exactly as they did before backends existed.
        # lint: allow-backend-dispatch -- this *is* the dispatch target.
        return provider.checked_node_bounds_batch(node, queries, queries_sq)

    def checked_leaf_exact_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> FloatArray:
        # lint: allow-backend-dispatch -- this *is* the dispatch target.
        return provider.checked_leaf_exact_batch(node, queries, queries_sq)
