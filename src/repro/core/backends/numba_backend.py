"""Numba-compiled backend for the Gaussian QUAD bounds and leaf sums.

The hot loops are written as plain-Python, njit-compatible functions
(``*_impl``) that replicate the vectorised formulas of
:class:`~repro.core.bounds.quadratic.QuadraticBoundProvider` row by row
— same Theorem-1 coefficients (sign-corrected), same ``exp`` clamp at
:data:`~repro.core.bounds.base.EXP_NEG_XMAX`, same degenerate-width and
tangent-line fallbacks, same baseline intersection. When numba is
installed (the ``[perf]`` extra) they are compiled with
``nogil=True`` so thread workers scale; without numba the backend
reports unavailable and :func:`repro.core.backends.resolve_backend`
falls back to numpy — but the ``*_impl`` functions remain importable
pure Python, which is how the parity tests exercise these formulas even
on machines without numba.

Scope: the compiled paths cover exactly the Gaussian/quad combination
the paper benchmarks. Any other provider or kernel delegates to the
provider's own numpy implementation, so mixed configurations stay
correct rather than fast.

Numerics: results may differ from numpy in the last few ulps (scalar
accumulation vs numpy pairwise summation / FMA contraction). That is
within the engine's tolerance by construction — bounds stay sound
because the formulas are identical, ε answers stay inside the
``(1 ± eps)`` envelope, and τ masks stay bit-identical because
boundary-tight pixels are canonicalised through the scalar provider
path (see :meth:`repro.core.batch_engine.BatchRefinementEngine._tau_refined`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.core.backends.base import ComputeBackend
from repro.core.bounds.base import EXP_NEG_XMAX
from repro.core.bounds.quadratic import (
    _DEGENERATE_WIDTH,
    _MIN_GAP_FRACTION,
    QuadraticBoundProvider,
)

if TYPE_CHECKING:
    from repro._types import FloatArray
    from repro.core.bounds.base import BoundProvider
    from repro.index.kdtree import KDTreeNode

__all__ = ["NumbaBackend", "numba_available"]

try:  # pragma: no cover - exercised only where the [perf] extra is installed
    import numba as _numba
except ImportError:  # pragma: no cover - default path on minimal installs
    _numba = None


def numba_available() -> bool:
    """Whether the numba JIT is importable in this environment."""
    return _numba is not None


def _quad_gaussian_node_bounds_impl(
    queries,
    low,
    high,
    center,
    mom_a,
    mom_v,
    mom_c,
    total_weight,
    mom_b,
    mom_h,
    gamma,
    weight,
    tangent_mean,
    lowers,
    uppers,
):  # pragma: no cover - covered via the jitted/pure-python parity tests
    """Row-wise QUAD Gaussian bounds over an ``(m, d)`` query batch.

    Mirrors ``QuadraticBoundProvider.node_bounds_batch`` exactly; all
    moment inputs are the centroid-centred aggregates of
    :class:`~repro.core.aggregates.NodeAggregates` (``mom_c`` as a
    ``(d, d)`` matrix). Results are written into ``lowers``/``uppers``.
    """
    m, dims = queries.shape
    scale = weight * total_weight
    for i in range(m):
        # Rectangle min/max squared distance (see Rectangle.min_sq_dist).
        min_sq = 0.0
        max_sq = 0.0
        for j in range(dims):
            qj = queries[i, j]
            below = low[j] - qj
            above = qj - high[j]
            outside = below if below > above else above
            if outside > 0.0:
                min_sq += outside * outside
            d_low = qj - low[j]
            if d_low < 0.0:
                d_low = -d_low
            d_high = qj - high[j]
            if d_high < 0.0:
                d_high = -d_high
            farthest = d_low if d_low > d_high else d_high
            max_sq += farthest * farthest
        xmin = gamma * min_sq
        xmax = gamma * max_sq
        exp_xmin = math.exp(-(xmin if xmin < EXP_NEG_XMAX else EXP_NEG_XMAX))
        exp_xmax = math.exp(-(xmax if xmax < EXP_NEG_XMAX else EXP_NEG_XMAX))
        baseline_lower = scale * exp_xmax
        baseline_upper = scale * exp_xmin
        width = xmax - xmin
        if width <= _DEGENERATE_WIDTH:
            lowers[i] = baseline_lower
            uppers[i] = baseline_upper
            continue

        # Centred moment evaluation (NodeAggregates.sum_*_dists_batch).
        q_sq = 0.0
        dot_qa = 0.0
        dot_qv = 0.0
        for j in range(dims):
            qj = queries[i, j] - center[j]
            q_sq += qj * qj
            dot_qa += qj * mom_a[j]
            dot_qv += qj * mom_v[j]
        quad_form = 0.0
        for r in range(dims):
            qr = queries[i, r] - center[r]
            row = 0.0
            for j in range(dims):
                row += mom_c[r, j] * (queries[i, j] - center[j])
            quad_form += qr * row
        sq_sum = total_weight * q_sq - 2.0 * dot_qa + mom_b
        if sq_sum < 0.0:
            sq_sum = 0.0
        quartic_sum = (
            total_weight * q_sq * q_sq
            - 4.0 * q_sq * dot_qa
            - 4.0 * dot_qv
            + 2.0 * q_sq * mom_b
            + mom_h
            + 4.0 * quad_form
        )
        if quartic_sum < 0.0:
            quartic_sum = 0.0
        x_sum = gamma * sq_sum
        x2_sum = gamma * gamma * quartic_sum

        # Upper parabola (Theorem 1, sign-corrected).
        au = (exp_xmin - (width + 1.0) * exp_xmax) / (width * width)
        bu = (exp_xmax - exp_xmin) / width - au * (xmin + xmax)
        cu = (exp_xmin * xmax - exp_xmax * xmin) / width + au * xmin * xmax
        upper = weight * (au * x2_sum + bu * x_sum + cu * total_weight)

        # Lower parabola tangent at t (Section 4.3) with line fallback.
        if tangent_mean:
            t = x_sum / total_weight
            if t < xmin:
                t = xmin
            elif t > xmax:
                t = xmax
        else:
            t = 0.5 * (xmin + xmax)
        gap = xmax - t
        exp_t = math.exp(-(t if t < EXP_NEG_XMAX else EXP_NEG_XMAX))
        if gap <= _DEGENERATE_WIDTH or gap <= _MIN_GAP_FRACTION * width:
            lower = weight * exp_t * ((1.0 + t) * total_weight - x_sum)
        else:
            al = (exp_xmax + (xmax - 1.0 - t) * exp_t) / (gap * gap)
            bl = -exp_t - 2.0 * t * al
            cl = (1.0 + t) * exp_t + t * t * al
            lower = weight * (al * x2_sum + bl * x_sum + cl * total_weight)

        if upper > baseline_upper:
            upper = baseline_upper
        if lower < baseline_lower:
            lower = baseline_lower
        if lower > upper:
            lower = upper
        lowers[i] = lower
        uppers[i] = upper


def _gaussian_leaf_exact_impl(
    queries,
    queries_sq,
    points,
    sq_norms,
    point_weights,
    has_weights,
    gamma,
    weight,
    out,
):  # pragma: no cover - covered via the jitted/pure-python parity tests
    """Exact weighted Gaussian sums of one leaf over an ``(m, d)`` batch.

    Expanded squared-distance form with the same clamps as
    ``BoundProvider.leaf_exact_batch`` + ``GaussianKernel.profile``.
    ``point_weights`` is ignored when ``has_weights`` is false (pass any
    float64 array; numba needs a concrete array type either way).
    """
    m, dims = queries.shape
    n = points.shape[0]
    for i in range(m):
        q_sq = queries_sq[i]
        acc = 0.0
        for k in range(n):
            dot = 0.0
            for j in range(dims):
                dot += points[k, j] * queries[i, j]
            sq_dist = sq_norms[k] - 2.0 * dot + q_sq
            if sq_dist < 0.0:
                sq_dist = 0.0
            x = gamma * sq_dist
            value = math.exp(-(x if x < EXP_NEG_XMAX else EXP_NEG_XMAX))
            if has_weights:
                value *= point_weights[k]
            acc += value
        out[i] = weight * acc


if _numba is not None:  # pragma: no cover - [perf] extra only
    _node_bounds_jit = _numba.njit(cache=True, nogil=True)(
        _quad_gaussian_node_bounds_impl
    )
    _leaf_exact_jit = _numba.njit(cache=True, nogil=True)(_gaussian_leaf_exact_impl)
else:
    _node_bounds_jit = _quad_gaussian_node_bounds_impl
    _leaf_exact_jit = _gaussian_leaf_exact_impl

_EMPTY_WEIGHTS = np.empty(0, dtype=np.float64)


class NumbaBackend(ComputeBackend):
    """JIT-compiled Gaussian/QUAD kernels; numpy delegation elsewhere."""

    name = "numba"
    releases_gil = True

    def __init__(self, force: bool = False) -> None:
        # ``force`` lets tests run the un-jitted pure-Python kernels on
        # machines without numba, proving formula parity everywhere.
        if not force and not self.available():
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                "numba backend requested but numba is not importable; "
                "install the [perf] extra or use resolve_backend() for "
                "a graceful numpy fallback"
            )

    @classmethod
    def available(cls) -> bool:
        return numba_available()

    @staticmethod
    def _supports_node(provider: BoundProvider) -> bool:
        return (
            type(provider) is QuadraticBoundProvider
            and provider.kernel.name == "gaussian"
        )

    @staticmethod
    def _supports_leaf(provider: BoundProvider) -> bool:
        return provider.kernel.name == "gaussian"

    def node_bounds_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> tuple[FloatArray, FloatArray]:
        if not self._supports_node(provider):
            # lint: allow-backend-dispatch -- explicit numpy delegation
            # for provider/kernel combinations the JIT does not cover.
            return provider.node_bounds_batch(node, queries, queries_sq)
        agg = node.agg
        m = queries.shape[0]
        lowers = np.empty(m, dtype=np.float64)
        uppers = np.empty(m, dtype=np.float64)
        if agg.total_weight <= 0.0:
            lowers.fill(0.0)
            uppers.fill(0.0)
            return lowers, uppers
        center, mom_a, mom_v, mom_c = agg._moment_arrays()
        _node_bounds_jit(
            queries,
            node.rect.low,
            node.rect.high,
            center,
            mom_a,
            mom_v,
            mom_c,
            agg.total_weight,
            agg.b,
            agg.h,
            provider.gamma,
            provider.weight,
            provider.tangent == "mean",
            lowers,
            uppers,
        )
        return lowers, uppers

    def leaf_exact_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> FloatArray:
        if not self._supports_leaf(provider):
            # lint: allow-backend-dispatch -- explicit numpy delegation
            # for kernels the JIT does not cover.
            return provider.leaf_exact_batch(node, queries, queries_sq)
        out = np.empty(queries.shape[0], dtype=np.float64)
        weights = node.weights
        _leaf_exact_jit(
            queries,
            queries_sq,
            node.points,
            node.sq_norms,
            _EMPTY_WEIGHTS if weights is None else weights,
            weights is not None,
            provider.gamma,
            provider.weight,
            out,
        )
        return out
