"""Pluggable compute backends for the refinement engines.

The engines evaluate bounds and leaf sums through a
:class:`~repro.core.backends.base.ComputeBackend`, selected here by
name. Selection precedence, highest first:

1. an explicit ``backend=`` argument (``RenderOptions.backend``,
   ``create_method(..., backend=...)``);
2. the ``REPRO_BACKEND`` environment variable;
3. the ``"numpy"`` reference backend (bit-identical to the
   pre-backend engine behaviour).

Requesting ``"numba"`` where numba is not importable degrades to numpy
with a one-time :class:`RuntimeWarning` — the optional ``[perf]`` extra
must never be a hard dependency.
"""

from __future__ import annotations

import os
import warnings

from repro.core.backends.base import ComputeBackend
from repro.core.backends.numba_backend import NumbaBackend, numba_available
from repro.core.backends.numpy_backend import NumpyBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "ComputeBackend",
    "available_backends",
    "get_backend",
    "numba_available",
    "resolve_backend",
]

#: Environment variable naming the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_BACKENDS: dict[str, type[ComputeBackend]] = {
    NumpyBackend.name: NumpyBackend,
    NumbaBackend.name: NumbaBackend,
}

# Backend classes are stateless flyweights; cache one instance per name.
_INSTANCES: dict[str, ComputeBackend] = {}

# One warning per missing backend per process, not one per render.
_WARNED_FALLBACKS: set[str] = set()


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can run here, registration order."""
    return tuple(name for name, cls in _BACKENDS.items() if cls.available())


def get_backend(name: str) -> ComputeBackend:
    """The backend registered under ``name``; raises if unknown/unavailable.

    Unlike :func:`resolve_backend` this never falls back — use it when
    the caller must know the requested backend is really running.
    """
    key = str(name).lower()
    cls = _BACKENDS.get(key)
    if cls is None:
        from repro.errors import UnknownNameError

        known = ", ".join(sorted(_BACKENDS))
        raise UnknownNameError(f"unknown compute backend {name!r}; expected one of [{known}]")
    instance = _INSTANCES.get(key)
    if instance is None:
        instance = cls()
        _INSTANCES[key] = instance
    return instance


def resolve_backend(spec: str | ComputeBackend | None = None) -> ComputeBackend:
    """Resolve a backend spec to a usable instance, with graceful fallback.

    ``None`` consults ``REPRO_BACKEND`` and defaults to ``"numpy"``.
    An unknown name still raises (a typo should not silently change the
    numerics), but a *known-yet-unavailable* backend — numba without the
    ``[perf]`` extra — degrades to numpy with a one-time
    :class:`RuntimeWarning`.
    """
    if isinstance(spec, ComputeBackend):
        return spec
    name = spec if spec is not None else os.environ.get(BACKEND_ENV_VAR) or "numpy"
    key = str(name).lower()
    cls = _BACKENDS.get(key)
    if cls is None:
        from repro.errors import UnknownNameError

        known = ", ".join(sorted(_BACKENDS))
        raise UnknownNameError(f"unknown compute backend {name!r}; expected one of [{known}]")
    if not cls.available():
        if key not in _WARNED_FALLBACKS:
            _WARNED_FALLBACKS.add(key)
            warnings.warn(
                f"compute backend {key!r} is not available in this environment "
                f"(install the [perf] extra for numba); falling back to 'numpy'",
                RuntimeWarning,
                stacklevel=2,
            )
        return get_backend("numpy")
    return get_backend(key)
