"""The compute-backend interface: the swappable unit of bound evaluation.

A :class:`ComputeBackend` owns the *batched* numerical kernels of the
refinement loop — per-node bound evaluation (``node_bounds_batch``) and
exact leaf sums (``leaf_exact_batch``) — for a given
:class:`~repro.core.bounds.base.BoundProvider`. The refinement engines
route every batched evaluation through the active backend instead of
calling the provider directly, which carves out exactly the surface a
compiled implementation (numba, a future C extension, ...) must cover:
the closed-form Σd²/Σd⁴ aggregate bounds of the paper's Lemma 3 and the
Gaussian leaf kernels.

Design constraints, in priority order:

* **Correctness is non-negotiable**: whatever a backend computes must
  keep ``LB <= F <= UB`` per node — the contracts layer
  (``REPRO_CHECK_INVARIANTS=1``) validates backends exactly as it
  validates providers, via the ``checked_*`` variants below.
* The :class:`~repro.core.backends.numpy_backend.NumpyBackend` reference
  delegates straight to the provider methods and is therefore
  **bit-identical** to the historical engine behaviour.
* Alternative backends may differ from numpy in floating-point rounding
  (different summation orders), but never beyond what the engines
  already absorb: ε answers stay inside the ``(1 ± eps)`` envelope, and
  τ masks stay bit-identical because boundary-tight decisions are
  re-canonicalised through the scalar provider path
  (:func:`~repro.core.engine.exhausted_exact`), which no backend
  replaces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro._types import FloatArray
    from repro.core.bounds.base import BoundProvider
    from repro.index.kdtree import KDTreeNode

__all__ = ["ComputeBackend"]


class ComputeBackend(ABC):
    """Batched bound/leaf evaluation strategy for a bound provider.

    Backends are stateless flyweights: one instance serves every engine
    and every provider, and all per-dataset state stays on the provider
    and the tree nodes. ``releases_gil`` advertises whether the hot
    loops run outside the CPython GIL (compiled backends), which the
    renderer uses to decide whether thread workers can scale.
    """

    #: Registry name (``"numpy"``, ``"numba"``, ...).
    name: str = "abstract"
    #: Whether the batched kernels run without holding the GIL.
    releases_gil: bool = False

    @classmethod
    @abstractmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""

    @abstractmethod
    def node_bounds_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> tuple[FloatArray, FloatArray]:
        """``(LB[m], UB[m])`` for one node over an ``(m, d)`` query batch.

        Must satisfy the same soundness contract as
        :meth:`~repro.core.bounds.base.BoundProvider.node_bounds_batch`:
        each returned pair encloses the node's true weighted kernel sum.
        """

    @abstractmethod
    def leaf_exact_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> FloatArray:
        """Exact weighted kernel sums of a leaf for an ``(m, d)`` batch."""

    # -- checked variants ---------------------------------------------------
    #
    # Mirrors the provider's checked/unchecked split: the engine selects
    # the checked entry points once per batch when invariant checking is
    # enabled, so the unchecked hot path pays no flag test. The default
    # implementations validate this backend's own output through the
    # contracts helpers, so a compiled backend is held to the identical
    # soundness bar as the reference.

    def checked_node_bounds_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> tuple[FloatArray, FloatArray]:
        """:meth:`node_bounds_batch` with every pair contract-validated."""
        from repro.contracts.runtime import check_bound_pair

        lowers, uppers = self.node_bounds_batch(provider, node, queries, queries_sq)
        bound = f"{type(provider).__name__}[{self.name}]"
        node_id = node.node_id
        for i in range(queries.shape[0]):
            check_bound_pair(
                float(lowers[i]),
                float(uppers[i]),
                bound=bound,
                node=node_id,
                query=queries[i].tolist(),
            )
        return lowers, uppers

    def checked_leaf_exact_batch(
        self,
        provider: BoundProvider,
        node: KDTreeNode,
        queries: FloatArray,
        queries_sq: FloatArray,
    ) -> FloatArray:
        """:meth:`leaf_exact_batch` with the kernel-value contract validated."""
        from repro.contracts.runtime import check_kernel_values

        values = self.leaf_exact_batch(provider, node, queries, queries_sq)
        check_kernel_values(values, kernel=provider.kernel.name)
        return values

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
