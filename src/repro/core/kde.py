"""High-level kernel density estimation API.

:class:`KernelDensity` is the library's front door for density queries
(the visualization front door is
:class:`repro.visual.kdv.KDVRenderer`). It wires together bandwidth
selection (Scott's rule by default, as in the paper's Section 7.1), the
chosen solution method, and the exact ground-truth evaluator.

Example
-------
>>> import numpy as np
>>> from repro import KernelDensity
>>> points = np.random.default_rng(0).normal(size=(1000, 2))
>>> kde = KernelDensity(kernel="gaussian", method="quad").fit(points)
>>> value = kde.density_eps([0.0, 0.0], eps=0.01)
>>> bool(kde.above_threshold([0.0, 0.0], tau=value / 2))
True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.exact import exact_density
from repro.core.kernels import get_kernel
from repro.data.bandwidth import scott_gamma
from repro.errors import NotFittedError
from repro.methods.registry import create_method
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray, KernelLike, PointLike
    from repro.methods.base import Method

__all__ = ["KernelDensity"]


class KernelDensity:
    """Kernel density estimation with selectable solution method.

    Parameters
    ----------
    kernel:
        Kernel name or instance (default Gaussian, the paper's
        Equation 1).
    gamma:
        Bandwidth parameter; ``None`` selects it by Scott's rule at fit
        time (the paper's choice).
    weight:
        Per-point weight ``w``; ``None`` uses ``1 / n`` so densities are
        averages.
    method:
        Solution method name (default ``"quad"``) or a pre-built
        :class:`~repro.methods.base.Method` instance.
    method_options:
        Keyword arguments for :func:`~repro.methods.registry.create_method`.
    """

    def __init__(
        self,
        kernel: KernelLike = "gaussian",
        gamma: float | None = None,
        weight: float | None = None,
        method: str | Method = "quad",
        **method_options: Any,
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.gamma = None if gamma is None else check_positive(gamma, "gamma")
        self.weight = None if weight is None else check_positive(weight, "weight")
        if isinstance(method, str):
            self.method = create_method(method, **method_options)
        else:
            self.method = method
        self.points: FloatArray | None = None
        self.point_weights: PointLike | None = None
        self.gamma_: float | None = None
        self.weight_: float | None = None

    def fit(self, points: PointLike, point_weights: PointLike | None = None) -> KernelDensity:
        """Fit on a dataset: resolve bandwidth/weight, build the method.

        Parameters
        ----------
        points:
            Data points of shape ``(n, d)``.
        point_weights:
            Optional non-negative per-point weights ``w_i`` (e.g. the
            re-weighting of a reduced sample, the paper's footnote 5).

        Returns ``self`` for chaining.
        """
        points = check_points(points)
        self.points = points
        self.point_weights = point_weights
        self.gamma_ = self.gamma if self.gamma is not None else scott_gamma(points, self.kernel)
        self.weight_ = self.weight if self.weight is not None else 1.0 / points.shape[0]
        self.method.fit(
            points, self.kernel, self.gamma_, self.weight_, point_weights=point_weights
        )
        return self

    def _require_fitted(self) -> None:
        if self.points is None:
            raise NotFittedError("KernelDensity must be fitted before querying")

    @property
    def dims(self) -> int:
        """Dimensionality of the fitted data."""
        self._require_fitted()
        assert self.points is not None
        return int(self.points.shape[1])

    def density(self, queries: PointLike) -> FloatArray:
        """Exact densities (ground truth; brute-force scan)."""
        self._require_fitted()
        return exact_density(
            self.points,
            queries,
            self.kernel,
            self.gamma_,
            self.weight_,
            point_weights=self.point_weights,
        )

    def density_eps(
        self, queries: PointLike, eps: float = 0.01, *, atol: float = 0.0
    ) -> float | FloatArray:
        """εKDV densities within ``(1 ± eps)`` of the exact values.

        Returns a scalar for a single query point, else an array.
        """
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.float64)
        single = queries.ndim == 1
        values = self.method.batch_eps(np.atleast_2d(queries), eps, atol=atol)
        return float(values[0]) if single else values

    def above_threshold(self, queries: PointLike, tau: float) -> bool | BoolArray:
        """τKDV: whether the density meets the threshold at each query."""
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.float64)
        single = queries.ndim == 1
        flags = self.method.batch_tau(np.atleast_2d(queries), tau)
        return bool(flags[0]) if single else flags

    def threshold_stats(self, sample_queries: PointLike) -> tuple[float, float]:
        """The ``(mu, sigma)`` of exact densities over sample queries.

        The paper parameterises its τKDV experiments by thresholds
        ``mu + k * sigma`` of the pixel-density distribution (Section
        7.2); this helper computes those statistics.
        """
        values = self.density(sample_queries)
        return float(values.mean()), float(values.std())

    def __repr__(self) -> str:
        state = "fitted" if self.points is not None else "unfitted"
        return (
            f"KernelDensity(kernel={self.kernel.name!r}, "
            f"method={self.method.name!r}, {state})"
        )
