"""Core algorithmic layer: kernels, aggregates, bounds, refinement engine."""

from repro.core.kernels import (
    CosineKernel,
    EpanechnikovKernel,
    ExponentialKernel,
    GaussianKernel,
    Kernel,
    QuarticKernel,
    TriangularKernel,
    available_kernels,
    get_kernel,
)
from repro.core.kde import KernelDensity

__all__ = [
    "Kernel",
    "GaussianKernel",
    "TriangularKernel",
    "CosineKernel",
    "ExponentialKernel",
    "EpanechnikovKernel",
    "QuarticKernel",
    "get_kernel",
    "available_kernels",
    "KernelDensity",
]
