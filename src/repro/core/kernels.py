"""Kernel functions used by kernel density visualization.

The paper evaluates the kernel density function (its Equations 1 and 4)

.. math::

    F_P(q) = \\sum_{p_i \\in P} w \\cdot K(q, p_i)

for several kernels ``K``. Every kernel in this module is expressed
through a one-dimensional *profile* ``k(x)`` of a scaled distance ``x``:

* the Gaussian kernel uses the **squared** distance,
  ``x_i = gamma * dist(q, p_i)**2`` and ``k(x) = exp(-x)``;
* the triangular, cosine and exponential kernels (the paper's Table 4)
  use the plain distance, ``x_i = gamma * dist(q, p_i)``.

All profiles are non-increasing on ``x >= 0`` and bounded by ``k(0) = 1``,
two facts the bound functions rely on. The Epanechnikov and quartic
kernels are extensions beyond the paper (both appear in QGIS/Scikit-learn,
which the paper cites as KDV providers); they are flagged as such in their
docstrings and are supported by the baseline bounds and by exact
aggregation, see :mod:`repro.core.bounds.quadratic_distance`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import UnknownNameError

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike

__all__ = [
    "Kernel",
    "GaussianKernel",
    "TriangularKernel",
    "CosineKernel",
    "ExponentialKernel",
    "EpanechnikovKernel",
    "QuarticKernel",
    "get_kernel",
    "available_kernels",
    "clamp_gamma",
    "GAMMA_MIN",
    "GAMMA_MAX",
    "KERNEL_REGISTRY",
]

#: Largest magnitude fed to ``exp(-x)``. ``exp(-709)`` is still a normal
#: float64 but larger arguments reach the subnormal range and, past
#: ~745, underflow to zero — numpy flags both as underflow, which breaks
#: warning-clean runs under ``-W error``. The profiles are monotone, so
#: clamping ``x`` at the point where the result is already ~1e-308
#: changes no observable value.
_EXP_NEG_XMAX = 708.0

#: Domain of usable bandwidth parameters. Outside this range the scaled
#: distance ``gamma * dist**2`` (or its reciprocal in the bound
#: providers) overflows for ordinary coordinate magnitudes, turning
#: bounds into Inf/NaN. The limits sit ~150 decades away from any
#: physically meaningful bandwidth, so clamping (see :func:`clamp_gamma`)
#: only ever rescues degenerate inputs; it never perturbs real ones.
GAMMA_MIN = 1e-150
GAMMA_MAX = 1e150


def clamp_gamma(gamma: float) -> float:
    """Clamp a bandwidth parameter into ``[GAMMA_MIN, GAMMA_MAX]``.

    Bandwidth rules (:mod:`repro.data.bandwidth`) apply this to the
    ``gamma`` they derive, so degenerate data — all points identical, or
    spreads beyond float range — degrades to an extreme-but-finite
    kernel instead of a ``ZeroDivisionError`` or an Inf that poisons
    every bound. ``gamma`` must already be positive and not NaN.
    """
    return min(max(float(gamma), GAMMA_MIN), GAMMA_MAX)


class Kernel(ABC):
    """A kernel function ``K(q, p) = k(x)`` of a scaled distance ``x``.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"gaussian"``).
    uses_squared_distance:
        ``True`` when ``x = gamma * dist(q, p)**2`` (Gaussian), ``False``
        when ``x = gamma * dist(q, p)`` (all other kernels).
    in_paper:
        Whether the QUAD paper itself evaluates this kernel. Extension
        kernels set this to ``False``.
    """

    name: str = "abstract"
    uses_squared_distance: bool = False
    in_paper: bool = True

    @abstractmethod
    def profile(self, x: FloatArray | float) -> FloatArray:
        """Evaluate the profile ``k(x)`` element-wise for ``x >= 0``.

        Accepts scalars or numpy arrays; returns a numpy array.
        """

    @abstractmethod
    def profile_scalar(self, x: float) -> float:
        """Scalar fast path of :meth:`profile` (plain ``float`` maths).

        The refinement engine calls bounds hundreds of thousands of times;
        avoiding numpy scalar overhead here matters.
        """

    @property
    def support_xmax(self) -> float:
        """The ``x`` beyond which the profile is exactly zero.

        ``math.inf`` for kernels with unbounded support.
        """
        return math.inf

    def lipschitz(self, gamma: float) -> float:
        """Lipschitz constant of ``K(q, p)`` in the Euclidean distance.

        The smallest ``L`` (up to closed-form tightness) such that
        ``|K(q, p) - K(q, p')| <= L * |dist(q, p) - dist(q, p')|`` for
        every query ``q`` — and hence, by the triangle inequality,
        ``<= L * ||p - p'||``. This is the constant the weighted-coreset
        error bound rests on (:mod:`repro.sampling.coreset`): moving
        each point to its cell representative perturbs the density by at
        most ``L`` times the weighted displacement sum.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} does not define a Lipschitz constant; "
            "coreset construction requires one"
        )

    def x_from_distance(
        self, dist: FloatArray | float, gamma: float
    ) -> FloatArray | float:
        """Map a Euclidean distance (scalar or array) to the profile input."""
        if self.uses_squared_distance:
            return gamma * dist * dist
        return gamma * dist

    def evaluate(self, sq_dists: FloatArray | float, gamma: float) -> FloatArray:
        """Kernel values from **squared** Euclidean distances, vectorised.

        Parameters
        ----------
        sq_dists:
            Array of squared distances ``dist(q, p_i)**2``.
        gamma:
            Positive bandwidth parameter.
        """
        sq_dists = np.asarray(sq_dists, dtype=np.float64)
        # Clip the distance term so ``gamma * distance`` cannot overflow
        # for extreme gamma (see GAMMA_MAX): beyond ``cap`` the profile
        # is exactly zero (compact support) or below ~1e-308 (exp
        # clamp), so the clip changes no observable kernel value while
        # keeping warning-clean runs free of overflow warnings.
        cap = self.support_xmax
        if math.isinf(cap):
            cap = _EXP_NEG_XMAX
        limit = cap * (1.0 + 1e-9) / gamma
        if limit <= 0.0:
            limit = math.inf
        if self.uses_squared_distance:
            x = gamma * np.minimum(sq_dists, limit)
        else:
            x = gamma * np.minimum(np.sqrt(sq_dists), limit)
        return self.profile(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GaussianKernel(Kernel):
    """``K(q, p) = exp(-gamma * dist(q, p)**2)`` — the paper's Equation 1."""

    name = "gaussian"
    uses_squared_distance = True

    def profile(self, x: FloatArray | float) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        out = np.minimum(x, _EXP_NEG_XMAX)
        np.negative(out, out=out)
        # lint: allow-unclipped-exp -- ``out`` is the np.minimum-clipped
        # copy from two lines up, negated in place (saves a temporary).
        return np.exp(out, out=out)

    def profile_scalar(self, x: float) -> float:
        return math.exp(-min(x, _EXP_NEG_XMAX))

    def lipschitz(self, gamma: float) -> float:
        # |d/dd exp(-gamma d^2)| = 2 gamma d exp(-gamma d^2) peaks at
        # d = 1/sqrt(2 gamma), giving sqrt(2 gamma) e^{-1/2}.
        return math.sqrt(2.0 * float(gamma)) * math.exp(-0.5)


class ExponentialKernel(Kernel):
    """``K(q, p) = exp(-gamma * dist(q, p))`` (Table 4, row 3)."""

    name = "exponential"

    def profile(self, x: FloatArray | float) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        out = np.minimum(x, _EXP_NEG_XMAX)
        np.negative(out, out=out)
        # lint: allow-unclipped-exp -- ``out`` is the np.minimum-clipped
        # copy from two lines up, negated in place (saves a temporary).
        return np.exp(out, out=out)

    def profile_scalar(self, x: float) -> float:
        return math.exp(-min(x, _EXP_NEG_XMAX))

    def lipschitz(self, gamma: float) -> float:
        # |d/dd exp(-gamma d)| <= gamma, attained at d = 0.
        return float(gamma)


class TriangularKernel(Kernel):
    """``K(q, p) = max(1 - gamma * dist(q, p), 0)`` (Table 4, row 1)."""

    name = "triangular"

    @property
    def support_xmax(self) -> float:
        return 1.0

    def profile(self, x: FloatArray | float) -> FloatArray:
        return np.maximum(1.0 - np.asarray(x, dtype=np.float64), 0.0)

    def profile_scalar(self, x: float) -> float:
        return 1.0 - x if x < 1.0 else 0.0

    def lipschitz(self, gamma: float) -> float:
        # Slope is exactly -gamma inside the support, 0 outside.
        return float(gamma)


class CosineKernel(Kernel):
    """``K(q, p) = cos(gamma * dist(q, p))`` when within ``pi / (2 gamma)``.

    Zero outside that radius (Table 4, row 2).
    """

    name = "cosine"

    @property
    def support_xmax(self) -> float:
        return math.pi / 2.0

    def profile(self, x: FloatArray | float) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x <= math.pi / 2.0, np.cos(np.minimum(x, math.pi / 2.0)), 0.0)

    def profile_scalar(self, x: float) -> float:
        return math.cos(x) if x <= math.pi / 2.0 else 0.0

    def lipschitz(self, gamma: float) -> float:
        # |d/dd cos(gamma d)| = gamma |sin(gamma d)| <= gamma.
        return float(gamma)


class EpanechnikovKernel(Kernel):
    """``K(q, p) = max(1 - (gamma * dist(q, p))**2, 0)``.

    **Extension kernel** (not evaluated in the QUAD paper, available in
    Scikit-learn). Its node aggregate is *exact* in O(d) time because the
    profile is itself a quadratic in ``x``; see
    :class:`repro.core.bounds.quadratic_distance.DistanceQuadraticBoundProvider`.
    """

    name = "epanechnikov"
    in_paper = False

    @property
    def support_xmax(self) -> float:
        return 1.0

    def profile(self, x: FloatArray | float) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        return np.maximum(1.0 - x * x, 0.0)

    def profile_scalar(self, x: float) -> float:
        return 1.0 - x * x if x < 1.0 else 0.0

    def lipschitz(self, gamma: float) -> float:
        # |d/dd (1 - (gamma d)^2)| = 2 gamma^2 d <= 2 gamma at the
        # support edge gamma d = 1.
        return 2.0 * float(gamma)


class QuarticKernel(Kernel):
    """``K(q, p) = max((1 - (gamma * dist)**2)**2, 0)`` (biweight).

    **Extension kernel** (QGIS heatmap's default shape family). Exact in
    O(d^2) via the fourth-moment aggregate when the node is fully inside
    the support.
    """

    name = "quartic"
    in_paper = False

    @property
    def support_xmax(self) -> float:
        return 1.0

    def profile(self, x: FloatArray | float) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        inside = np.maximum(1.0 - x * x, 0.0)
        return inside * inside

    def profile_scalar(self, x: float) -> float:
        if x >= 1.0:
            return 0.0
        inside = 1.0 - x * x
        return inside * inside

    def lipschitz(self, gamma: float) -> float:
        # |d/dd (1 - u^2)^2| with u = gamma d is 4 gamma u (1 - u^2),
        # maximised at u = 1/sqrt(3): 8 gamma / (3 sqrt(3)).
        return 8.0 * float(gamma) / (3.0 * math.sqrt(3.0))


#: Registry of kernel name -> singleton instance.
KERNEL_REGISTRY: dict[str, Kernel] = {
    kernel.name: kernel
    for kernel in (
        GaussianKernel(),
        TriangularKernel(),
        CosineKernel(),
        ExponentialKernel(),
        EpanechnikovKernel(),
        QuarticKernel(),
    )
}


def get_kernel(kernel: KernelLike) -> Kernel:
    """Resolve ``kernel`` (name or instance) to a :class:`Kernel`.

    Raises
    ------
    UnknownNameError
        If a string name is not registered.
    """
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return KERNEL_REGISTRY[str(kernel).lower()]
    except KeyError:
        known = ", ".join(sorted(KERNEL_REGISTRY))
        raise UnknownNameError(
            f"unknown kernel {kernel!r}; available kernels: {known}"
        ) from None


def available_kernels(*, paper_only: bool = False) -> list[str]:
    """Return the sorted list of registered kernel names."""
    names = (
        name
        for name, kernel in KERNEL_REGISTRY.items()
        if kernel.in_paper or not paper_only
    )
    return sorted(names)
