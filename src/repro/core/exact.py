"""Vectorised exact evaluation of the kernel density function.

This is the EXACT sequential-scan competitor of the paper's Table 6 and
the ground truth against which the quality experiments (Figures 19-21)
measure relative error. Evaluation is chunked so the dense
``(queries, points)`` distance block stays within a memory budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.distances import sq_dists_to_batch
from repro.core.kernels import get_kernel
from repro.utils.chunking import DEFAULT_CHUNK_ELEMENTS, chunk_slices
from repro.utils.validation import check_points, check_positive

if TYPE_CHECKING:
    from repro._types import FloatArray, KernelLike, PointLike

__all__ = ["exact_density"]


def exact_density(
    points: PointLike,
    queries: PointLike,
    kernel: KernelLike = "gaussian",
    gamma: float = 1.0,
    weight: float = 1.0,
    *,
    point_weights: PointLike | None = None,
    max_elements: int = DEFAULT_CHUNK_ELEMENTS,
) -> FloatArray:
    """Exact ``F_P(q)`` for every query, by brute-force scan.

    Parameters
    ----------
    points:
        Data points, shape ``(n, d)``.
    queries:
        Query points, shape ``(m, d)`` (a single point is accepted).
    kernel:
        Kernel name or instance.
    gamma:
        Positive bandwidth parameter.
    weight:
        Global per-point weight ``w``.
    point_weights:
        Optional non-negative per-point weights ``w_i`` of shape
        ``(n,)``; the density becomes ``sum_i w * w_i * K(q, p_i)``
        (the re-weighted-sample form of the paper's footnote 5).
    max_elements:
        Memory budget: the dense squared-distance block per chunk holds
        at most this many float64 values.

    Returns
    -------
    numpy.ndarray
        Densities of shape ``(m,)``.
    """
    kernel = get_kernel(kernel)
    gamma = check_positive(gamma, "gamma")
    weight = check_positive(weight, "weight")
    points = check_points(points)
    if point_weights is not None:
        point_weights = np.asarray(point_weights, dtype=np.float64).reshape(-1)
        if point_weights.shape[0] != points.shape[0]:
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"point_weights length {point_weights.shape[0]} != "
                f"points {points.shape[0]}"
            )
    queries = np.asarray(queries, dtype=np.float64)
    single = queries.ndim == 1
    if single:
        # A bare coordinate vector is one query point, not a column.
        queries = queries.reshape(1, -1)
    queries = check_points(queries, name="queries")
    if queries.shape[1] != points.shape[1]:
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"queries have {queries.shape[1]} dims but points have {points.shape[1]}"
        )
    out = np.empty(queries.shape[0], dtype=np.float64)
    # Direct-form distances (see repro.core.distances) hold one extra
    # (chunk, n) temporary per dimension; shrink the chunk accordingly.
    budget = max(1, max_elements // (points.shape[1] + 1))
    for rows in chunk_slices(queries.shape[0], points.shape[0], max_elements=budget):
        block = queries[rows]
        sq_dists = sq_dists_to_batch(block, points)
        values = kernel.evaluate(sq_dists, gamma)
        if point_weights is None:
            out[rows] = weight * values.sum(axis=1)
        else:
            out[rows] = weight * (values @ point_weights)
    return out[0] if single else out
