"""Min/max-distance bounds — the aKDE / tKDC / Scikit-learn camp.

Because every kernel profile ``k(x)`` in this library is non-increasing
on ``x >= 0``, the scaled-distance interval ``[xmin, xmax]`` of a node
immediately yields (the paper's Equations 5-6, generalised):

.. math::

    LB_R(q) = w \\, |R| \\, k(x_{max}), \\qquad
    UB_R(q) = w \\, |R| \\, k(x_{min})

These bounds are evaluated in O(d) time for any kernel but are loose —
they ignore how the points are distributed inside the rectangle — which
is exactly the weakness QUAD's quadratic bounds attack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.bounds.base import BoundProvider

if TYPE_CHECKING:
    from repro._types import BoundPair, FloatArray, PointLike
    from repro.index.kdtree import KDTreeNode

__all__ = ["BaselineBoundProvider"]


class BaselineBoundProvider(BoundProvider):
    """Bounds from the extreme distances to the node rectangle only.

    Supports every kernel (used by aKDE, tKDC and the Scikit-like
    method in the comparison of the paper's Table 6).
    """

    name = "baseline"
    supported_kernels = None

    def node_bounds(self, node: KDTreeNode, q: PointLike, q_sq: float) -> BoundPair:
        xmin, xmax = self.x_interval(node, q)
        scale = self.weight * node.agg.total_weight
        if scale <= 0.0:
            return 0.0, 0.0
        profile = self.kernel.profile_scalar
        return scale * profile(xmax), scale * profile(xmin)

    def node_bounds_batch(
        self, node: KDTreeNode, queries: FloatArray, queries_sq: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Vectorised :meth:`node_bounds` over an ``(m, d)`` query batch."""
        scale = self.weight * node.agg.total_weight
        if scale <= 0.0:
            m = queries.shape[0]
            return (
                np.zeros(m, dtype=np.float64),
                np.zeros(m, dtype=np.float64),
            )
        xmin, xmax = self.x_interval_batch(node, queries)
        profile = self.kernel.profile
        return scale * profile(xmax), scale * profile(xmin)
