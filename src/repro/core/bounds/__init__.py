"""Lower/upper bound functions for per-node kernel sums.

One provider per "camp" of the paper's comparison:

* :class:`~repro.core.bounds.baseline.BaselineBoundProvider` — the
  min/max-distance bounds used by aKDE, tKDC and Scikit-learn;
* :class:`~repro.core.bounds.linear.LinearBoundProvider` — KARL's
  chord/tangent linear bounds of ``exp(-x)`` (Gaussian only);
* :class:`~repro.core.bounds.quadratic.QuadraticBoundProvider` — QUAD's
  Gaussian quadratic bounds (the paper's Section 4);
* :class:`~repro.core.bounds.quadratic_distance.DistanceQuadraticBoundProvider`
  — QUAD's ``a x^2 + c`` bounds for the distance-based kernels (Section 5).
"""

from repro.core.bounds.base import BoundProvider, make_bound_provider
from repro.core.bounds.baseline import BaselineBoundProvider
from repro.core.bounds.linear import LinearBoundProvider
from repro.core.bounds.quadratic import QuadraticBoundProvider
from repro.core.bounds.quadratic_distance import DistanceQuadraticBoundProvider

__all__ = [
    "BoundProvider",
    "BaselineBoundProvider",
    "LinearBoundProvider",
    "QuadraticBoundProvider",
    "DistanceQuadraticBoundProvider",
    "make_bound_provider",
]
