"""QUAD's ``a x^2 + c`` bounds for distance-based kernels (paper Section 5).

For the triangular, cosine and exponential kernels, ``x_i = gamma *
dist(q, p_i)`` and the O(d) aggregate only exists for ``sum_i x_i^2 =
gamma^2 * sum_i dist^2`` — so QUAD fixes the linear coefficient ``b = 0``
and bounds the profile by ``Q(x) = a x^2 + c`` (Equation 7):

.. math::

    FQ_P(q, Q) = w \\left( a \\gamma^2 \\sum_i d_i^2 + c |P| \\right)

Per kernel (Sections 5.2 and 9.6):

* **triangular** ``k(x) = max(1 - x, 0)`` — upper: the concave
  chord-in-``x^2`` through the endpoint values (Section 5.2.1; remains
  valid even when the interval straddles the support edge ``x = 1``,
  since the chord stays above both the line ``1 - x`` and zero); lower:
  the parabola tangent to the line ``1 - x`` with
  ``a*_l = -sqrt(|P| / (4 gamma^2 sum d^2))`` (Theorem 2), whose
  aggregate has the closed form ``w (|P| - sqrt(|P| * sum x^2))``; it is
  a valid lower bound for *all* ``x >= 0`` (``QL <= 1 - x <=
  max(1-x, 0)``), clamped at zero as the paper prescribes.
* **cosine** ``k(x) = cos(x)`` on ``[0, pi/2]`` — endpoint chord upper
  (Lemma 9) and tangent-at-``xmax`` lower (Lemma 10) while
  ``xmax <= pi/2``. When the interval straddles ``pi/2``, the chord
  upper would dip below zero past ``pi/2`` (invalid there), so the upper
  falls back to the baseline ``w |P| cos(xmin)``; the lower uses the
  tangent at ``pi/2`` (``QL(x) = -x^2/pi + pi/4``), which stays a valid
  lower bound everywhere and beats the baseline zero.
* **exponential** ``k(x) = exp(-x)`` — endpoint chord upper (Lemma 11)
  and tangent lower at ``t* = sqrt(gamma^2 sum d^2 / |P|)``
  (Equations 16-18), both valid on all of ``x >= 0``.

Extension kernels (beyond the paper, see DESIGN.md):

* **epanechnikov** ``k(x) = max(1 - x^2, 0)`` is the *triangular profile
  in the variable* ``u = x^2``, so the same O(d) aggregate gives the
  node sum **exactly** (``w (|P| - sum x^2)``) whenever the node lies
  inside the support, and chord/zero bounds when it straddles.
* **quartic** ``k(x) = max((1 - x^2)^2, 0)``: ``(1 - u)^2`` expands over
  ``sum u`` and ``sum u^2`` (the O(d^2) fourth-moment aggregate) — exact
  inside the support, an upper bound when straddling.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.bounds.base import BoundProvider

if TYPE_CHECKING:
    from repro._types import BoundPair, KernelLike, PointLike
    from repro.index.kdtree import KDTreeNode

__all__ = ["DistanceQuadraticBoundProvider"]

_HALF_PI = math.pi / 2.0
#: Interval width below which the node is treated as a single x value.
_DEGENERATE_WIDTH = 1e-12


class DistanceQuadraticBoundProvider(BoundProvider):
    """QUAD bounds for kernels of the plain distance ``gamma * dist``."""

    name = "quad"
    supported_kernels = frozenset(
        {"triangular", "cosine", "exponential", "epanechnikov", "quartic"}
    )

    def __init__(self, kernel: KernelLike, gamma: float, weight: float = 1.0) -> None:
        super().__init__(kernel, gamma, weight)
        bounds_by_kernel = {
            "triangular": self._triangular_bounds,
            "cosine": self._cosine_bounds,
            "exponential": self._exponential_bounds,
            "epanechnikov": self._epanechnikov_bounds,
            "quartic": self._quartic_bounds,
        }
        self._kernel_bounds = bounds_by_kernel[self.kernel.name]

    def node_bounds(
        self, node: KDTreeNode, q: PointLike, q_sq: float
    ) -> BoundPair:
        gamma = self.gamma
        xmin = gamma * math.sqrt(node.rect.min_sq_dist(q))
        xmax = gamma * math.sqrt(node.rect.max_sq_dist(q))
        n = node.agg.total_weight  # sum of point weights (= count unweighted)
        if n <= 0.0:
            return 0.0, 0.0
        if xmax - xmin <= _DEGENERATE_WIDTH:
            value = self.weight * n * self.kernel.profile_scalar(xmin)
            return value, value
        # sum of x_i^2 = gamma^2 * sum of squared distances (O(d)).
        x2_sum = gamma * gamma * node.agg.sum_sq_dists(q)
        return self._kernel_bounds(node, q, q_sq, n, xmin, xmax, x2_sum)

    # -- triangular ----------------------------------------------------

    def _triangular_bounds(
        self,
        node: KDTreeNode,
        q: PointLike,
        q_sq: float,
        n: float,
        xmin: float,
        xmax: float,
        x2_sum: float,
    ) -> BoundPair:
        weight = self.weight
        if xmin >= 1.0:
            return 0.0, 0.0
        k_min = 1.0 - xmin
        k_max = 1.0 - xmax if xmax < 1.0 else 0.0
        # Upper: chord in x^2 through (xmin, k_min) and (xmax, k_max).
        denom = xmax * xmax - xmin * xmin
        au = (k_max - k_min) / denom
        cu = (xmax * xmax * k_min - xmin * xmin * k_max) / denom
        upper = weight * (au * x2_sum + cu * n)
        baseline_upper = weight * n * k_min
        if upper > baseline_upper:
            upper = baseline_upper
        # Lower: closed form of Theorem 2, w (n - sqrt(n * sum x^2)).
        lower = weight * (n - math.sqrt(n * x2_sum))
        baseline_lower = weight * n * k_max
        if lower < baseline_lower:
            lower = baseline_lower
        if lower < 0.0:
            lower = 0.0
        if lower > upper:
            lower = upper
        return lower, upper

    # -- cosine ----------------------------------------------------------

    def _cosine_bounds(
        self,
        node: KDTreeNode,
        q: PointLike,
        q_sq: float,
        n: float,
        xmin: float,
        xmax: float,
        x2_sum: float,
    ) -> BoundPair:
        weight = self.weight
        if xmin >= _HALF_PI:
            return 0.0, 0.0
        cos_xmin = math.cos(xmin)
        if xmax <= _HALF_PI:
            cos_xmax = math.cos(xmax)
            # Upper: chord in x^2 through the endpoints (Lemma 9).
            denom = xmax * xmax - xmin * xmin
            au = (cos_xmax - cos_xmin) / denom
            cu = (xmax * xmax * cos_xmin - xmin * xmin * cos_xmax) / denom
            upper = weight * (au * x2_sum + cu * n)
            # Lower: tangent (in x^2) at xmax (Lemma 10).
            al = -math.sin(xmax) / (2.0 * xmax)
            cl = cos_xmax + xmax * math.sin(xmax) / 2.0
            lower = weight * (al * x2_sum + cl * n)
            baseline_upper = weight * n * cos_xmin
            baseline_lower = weight * n * cos_xmax
        else:
            # Straddling pi/2: chord upper is invalid past the support
            # edge, use the baseline; the tangent-at-pi/2 lower stays
            # valid everywhere (it is <= 0 past pi/2, where k = 0).
            upper = weight * n * cos_xmin
            lower = weight * (-x2_sum / math.pi + n * math.pi / 4.0)
            baseline_upper = upper
            baseline_lower = 0.0
        if upper > baseline_upper:
            upper = baseline_upper
        if lower < baseline_lower:
            lower = baseline_lower
        if lower < 0.0:
            lower = 0.0
        if lower > upper:
            lower = upper
        return lower, upper

    # -- exponential -----------------------------------------------------

    def _exponential_bounds(
        self,
        node: KDTreeNode,
        q: PointLike,
        q_sq: float,
        n: float,
        xmin: float,
        xmax: float,
        x2_sum: float,
    ) -> BoundPair:
        weight = self.weight
        exp_xmin = math.exp(-xmin)
        exp_xmax = math.exp(-xmax)
        # Upper: chord in x^2 through the endpoints (Lemma 11).
        denom = xmax * xmax - xmin * xmin
        au = (exp_xmax - exp_xmin) / denom
        cu = (xmax * xmax * exp_xmin - xmin * xmin * exp_xmax) / denom
        upper = weight * (au * x2_sum + cu * n)
        # Lower: tangent in x^2 at t* = sqrt(mean of x_i^2) (Eq. 16-18).
        t = math.sqrt(x2_sum / n)
        if t < xmin:
            t = xmin
        elif t > xmax:
            t = xmax
        if t <= _DEGENERATE_WIDTH:
            # Every point coincides with q; the sum is exactly w * n.
            lower = weight * n
        else:
            exp_t = math.exp(-t)
            al = -exp_t / (2.0 * t)
            cl = 0.5 * (t + 2.0) * exp_t
            lower = weight * (al * x2_sum + cl * n)
        baseline_upper = weight * n * exp_xmin
        baseline_lower = weight * n * exp_xmax
        if upper > baseline_upper:
            upper = baseline_upper
        if lower < baseline_lower:
            lower = baseline_lower
        if lower > upper:
            lower = upper
        return lower, upper

    # -- epanechnikov (extension) -----------------------------------------

    def _epanechnikov_bounds(
        self,
        node: KDTreeNode,
        q: PointLike,
        q_sq: float,
        n: float,
        xmin: float,
        xmax: float,
        x2_sum: float,
    ) -> BoundPair:
        weight = self.weight
        if xmin >= 1.0:
            return 0.0, 0.0
        if xmax <= 1.0:
            # Inside the support the profile is itself 1 - x^2: exact.
            value = weight * (n - x2_sum)
            if value < 0.0:
                value = 0.0
            return value, value
        # Straddling: per point 1 - x^2 <= k(x), so the linear-in-u
        # aggregate is a lower bound; the chord in u = x^2 through
        # (umin, 1 - umin) and (umax, 0) is an upper bound.
        umin = xmin * xmin
        umax = xmax * xmax
        lower = weight * (n - x2_sum)
        if lower < 0.0:
            lower = 0.0
        upper = weight * (1.0 - umin) * (umax * n - x2_sum) / (umax - umin)
        baseline_upper = weight * n * (1.0 - umin)
        if upper > baseline_upper:
            upper = baseline_upper
        if lower > upper:
            lower = upper
        return lower, upper

    # -- quartic (extension) ----------------------------------------------

    def _quartic_bounds(
        self,
        node: KDTreeNode,
        q: PointLike,
        q_sq: float,
        n: float,
        xmin: float,
        xmax: float,
        x2_sum: float,
    ) -> BoundPair:
        weight = self.weight
        if xmin >= 1.0:
            return 0.0, 0.0
        gamma = self.gamma
        # sum of x_i^4 = gamma^4 * sum dist^4 (O(d^2) aggregate).
        x4_sum = gamma ** 4 * node.agg.sum_quartic_dists(q)
        expanded = weight * (n - 2.0 * x2_sum + x4_sum)
        if xmax <= 1.0:
            value = expanded if expanded > 0.0 else 0.0
            return value, value
        # Straddling: (1 - u)^2 >= k(u) for every u, so the expansion is
        # an upper bound; no aggregated lower beats zero here.
        k_min = 1.0 - xmin * xmin
        upper = expanded
        baseline_upper = weight * n * k_min * k_min
        if upper > baseline_upper:
            upper = baseline_upper
        if upper < 0.0:
            upper = 0.0
        return 0.0, upper
