"""Common protocol for per-node bound functions.

A bound provider answers, for an index node ``R`` and a query pixel ``q``,
an interval ``[LB_R(q), UB_R(q)]`` guaranteed to contain the node's true
weighted kernel sum

.. math::

    F_R(q) = \\sum_{p_i \\in R} w \\cdot K(q, p_i)

(the correctness condition of the paper's Section 3.1). The refinement
engine is agnostic to which provider it runs — that is exactly the
paper's experimental design, where methods differ only in their bounds.

That correctness condition is also a runtime-checkable contract: with
``REPRO_CHECK_INVARIANTS=1`` (see :mod:`repro.contracts`) the engine
routes through :meth:`BoundProvider.checked_node_bounds`, which
validates every returned pair, and cross-checks exact leaf sums against
the advertised leaf bounds.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.contracts.decorators import soundness_check
from repro.contracts.runtime import check_bound_pair, check_kernel_values
from repro.core.distances import sq_dists_to_batch, sq_dists_to_point
from repro.core.kernels import Kernel, get_kernel
from repro.errors import UnsupportedKernelError
from repro.utils.validation import check_positive

if TYPE_CHECKING:
    from repro._types import BoundPair, FloatArray, KernelLike, PointLike
    from repro.index.kdtree import KDTreeNode

__all__ = ["BoundProvider", "make_bound_provider"]

#: Largest magnitude fed to ``np.exp(-x)`` by the vectorised bound
#: implementations; mirrors the clamp in :mod:`repro.core.kernels`
#: (``exp(-708)`` is still a normal float64, larger arguments underflow
#: and trip warning-clean runs).
EXP_NEG_XMAX = 708.0


class BoundProvider(ABC):
    """Computes ``(LB, UB)`` for the weighted kernel sum of a node.

    Parameters
    ----------
    kernel:
        Kernel name or :class:`~repro.core.kernels.Kernel` instance.
    gamma:
        Positive bandwidth parameter of the kernel.
    weight:
        Per-point weight ``w`` of the kernel aggregation.

    Subclasses declare :attr:`supported_kernels` (a frozenset of kernel
    names, or ``None`` for "any kernel") and implement
    :meth:`node_bounds`.
    """

    name: str = "abstract"
    supported_kernels: frozenset[str] | None = None

    def __init__(self, kernel: KernelLike, gamma: float, weight: float = 1.0) -> None:
        self.kernel: Kernel = get_kernel(kernel)
        self.gamma: float = check_positive(gamma, "gamma")
        self.weight: float = check_positive(weight, "weight")
        if (
            self.supported_kernels is not None
            and self.kernel.name not in self.supported_kernels
        ):
            supported = ", ".join(sorted(self.supported_kernels))
            raise UnsupportedKernelError(
                f"{type(self).__name__} supports only [{supported}] kernels, "
                f"got {self.kernel.name!r}"
            )

    @abstractmethod
    def node_bounds(self, node: KDTreeNode, q: PointLike, q_sq: float) -> BoundPair:
        """Return ``(lb, ub)`` bounding the node's weighted kernel sum.

        Parameters
        ----------
        node:
            A :class:`~repro.index.kdtree.KDTreeNode`.
        q:
            Query coordinates (sequence or 1-D array; hot path).
        q_sq:
            Precomputed squared norm ``||q||^2``.
        """

    @soundness_check
    def checked_node_bounds(
        self, node: KDTreeNode, q: PointLike, q_sq: float
    ) -> BoundPair:
        """:meth:`node_bounds` with the bound-order contract validated.

        The refinement engine calls this variant instead of
        :meth:`node_bounds` whenever invariant checking is enabled, so
        built-in providers pay no wrapper cost on the normal hot path
        while custom providers can also opt in permanently by decorating
        their own ``node_bounds`` with
        :func:`repro.contracts.soundness_check`.
        """
        return self.node_bounds(node, q, q_sq)

    def leaf_exact(self, node: KDTreeNode, q_array: FloatArray, q_sq: float) -> float:
        """Exact weighted kernel sum over a leaf node, vectorised.

        Unsquared-distance kernels (triangular, cosine, exponential)
        use the direct distance form of :mod:`repro.core.distances`: the
        expanded ``||p||^2 - 2 p.q + ||q||^2`` form cancels
        catastrophically near ``d = 0``, and the square root amplifies
        the residual into ``sqrt(ulp)``-scale distance noise (~1e-8
        kernel error at a query sitting on a data point — enough to
        flip a τ classification). Squared-distance kernels keep the
        BLAS-friendly expanded form: without the square root the noise
        stays ~``ulp(||q||^2)`` absolute, far inside the τ tie guard.

        Parameters
        ----------
        node:
            A leaf :class:`~repro.index.kdtree.KDTreeNode`.
        q_array:
            Query as a 1-D numpy array.
        q_sq:
            Precomputed ``||q||^2`` (used by the expanded form only).
        """
        if self.kernel.uses_squared_distance:
            sq_dists = node.sq_norms - 2.0 * (node.points @ q_array) + q_sq
            np.maximum(sq_dists, 0.0, out=sq_dists)
        else:
            sq_dists = sq_dists_to_point(node.points, q_array)
        values = self.kernel.evaluate(sq_dists, self.gamma)
        if node.weights is not None:
            return self.weight * float(np.dot(values, node.weights))
        return self.weight * float(values.sum())

    def checked_leaf_exact(
        self, node: KDTreeNode, q_array: FloatArray, q_sq: float
    ) -> float:
        """:meth:`leaf_exact` with the kernel-nonnegative contract validated.

        Selected by the refinement engine instead of :meth:`leaf_exact`
        whenever invariant checking is enabled, keeping the unchecked
        leaf evaluation free of even a flag test.
        """
        if self.kernel.uses_squared_distance:
            sq_dists = node.sq_norms - 2.0 * (node.points @ q_array) + q_sq
            np.maximum(sq_dists, 0.0, out=sq_dists)
        else:
            sq_dists = sq_dists_to_point(node.points, q_array)
        values = self.kernel.evaluate(sq_dists, self.gamma)
        check_kernel_values(values, kernel=self.kernel.name)
        if node.weights is not None:
            return self.weight * float(np.dot(values, node.weights))
        return self.weight * float(values.sum())

    def node_bounds_batch(
        self, node: KDTreeNode, queries: FloatArray, queries_sq: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Return ``(LB[m], UB[m])`` for an ``(m, d)`` query batch.

        The default implementation loops over :meth:`node_bounds`, so any
        third-party provider that only implements the scalar interface
        keeps working with the batched refinement engine. Built-in
        providers override this with fully vectorised versions.
        """
        m = queries.shape[0]
        lowers = np.empty(m, dtype=np.float64)
        uppers = np.empty(m, dtype=np.float64)
        for i in range(m):
            lowers[i], uppers[i] = self.node_bounds(
                node, queries[i], float(queries_sq[i])
            )
        return lowers, uppers

    def checked_node_bounds_batch(
        self, node: KDTreeNode, queries: FloatArray, queries_sq: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """:meth:`node_bounds_batch` with every pair contract-validated.

        The batched engine routes through this variant when invariant
        checking is enabled, mirroring :meth:`checked_node_bounds`.
        """
        lowers, uppers = self.node_bounds_batch(node, queries, queries_sq)
        bound = type(self).__name__
        node_id = node.node_id
        for i in range(queries.shape[0]):
            check_bound_pair(
                float(lowers[i]),
                float(uppers[i]),
                bound=bound,
                node=node_id,
                query=queries[i].tolist(),
            )
        return lowers, uppers

    def leaf_exact_batch(self, node: KDTreeNode, queries: FloatArray,
                         queries_sq: FloatArray) -> FloatArray:
        """Exact weighted kernel sums of a leaf for an ``(m, d)`` batch.

        Vectorised over both queries and leaf points: one ``(m, n)``
        distance matrix per leaf visit. The distance form mirrors
        :meth:`leaf_exact` kernel for kernel — for unsquared-distance
        kernels the direct form makes each entry bit-identical to the
        scalar evaluation of the same pair (see
        :mod:`repro.core.distances`); squared-distance kernels keep the
        BLAS expanded form, whose noise the τ tie guard absorbs.
        """
        if self.kernel.uses_squared_distance:
            sq_dists = (
                queries_sq[:, None] - 2.0 * (queries @ node.points.T) + node.sq_norms
            )
            np.maximum(sq_dists, 0.0, out=sq_dists)
        else:
            sq_dists = sq_dists_to_batch(queries, node.points)
        values = self.kernel.evaluate(sq_dists, self.gamma)
        if node.weights is not None:
            return self.weight * (values @ node.weights)
        result: FloatArray = self.weight * values.sum(axis=1)
        return result

    def checked_leaf_exact_batch(
        self, node: KDTreeNode, queries: FloatArray, queries_sq: FloatArray
    ) -> FloatArray:
        """:meth:`leaf_exact_batch` with the kernel-value contract validated."""
        if self.kernel.uses_squared_distance:
            sq_dists = (
                queries_sq[:, None] - 2.0 * (queries @ node.points.T) + node.sq_norms
            )
            np.maximum(sq_dists, 0.0, out=sq_dists)
        else:
            sq_dists = sq_dists_to_batch(queries, node.points)
        values = self.kernel.evaluate(sq_dists, self.gamma)
        check_kernel_values(values, kernel=self.kernel.name)
        if node.weights is not None:
            return self.weight * (values @ node.weights)
        result: FloatArray = self.weight * values.sum(axis=1)
        return result

    def x_interval(self, node: KDTreeNode, q: PointLike) -> tuple[float, float]:
        """The scaled-distance interval ``[xmin, xmax]`` of a node.

        Derived from the min/max distance between ``q`` and the node's
        bounding rectangle, in the kernel's ``x`` units (``gamma * d**2``
        for squared-distance kernels, ``gamma * d`` otherwise).
        """
        min_sq = node.rect.min_sq_dist(q)
        max_sq = node.rect.max_sq_dist(q)
        if self.kernel.uses_squared_distance:
            return self.gamma * min_sq, self.gamma * max_sq
        return self.gamma * math.sqrt(min_sq), self.gamma * math.sqrt(max_sq)

    def x_interval_batch(
        self, node: KDTreeNode, queries: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Vectorised :meth:`x_interval` for an ``(m, d)`` query batch."""
        min_sq = node.rect.min_sq_dist_batch(queries)
        max_sq = node.rect.max_sq_dist_batch(queries)
        if self.kernel.uses_squared_distance:
            return self.gamma * min_sq, self.gamma * max_sq
        return self.gamma * np.sqrt(min_sq), self.gamma * np.sqrt(max_sq)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(kernel={self.kernel.name!r}, "
            f"gamma={self.gamma!r}, weight={self.weight!r})"
        )


def make_bound_provider(
    name: str,
    kernel: KernelLike,
    gamma: float,
    weight: float = 1.0,
    **options: object,
) -> BoundProvider:
    """Factory mapping a provider name to an instance.

    Recognised names: ``"baseline"``, ``"linear"`` (KARL) and ``"quad"``
    (this paper; dispatches between the Gaussian O(d^2) bounds and the
    distance-kernel O(d) bounds automatically). Extra keyword ``options``
    go to the provider constructor (e.g. ``tangent`` for the Gaussian
    quadratic bounds' ablation knob).
    """
    from repro.core.bounds.baseline import BaselineBoundProvider
    from repro.core.bounds.linear import LinearBoundProvider
    from repro.core.bounds.quadratic import QuadraticBoundProvider
    from repro.core.bounds.quadratic_distance import DistanceQuadraticBoundProvider

    kernel = get_kernel(kernel)
    key = str(name).lower()
    if key == "baseline":
        return BaselineBoundProvider(kernel, gamma, weight, **options)
    if key == "linear":
        return LinearBoundProvider(kernel, gamma, weight, **options)
    if key == "quad":
        if kernel.uses_squared_distance:
            return QuadraticBoundProvider(kernel, gamma, weight, **options)
        return DistanceQuadraticBoundProvider(kernel, gamma, weight, **options)
    from repro.errors import UnknownNameError

    raise UnknownNameError(
        f"unknown bound provider {name!r}; expected 'baseline', 'linear' or 'quad'"
    )
