"""QUAD's quadratic bounds for the Gaussian kernel (paper Section 4).

With ``x_i = gamma * dist(q, p_i)**2`` bounded in ``[xmin, xmax]``, the
exponential profile is sandwiched by parabolas
``Q(x) = a x**2 + b x + c``:

* **upper** ``QU`` passes through both interval endpoints of ``exp(-x)``
  and bends down as much as correctness allows (``a_u = a*_u``,
  Theorem 1) — tighter than KARL's chord, which is the ``a_u = 0``
  special case;
* **lower** ``QL`` is tangent to ``exp(-x)`` at ``t`` and passes through
  ``(xmax, exp(-xmax))`` (Section 4.3) — tighter than KARL's tangent
  line, which it dominates by the added ``a_l (x - t)**2 >= 0`` term.

The aggregate (Equation 2)

.. math::

    FQ_P(q, Q) = w \\left( a \\gamma^2 \\sum_i d_i^4
        + b \\gamma \\sum_i d_i^2 + c |P| \\right)

is evaluated in O(d^2) time from the node moments (Lemma 3).

Erratum implemented here (see DESIGN.md): the paper prints Theorem 1 as
``a*_u = ((xmax-xmin+1) e^-xmax - e^-xmin) / (xmax-xmin)^2``, which is
negative for every non-degenerate interval (``e^Delta > 1 + Delta``) and
so contradicts both the theorem's own requirement ``a_u > 0`` and the
worked example of the paper's Figure 7. Re-deriving the binding
constraint ``QU'(xmax) <= -exp(-xmax)`` gives the sign-corrected optimum

.. math::

    a^*_u = \\frac{e^{-x_{min}} - (x_{max} - x_{min} + 1) e^{-x_{max}}}
                 {(x_{max} - x_{min})^2} > 0

which reproduces Figure 7 (interval ~[0.5, 3.5] -> ``a*_u ~ 0.054``, so
``a_u = 0.05`` is correct and ``a_u = 0.1`` is not, exactly as pictured).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.core.bounds.base import BoundProvider, EXP_NEG_XMAX

if TYPE_CHECKING:
    from repro._types import BoundPair, FloatArray, KernelLike, PointLike
    from repro.index.kdtree import KDTreeNode

__all__ = ["QuadraticBoundProvider"]

#: Interval / tangent-gap width below which closed forms degenerate.
_DEGENERATE_WIDTH = 1e-12
#: Minimum (xmax - t) as a fraction of the interval width before the
#: lower bound falls back to the tangent line: the a_l cancellation
#: error is amplified by (width / gap)^2, so this cap keeps the induced
#: relative error below ~1e-10 (see node_bounds).
_MIN_GAP_FRACTION = 2e-3


def optimal_upper_curvature(xmin: float, xmax: float) -> float:
    """The sign-corrected ``a*_u`` of Theorem 1 (see module docstring)."""
    width = xmax - xmin
    return (math.exp(-xmin) - (width + 1.0) * math.exp(-xmax)) / (width * width)


def upper_coefficients(xmin: float, xmax: float) -> tuple[float, float, float]:
    """Coefficients ``(a_u, b_u, c_u)`` of the tight quadratic upper bound.

    ``QU`` interpolates ``exp(-x)`` at both endpoints (Section 4.2), with
    the optimal curvature from Theorem 1.
    """
    exp_xmin = math.exp(-xmin)
    exp_xmax = math.exp(-xmax)
    width = xmax - xmin
    au = optimal_upper_curvature(xmin, xmax)
    bu = (exp_xmax - exp_xmin) / width - au * (xmin + xmax)
    cu = (exp_xmin * xmax - exp_xmax * xmin) / width + au * xmin * xmax
    return au, bu, cu


def lower_coefficients(t: float, xmax: float) -> tuple[float, float, float]:
    """Coefficients ``(a_l, b_l, c_l)`` of the tight quadratic lower bound.

    ``QL`` is tangent to ``exp(-x)`` at ``t`` and interpolates it at
    ``xmax`` (Section 4.3). Requires ``t < xmax``.
    """
    exp_t = math.exp(-t)
    exp_xmax = math.exp(-xmax)
    gap = xmax - t
    al = (exp_xmax + (xmax - 1.0 - t) * exp_t) / (gap * gap)
    bl = -exp_t - 2.0 * t * al
    cl = (1.0 + t) * exp_t + t * t * al
    return al, bl, cl


class QuadraticBoundProvider(BoundProvider):
    """QUAD bounds for the Gaussian kernel — the paper's contribution.

    Parameters
    ----------
    tangent:
        Where the lower-bound parabola touches ``exp(-x)``: ``"mean"``
        (the paper's ``t*``, Equation 3) or ``"midpoint"`` of
        ``[xmin, xmax]`` — exposed for the tangent-choice ablation.
    """

    name = "quad"
    supported_kernels = frozenset({"gaussian"})

    def __init__(
        self,
        kernel: KernelLike,
        gamma: float,
        weight: float = 1.0,
        tangent: str = "mean",
    ) -> None:
        super().__init__(kernel, gamma, weight)
        if tangent not in ("mean", "midpoint"):
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"tangent must be 'mean' or 'midpoint', got {tangent!r}"
            )
        self.tangent = tangent

    def node_bounds(self, node: KDTreeNode, q: PointLike, q_sq: float) -> BoundPair:
        # Fully inlined hot path: this method runs once per node pop per
        # pixel (millions of calls per colour map), so the coefficient
        # helpers above are folded in, sharing one exp() per endpoint.
        agg = node.agg
        n = agg.total_weight  # sum of point weights (= count unweighted)
        weight = self.weight
        scale = weight * n
        if n <= 0.0:
            return 0.0, 0.0
        gamma = self.gamma
        rect = node.rect
        if self.kernel.uses_squared_distance:
            xmin = gamma * rect.min_sq_dist(q)
            xmax = gamma * rect.max_sq_dist(q)
        else:  # pragma: no cover - provider is Gaussian-only
            xmin, xmax = self.x_interval(node, q)
        exp_xmin = math.exp(-xmin)
        exp_xmax = math.exp(-xmax)
        baseline_lower = scale * exp_xmax
        baseline_upper = scale * exp_xmin
        width = xmax - xmin
        if width <= _DEGENERATE_WIDTH:
            return baseline_lower, baseline_upper
        x_sum = gamma * agg.sum_sq_dists(q)
        x2_sum = gamma * gamma * agg.sum_quartic_dists(q)

        # Upper: endpoints interpolation + optimal curvature (Theorem 1,
        # sign-corrected; see module docstring).
        au = (exp_xmin - (width + 1.0) * exp_xmax) / (width * width)
        bu = (exp_xmax - exp_xmin) / width - au * (xmin + xmax)
        cu = (exp_xmin * xmax - exp_xmax * xmin) / width + au * xmin * xmax
        upper = weight * (au * x2_sum + bu * x_sum + cu * n)

        # Tangent abscissa t* = mean of the x_i (Equation 3), which always
        # lies inside [xmin, xmax]; clamped for rounding safety. The
        # midpoint alternative serves the tangent-choice ablation.
        if self.tangent == "mean":
            t = x_sum / n
            if t < xmin:
                t = xmin
            elif t > xmax:
                t = xmax
        else:
            t = 0.5 * (xmin + xmax)
        gap = xmax - t
        exp_t = math.exp(-t)
        if gap <= _DEGENERATE_WIDTH or gap <= _MIN_GAP_FRACTION * width:
            # The parabola through the tangent point and (xmax, .)
            # degenerates as t -> xmax, and worse: the cancellation error
            # of a_l is amplified by (width / gap)^2 across the interval,
            # which can push QL *above* exp(-x) — an invalid bound. Fall
            # back to the tangent *line* (KARL's lower bound, stable and
            # nearly as tight here since the points cluster at xmax).
            lower = weight * exp_t * ((1.0 + t) * n - x_sum)
        else:
            al = (exp_xmax + (xmax - 1.0 - t) * exp_t) / (gap * gap)
            bl = -exp_t - 2.0 * t * al
            cl = (1.0 + t) * exp_t + t * t * al
            lower = weight * (al * x2_sum + bl * x_sum + cl * n)

        # Intersect with the always-valid baseline interval. Theorems 1-2
        # make this a mathematical no-op; it guards floating-point drift.
        if upper > baseline_upper:
            upper = baseline_upper
        if lower < baseline_lower:
            lower = baseline_lower
        if lower > upper:
            lower = upper
        return lower, upper

    def node_bounds_batch(
        self, node: KDTreeNode, queries: FloatArray, queries_sq: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Vectorised :meth:`node_bounds` over an ``(m, d)`` query batch.

        Mirrors the scalar formulas row-wise; the degenerate-interval and
        tangent-line fallbacks become masks. ``x`` arguments to ``exp``
        are clamped at :data:`~repro.core.bounds.base.EXP_NEG_XMAX` so
        far-away nodes underflow to 0 without warnings (the scalar path
        gets this for free from ``math.exp``).
        """
        agg = node.agg
        n = agg.total_weight
        weight = self.weight
        m = queries.shape[0]
        if n <= 0.0:
            return (
                np.zeros(m, dtype=np.float64),
                np.zeros(m, dtype=np.float64),
            )
        gamma = self.gamma
        rect = node.rect
        if self.kernel.uses_squared_distance:
            xmin = gamma * rect.min_sq_dist_batch(queries)
            xmax = gamma * rect.max_sq_dist_batch(queries)
        else:  # pragma: no cover - provider is Gaussian-only
            xmin, xmax = self.x_interval_batch(node, queries)
        exp_xmin = np.exp(-np.minimum(xmin, EXP_NEG_XMAX))
        exp_xmax = np.exp(-np.minimum(xmax, EXP_NEG_XMAX))
        scale = weight * n
        baseline_lower = scale * exp_xmax
        baseline_upper = scale * exp_xmin
        width = xmax - xmin
        degenerate = width <= _DEGENERATE_WIDTH
        safe_width = np.where(degenerate, 1.0, width)
        x_sum = gamma * agg.sum_sq_dists_batch(queries)
        x2_sum = gamma * gamma * agg.sum_quartic_dists_batch(queries)

        au = (exp_xmin - (safe_width + 1.0) * exp_xmax) / (safe_width * safe_width)
        bu = (exp_xmax - exp_xmin) / safe_width - au * (xmin + xmax)
        cu = (exp_xmin * xmax - exp_xmax * xmin) / safe_width + au * xmin * xmax
        upper = weight * (au * x2_sum + bu * x_sum + cu * n)

        if self.tangent == "mean":
            t = np.clip(x_sum / n, xmin, xmax)
        else:
            t = 0.5 * (xmin + xmax)
        gap = xmax - t
        exp_t = np.exp(-np.minimum(t, EXP_NEG_XMAX))
        use_line = (gap <= _DEGENERATE_WIDTH) | (gap <= _MIN_GAP_FRACTION * width)
        line_lower = weight * exp_t * ((1.0 + t) * n - x_sum)
        safe_gap = np.where(use_line, 1.0, gap)
        al = (exp_xmax + (xmax - 1.0 - t) * exp_t) / (safe_gap * safe_gap)
        bl = -exp_t - 2.0 * t * al
        cl = (1.0 + t) * exp_t + t * t * al
        parabola_lower = weight * (al * x2_sum + bl * x_sum + cl * n)
        lower = np.where(use_line, line_lower, parabola_lower)

        np.minimum(upper, baseline_upper, out=upper)
        np.maximum(lower, baseline_lower, out=lower)
        np.minimum(lower, upper, out=lower)
        lower = np.where(degenerate, baseline_lower, lower)
        upper = np.where(degenerate, baseline_upper, upper)
        return lower, upper
