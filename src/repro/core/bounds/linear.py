"""KARL's linear bounds of ``exp(-x)`` — the state of the art before QUAD.

For the Gaussian kernel with ``x_i = gamma * dist(q, p_i)**2``, KARL
(the paper's Section 3.3) sandwiches ``exp(-x)`` on ``[xmin, xmax]``:

* **upper** — the chord through ``(xmin, e^-xmin)`` and
  ``(xmax, e^-xmax)`` (lies above, since ``exp(-x)`` is convex);
* **lower** — the tangent line at ``t`` (lies below, same convexity),
  with ``t* = gamma / |P| * sum dist^2``, the mean of the ``x_i``.

Both aggregate in O(d) time through ``sum_i x_i = gamma * sum_i dist^2``
(Lemma 1). A pleasant closed form falls out of the tangent-at-the-mean
choice: the aggregated lower bound equals ``w |P| exp(-t*)``, which by
Jensen's inequality is the tightest possible *linear* lower bound and is
never worse than the baseline ``w |P| exp(-xmax)``.

Section 5.1 of the paper explains why this technique is Gaussian-only:
the other kernels depend on ``sum_i dist`` (not squared), which has no
O(d) aggregate — so this provider rejects them.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.core.bounds.base import BoundProvider, EXP_NEG_XMAX

if TYPE_CHECKING:
    from repro._types import BoundPair, FloatArray, PointLike
    from repro.index.kdtree import KDTreeNode

__all__ = ["LinearBoundProvider"]

#: Interval width below which the node is treated as a single x value.
_DEGENERATE_WIDTH = 1e-12


class LinearBoundProvider(BoundProvider):
    """Chord upper / tangent lower linear bounds (KARL, ICDE 2019)."""

    name = "linear"
    supported_kernels = frozenset({"gaussian"})

    def node_bounds(self, node: KDTreeNode, q: PointLike, q_sq: float) -> BoundPair:
        agg = node.agg
        n = agg.total_weight  # sum of point weights (= count unweighted)
        scale = self.weight * n
        if n <= 0.0:
            return 0.0, 0.0
        xmin, xmax = self.x_interval(node, q)
        exp_xmin = math.exp(-xmin)
        exp_xmax = math.exp(-xmax)
        if xmax - xmin <= _DEGENERATE_WIDTH:
            # Every point sits at (numerically) the same x: the constant
            # bounds are exact up to rounding.
            return scale * exp_xmax, scale * exp_xmin
        x_sum = self.gamma * agg.sum_sq_dists(q)
        # Tangent lower bound EL(x) = e^-t (1 + t - x) at t = mean(x_i).
        # The mean always lies in [xmin, xmax]; the clamp only guards
        # against rounding in the aggregate.
        t = x_sum / n
        if t < xmin:
            t = xmin
        elif t > xmax:
            t = xmax
        # Aggregated: w * e^-t * ((1 + t) n - sum x_i); at t = mean this
        # collapses to w * n * e^-t.
        lower = self.weight * math.exp(-t) * ((1.0 + t) * n - x_sum)
        # Chord (secant) upper bound: EU(x) = mu * x + ku.
        mu = (exp_xmax - exp_xmin) / (xmax - xmin)
        ku = exp_xmin - mu * xmin
        upper = self.weight * (mu * x_sum + ku * n)
        # The chord never exceeds the baseline on the interval; the min is
        # purely a guard against floating-point drift.
        baseline_upper = scale * exp_xmin
        if upper > baseline_upper:
            upper = baseline_upper
        if lower > upper:
            lower = upper
        return lower, upper

    def node_bounds_batch(
        self, node: KDTreeNode, queries: FloatArray, queries_sq: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Vectorised :meth:`node_bounds` over an ``(m, d)`` query batch.

        Row-wise identical formulas to the scalar path, with the
        degenerate-interval case handled by a mask and ``exp`` arguments
        clamped at :data:`~repro.core.bounds.base.EXP_NEG_XMAX`.
        """
        agg = node.agg
        n = agg.total_weight
        m = queries.shape[0]
        if n <= 0.0:
            return (
                np.zeros(m, dtype=np.float64),
                np.zeros(m, dtype=np.float64),
            )
        scale = self.weight * n
        xmin, xmax = self.x_interval_batch(node, queries)
        exp_xmin = np.exp(-np.minimum(xmin, EXP_NEG_XMAX))
        exp_xmax = np.exp(-np.minimum(xmax, EXP_NEG_XMAX))
        width = xmax - xmin
        degenerate = width <= _DEGENERATE_WIDTH
        safe_width = np.where(degenerate, 1.0, width)
        x_sum = self.gamma * agg.sum_sq_dists_batch(queries)
        t = np.clip(x_sum / n, xmin, xmax)
        exp_t = np.exp(-np.minimum(t, EXP_NEG_XMAX))
        lower = self.weight * exp_t * ((1.0 + t) * n - x_sum)
        mu = (exp_xmax - exp_xmin) / safe_width
        ku = exp_xmin - mu * xmin
        upper = self.weight * (mu * x_sum + ku * n)
        baseline_upper = scale * exp_xmin
        np.minimum(upper, baseline_upper, out=upper)
        np.minimum(lower, upper, out=lower)
        lower = np.where(degenerate, scale * exp_xmax, lower)
        upper = np.where(degenerate, baseline_upper, upper)
        return lower, upper
