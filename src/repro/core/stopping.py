"""Canonical ε/τ stopping rules shared by both refinement engines.

Both :class:`~repro.core.engine.RefinementEngine` (scalar) and
:class:`~repro.core.batch_engine.BatchRefinementEngine` (batched
frontier) must answer every query with *identical* semantics — only the
refinement schedule may differ. This module is the single definition of

* when refinement may stop, given a pixel's global ``[LB, UB]``
  interval, and
* how the final interval is classified (the εKDV midpoint is computed by
  the engines; the τKDV hot/cold decision lives here).

τKDV canonical semantics
------------------------
A pixel is **hot** iff ``F_P(q) >= tau``. With bounds, the decision is
certain as soon as ``LB >= tau`` (hot) or ``UB < tau`` (cold). Note the
*strict* inequality on the cold side: when ``UB == tau`` the true
density may still equal ``tau`` exactly — which is hot — so stopping on
``UB <= tau`` and classifying with ``LB >= tau`` could declare a pixel
cold that the scalar path (or a different refinement order) declares
hot. Refinement therefore continues on ``UB == tau`` until either the
lower bound catches up or the frontier drains, at which point
``LB == UB`` equals the exact leaf sum and ``LB >= tau`` is exactly the
canonical ``F >= tau`` test.

εKDV rules
----------
Refinement stops when ``UB + offset <= (1 + eps) * (LB + offset)`` (the
paper's relative test; the midpoint then satisfies the ``(1 ± eps)``
contract) or when ``UB - LB <= atol`` (the optional absolute floor for
all-zero regions).

The ``*_rule`` helpers name which rule fired — the observability layer
(:mod:`repro.obs`) records these names in trace events, so the naming is
part of the public event schema documented in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro._types import BoolArray, FloatArray

__all__ = [
    "RULE_EPS_RELATIVE",
    "RULE_EPS_ATOL",
    "RULE_TAU_HOT",
    "RULE_TAU_COLD",
    "RULE_EXHAUSTED",
    "RULE_CANCELLED",
    "eps_should_stop",
    "eps_stop_mask",
    "eps_stop_rule",
    "tau_should_stop",
    "tau_stop_mask",
    "tau_is_hot",
    "tau_hot_mask",
    "tau_stop_rule",
    "TAU_TIE_GUARD",
    "tau_decision_is_tight",
    "tau_tight_mask",
]

#: The relative ``(1 ± eps)`` test fired.
RULE_EPS_RELATIVE = "eps-relative"
#: The absolute ``ub - lb <= atol`` floor fired.
RULE_EPS_ATOL = "eps-atol"
#: ``LB >= tau`` — the pixel is certainly hot.
RULE_TAU_HOT = "tau-hot"
#: ``UB < tau`` — the pixel is certainly cold.
RULE_TAU_COLD = "tau-cold"
#: The frontier drained before any test fired (fully refined).
RULE_EXHAUSTED = "exhausted"
#: Refinement was cut short by a cooperative
#: :class:`~repro.resilience.budget.CancellationToken` (deadline /
#: budget / explicit cancel); the final interval is a valid but
#: not-fully-tightened enclosure.
RULE_CANCELLED = "cancelled"


# -- eps ------------------------------------------------------------------


def eps_should_stop(
    lb: float, ub: float, one_plus_eps: float, offset: float, atol: float
) -> bool:
    """Whether a scalar εKDV query may stop on interval ``[lb, ub]``."""
    return ub + offset <= one_plus_eps * (lb + offset) or ub - lb <= atol


def eps_stop_mask(
    lb: FloatArray, ub: FloatArray, one_plus_eps: float, offset: float, atol: float
) -> BoolArray:
    """Row-wise :func:`eps_should_stop` over equal-length bound vectors."""
    result: BoolArray = (ub + offset <= one_plus_eps * (lb + offset)) | (ub - lb <= atol)
    return result


def eps_stop_rule(
    lb: float, ub: float, one_plus_eps: float, offset: float, atol: float
) -> str:
    """Name the εKDV rule satisfied by a final interval (trace label)."""
    if ub + offset <= one_plus_eps * (lb + offset):
        return RULE_EPS_RELATIVE
    if ub - lb <= atol:
        return RULE_EPS_ATOL
    return RULE_EXHAUSTED


# -- tau ------------------------------------------------------------------


def tau_should_stop(lb: float, ub: float, tau: float) -> bool:
    """Whether a scalar τKDV query may stop on interval ``[lb, ub]``.

    Stops only once the decision is certain: ``lb >= tau`` (hot) or
    ``ub < tau`` (cold, strict — see the module docstring for why
    ``ub == tau`` must keep refining).
    """
    return lb >= tau or ub < tau


def tau_stop_mask(lb: FloatArray, ub: FloatArray, tau: float) -> BoolArray:
    """Row-wise :func:`tau_should_stop` over equal-length bound vectors."""
    result: BoolArray = (lb >= tau) | (ub < tau)
    return result


def tau_is_hot(lb: float, tau: float) -> bool:
    """Canonical τKDV classification of a stopped/drained interval.

    After :func:`tau_should_stop` fired (or the frontier drained, making
    ``lb == ub`` the exact density), ``lb >= tau`` is exactly the
    canonical ``F_P(q) >= tau`` decision.
    """
    return lb >= tau


def tau_hot_mask(lb: FloatArray, tau: float) -> BoolArray:
    """Row-wise :func:`tau_is_hot`."""
    result: BoolArray = lb >= tau
    return result


def tau_stop_rule(lb: float, ub: float, tau: float) -> str:
    """Name the τKDV rule satisfied by a final interval (trace label)."""
    if lb >= tau:
        return RULE_TAU_HOT
    if ub < tau:
        return RULE_TAU_COLD
    return RULE_EXHAUSTED


#: Relative margin below which a τ decision counts as a *tie*: within
#: this distance of ``tau`` the certain-stop that fired reflects one
#: schedule's rounding, not the mathematics, so both engines re-decide
#: from the canonical fully-refined sum
#: (:func:`repro.core.engine.exhausted_exact`). The guard must dominate
#: the engines' accumulation noise (Kahan-compensated sums of
#: direct-form kernel values, a few ulp ≈ 1e-15 relative) with a wide
#: safety factor, while staying far below any τ spacing that occurs in
#: real renders — boundary-tight pixels are the rare case, so the extra
#: exact pass they trigger is cold-path.
TAU_TIE_GUARD = 1e-9


def tau_decision_is_tight(lb: float, ub: float, tau: float) -> bool:
    """Whether a final τ interval decided within the tie guard of ``tau``.

    For a hot stop the margin is ``lb - tau``; for a cold stop it is
    ``tau - ub``. A tight (or inverted, i.e. undecided) margin means the
    caller should re-decide from the canonical exhausted sum.
    """
    scale = max(abs(tau), abs(lb), abs(ub), 1e-300)
    margin = lb - tau if lb >= tau else tau - ub
    return margin <= TAU_TIE_GUARD * scale


def tau_tight_mask(lb: FloatArray, ub: FloatArray, tau: float) -> BoolArray:
    """Row-wise :func:`tau_decision_is_tight`."""
    scale = np.maximum(np.maximum(np.abs(lb), np.abs(ub)), max(abs(tau), 1e-300))
    margin = np.where(lb >= tau, lb - tau, tau - ub)
    result: BoolArray = margin <= TAU_TIE_GUARD * scale
    return result
